"""Pluggable cache organization + replacement framework (the design zoo).

:class:`~repro.cache.tagstore.TagStore` is the *mechanism* — a
materialised-on-touch array of tag lines. What used to be hard-coded
inside it is split into two seams the store composes:

* :class:`Organization` — *where* a block may live: set indexing, the
  way count of each set, and a probe-cost model (extra latency a
  controller pays to search that set's tags);
* :class:`ReplacementPolicy` — *which* resident line leaves on a
  conflict, plus touch/install/evict hooks that let a policy mirror
  residency into side structures (TicToc's SRAM tag cache and
  dirty-region list are exactly such mirrors).

The default pairing — :class:`SetAssociativeOrganization` +
:class:`LruPolicy` — reproduces the pre-seam behaviour bit for bit
(LRU is encoded as list order: index 0 = LRU, last = MRU); the A/B
suite in ``tests/test_design_zoo.py`` proves it against the frozen
:class:`~repro.cache.reference_tagstore.ReferenceTagStore` for every
design. New designs plug in here: Gemini's hybrid mapping is an
:class:`Organization`, TicToc's mirrored SRAM structures ride a
:class:`ReplacementPolicy` (see ``docs/design-zoo.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # runtime import would be circular (tagstore imports us)
    from repro.cache.tagstore import _Line


# ---------------------------------------------------------------------------
# Organization seam
# ---------------------------------------------------------------------------
class Organization:
    """Where a block may live: set indexing / way mapping / probe cost."""

    #: modulo indexing with one way count everywhere — lets the store
    #: use the ``block % num_sets`` fast path and lazy range prewarm
    uniform: bool = False
    num_sets: int = 0

    def set_index(self, block: int) -> int:
        """Set that ``block`` maps to (may depend on mutable state such
        as Gemini's hotness table — resolved at call time)."""
        raise NotImplementedError

    def ways_of(self, set_idx: int) -> int:
        """Way count of one set (non-uniform organizations vary it)."""
        raise NotImplementedError

    def probe_cost_ps(self, set_idx: int) -> int:
        """Extra latency (ps) a controller pays to search this set's
        tags beyond the design's base tag access."""
        return 0


class SetAssociativeOrganization(Organization):
    """The classic layout: ``num_frames // ways`` sets, modulo-indexed.

    ``ways=1`` is the paper's direct-mapped configuration.
    """

    uniform = True

    def __init__(self, num_frames: int, ways: int = 1) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if ways <= 0 or num_frames % ways:
            raise ConfigError(f"ways={ways} must divide num_frames={num_frames}")
        self.num_frames = num_frames
        self.ways = ways
        self.num_sets = num_frames // ways

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def ways_of(self, set_idx: int) -> int:
        return self.ways


class HybridMappingOrganization(Organization):
    """Gemini-style hybrid mapping (PAPERS.md, arXiv:1806.00779).

    The frame pool is split into a *direct-mapped region* (1-way sets:
    lowest hit latency, no set search) and a *set-associative region*
    (``assoc_ways``-way sets: conflict tolerance at an extra per-probe
    search cost). A caller-supplied ``is_hot`` predicate routes hot
    blocks to the direct region and cold blocks to the associative one;
    the predicate is consulted at every ``set_index`` call, so the
    owning controller flips a block's mapping simply by updating its
    hotness table (after migrating any resident copy out — see
    :meth:`GeminiHybridCache._promote <repro.cache.gemini.GeminiHybridCache>`).
    """

    uniform = False

    def __init__(self, num_frames: int, direct_fraction: float,
                 assoc_ways: int, assoc_probe_ps: int,
                 is_hot: Callable[[int], bool]) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if not 0.0 < direct_fraction < 1.0:
            raise ConfigError("direct_fraction must be in (0, 1)")
        if assoc_ways < 1:
            raise ConfigError("assoc_ways must be positive")
        if assoc_probe_ps < 0:
            raise ConfigError("assoc_probe_ps must be non-negative")
        assoc_sets = int(num_frames * (1.0 - direct_fraction)) // assoc_ways
        direct_sets = num_frames - assoc_sets * assoc_ways
        while direct_sets < 1 and assoc_sets > 0:
            assoc_sets -= 1
            direct_sets = num_frames - assoc_sets * assoc_ways
        if direct_sets < 1 or assoc_sets < 1:
            raise ConfigError(
                f"cannot split {num_frames} frames into a hybrid layout "
                f"(direct_fraction={direct_fraction}, assoc_ways={assoc_ways})")
        self.num_frames = num_frames
        self.direct_sets = direct_sets
        self.assoc_sets = assoc_sets
        self.assoc_ways = assoc_ways
        self.assoc_probe_ps = assoc_probe_ps
        self.num_sets = direct_sets + assoc_sets
        self.is_hot = is_hot

    def set_index(self, block: int) -> int:
        if self.is_hot(block):
            return block % self.direct_sets
        return self.direct_sets + block % self.assoc_sets

    def ways_of(self, set_idx: int) -> int:
        return 1 if set_idx < self.direct_sets else self.assoc_ways

    def probe_cost_ps(self, set_idx: int) -> int:
        return 0 if set_idx < self.direct_sets else self.assoc_probe_ps


# ---------------------------------------------------------------------------
# Replacement seam
# ---------------------------------------------------------------------------
class ReplacementPolicy:
    """Victim choice + residency bookkeeping hooks for one tag store.

    The hooks are called by :class:`~repro.cache.tagstore.TagStore` at
    every residency transition, so a policy can maintain recency state
    *and* mirror the resident set into side structures. All list
    mutation on hit/install is delegated here — the line list's order
    IS the policy's recency state.
    """

    #: policies that mirror residency into side structures need every
    #: install/evict surfaced — set True to disable the store's lazy
    #: range-prewarm fast path (which materialises lines without hooks)
    tracks_residency: bool = False

    def victim(self, lines: List["_Line"]) -> "_Line":
        """The line to evict from a full set."""
        raise NotImplementedError

    def on_hit(self, lines: List["_Line"], line: "_Line") -> None:
        """A resident line was touched (probe hit or rewrite)."""
        raise NotImplementedError

    def on_install(self, lines: List["_Line"], line: "_Line") -> None:
        """A new line entered the set (must add it to ``lines``)."""
        raise NotImplementedError

    def on_evict(self, line: "_Line") -> None:
        """A line left the store (eviction, invalidate, RAS drop)."""

    def on_dirty(self, line: "_Line") -> None:
        """A resident clean line just became dirty."""


class LruPolicy(ReplacementPolicy):
    """LRU as list order: index 0 = LRU, append = MRU (the default)."""

    def victim(self, lines: List["_Line"]) -> "_Line":
        return lines[0]

    def on_hit(self, lines: List["_Line"], line: "_Line") -> None:
        lines.remove(line)
        lines.append(line)

    def on_install(self, lines: List["_Line"], line: "_Line") -> None:
        lines.append(line)


# ---------------------------------------------------------------------------
# TicToc side structures (PAPERS.md, arXiv:1907.02184)
# ---------------------------------------------------------------------------
class SramTagCache:
    """Bounded LRU map ``block -> dirty`` mirroring tag-store residency.

    Models TicToc's on-die SRAM tag cache: a hit means the controller
    knows the DRAM-cache lookup outcome without touching DRAM tags.
    Entries are dropped eagerly on eviction/invalidate (via
    :class:`TictocPolicy`), so a present entry is always accurate.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("tag cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, bool]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, block: int) -> Optional[bool]:
        """Dirty bit of a known-resident block; ``None`` = unknown."""
        dirty = self._entries.get(block)
        if dirty is not None:
            self._entries.move_to_end(block)
        return dirty

    def put(self, block: int, dirty: bool) -> None:
        entries = self._entries
        if block in entries:
            entries[block] = dirty
            entries.move_to_end(block)
            return
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
        entries[block] = dirty

    def drop(self, block: int) -> None:
        self._entries.pop(block, None)


class DirtyRegionList:
    """Per-region count of dirty resident lines (region = set range).

    TicToc's dirty list, tracked over *cache set* space: if a set's
    region holds no dirty line, neither the block being accessed (if
    resident) nor any victim in that set can be dirty — so the
    controller may bypass the DRAM tag probe and go straight to main
    memory / a direct cache write.
    """

    def __init__(self, sets_per_region: int) -> None:
        if sets_per_region <= 0:
            raise ConfigError("sets_per_region must be positive")
        self.sets_per_region = sets_per_region
        self._counts: Dict[int, int] = {}

    def region_of(self, set_idx: int) -> int:
        return set_idx // self.sets_per_region

    def region_dirty(self, set_idx: int) -> bool:
        return self.region_of(set_idx) in self._counts

    def add(self, set_idx: int) -> None:
        region = self.region_of(set_idx)
        self._counts[region] = self._counts.get(region, 0) + 1

    def remove(self, set_idx: int) -> None:
        region = self.region_of(set_idx)
        count = self._counts.get(region, 0)
        if count <= 0:
            raise ConfigError(
                f"dirty-region underflow for region {region} — the policy "
                "mirror lost track of a dirty line")
        if count == 1:
            del self._counts[region]
        else:
            self._counts[region] = count - 1

    def dirty_regions(self) -> int:
        return len(self._counts)


class TictocPolicy(LruPolicy):
    """LRU + residency mirroring into the SRAM tag cache / dirty list.

    Exercises every :class:`ReplacementPolicy` hook: installs and
    rewrites keep the tag cache coherent (an entry is only ever present
    for a genuinely resident line), and dirty transitions/evictions
    keep the dirty-region counts exact.
    """

    tracks_residency = True

    def __init__(self, tag_cache: SramTagCache, dirty_list: DirtyRegionList,
                 set_index: Callable[[int], int]) -> None:
        self.tag_cache = tag_cache
        self.dirty_list = dirty_list
        self.set_index = set_index

    def on_hit(self, lines: List["_Line"], line: "_Line") -> None:
        # A touch means the controller just resolved this block's tags
        # (DRAM probe or bypass check) — refresh the SRAM copy so the
        # next access to it short-circuits.
        LruPolicy.on_hit(self, lines, line)
        self.tag_cache.put(line.block, line.dirty)

    def on_install(self, lines: List["_Line"], line: "_Line") -> None:
        lines.append(line)
        self.tag_cache.put(line.block, line.dirty)
        if line.dirty:
            self.dirty_list.add(self.set_index(line.block))

    def on_dirty(self, line: "_Line") -> None:
        self.tag_cache.put(line.block, True)
        self.dirty_list.add(self.set_index(line.block))

    def on_evict(self, line: "_Line") -> None:
        self.tag_cache.drop(line.block)
        if line.dirty:
            self.dirty_list.remove(self.set_index(line.block))
