"""Frozen pre-seam :class:`TagStore` — the bit-identity A/B reference.

This is the tag store exactly as it was before the organization /
replacement seam landed (same discipline as the event kernel keeping
``queue="heap"`` next to the ladder queue): a verbatim copy of the old
control flow with LRU hard-coded as list order and ``block % num_sets``
indexing inlined. Select it with
``SystemConfig(cache_organization="reference")``; the A/B suite in
``tests/test_design_zoo.py`` runs every design against both stores and
requires ``dataclasses.asdict``-identical :class:`RunResult`\\ s.

Do not improve this file. It intentionally preserves the old
behaviour, including the double-walk ``fill()`` and the un-decoded
fill-path evictions the seamed store fixes (both invisible with RAS
off, which is how the A/B suite runs).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.cache.request import Outcome
from repro.cache.tagstore import LookupResult, TagStore, _Line
from repro.errors import ConfigError, RasError


class ReferenceTagStore(TagStore):
    """Set-associative tag/metadata array, pre-seam implementation."""

    def __init__(self, num_frames: int, ways: int = 1) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if ways <= 0 or num_frames % ways:
            raise ConfigError(f"ways={ways} must divide num_frames={num_frames}")
        self.num_frames = num_frames
        self.ways = ways
        self.num_sets = num_frames // ways
        self._sets = {}
        self._lazy_n = 0
        self._lazy_dirty = None
        self.ras = None
        self.disabled_ways = 0

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _find(self, block: int) -> Tuple[List[_Line], Optional[_Line]]:
        idx = block % self.num_sets
        lines = self._sets.get(idx)
        if lines is None:
            lines = self._materialize(idx)
        for line in lines:
            if line.block == block:
                return lines, line
        return lines, None

    def _locate(self, block: int) -> Tuple[int, List[_Line], Optional[_Line]]:
        # Seam-shaped accessor so RAS internals (fault injector) work
        # against either store.
        lines, line = self._find(block)
        return block % self.num_sets, lines, line

    # ------------------------------------------------------------------
    # Probes (no state change beyond LRU touch on hit)
    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> LookupResult:
        """Look up ``block``; on a hit optionally refresh its LRU slot."""
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            return LookupResult(Outcome.MISS_INVALID)
        lines, line = self._find(block)
        penalty = 0
        if line is not None and ras is not None:
            verdict = ras.on_tag_read(line, block)
            if verdict is None:
                lines.remove(line)
                line = None
            else:
                penalty = verdict
        if line is not None:
            if touch:
                lines.remove(line)
                lines.append(line)
            outcome = Outcome.HIT_DIRTY if line.dirty else Outcome.HIT_CLEAN
            return LookupResult(outcome, ecc_penalty_ps=penalty)
        if len(lines) < self.available_ways:
            return LookupResult(Outcome.MISS_INVALID, ecc_penalty_ps=penalty)
        victim = lines[0]
        if ras is not None:
            verdict = ras.on_tag_read(victim, victim.block)
            if verdict is None:
                lines.remove(victim)
                return LookupResult(Outcome.MISS_INVALID,
                                    ecc_penalty_ps=penalty)
            penalty += verdict
        outcome = Outcome.MISS_DIRTY if victim.dirty else Outcome.MISS_CLEAN
        return LookupResult(outcome, victim_block=victim.block,
                            victim_dirty=victim.dirty,
                            ecc_penalty_ps=penalty)

    def contains(self, block: int) -> bool:
        return self._find(block)[1] is not None

    def is_dirty(self, block: int) -> bool:
        line = self._find(block)[1]
        return bool(line and line.dirty)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def install(self, block: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert (or update) ``block``; returns the evicted (block, dirty)."""
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            if dirty:
                ras.write_through(block)
            else:
                ras.dropped_fill()
            return None
        lines, line = self._find(block)
        if line is not None:
            line.dirty = line.dirty or dirty
            if ras is not None:
                ras.note_rewrite(line)
                line.codeword = ras.encode_line(block, line.dirty)
                line.soft = 0
            lines.remove(line)
            lines.append(line)
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if len(lines) >= self.available_ways:
            victim = lines.pop(0)
            evicted = (victim.block, victim.dirty)
        lines.append(self._new_line(block, dirty))
        return evicted

    def fill(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy fetched from main memory (two walks)."""
        if self.contains(block):
            return None
        return self.install(block, dirty=False)

    def bulk_install(self, blocks: Iterable[int],
                     dirty_flags: Iterable[bool]) -> None:
        """Fast-path warm-up: install many lines without LRU churn."""
        if hasattr(blocks, "tolist"):
            blocks = blocks.tolist()
        if hasattr(dirty_flags, "tolist"):
            dirty_flags = dirty_flags.tolist()
        capacity = self.available_ways
        sets = self._sets
        num_sets = self.num_sets
        ras = self.ras
        if (ras is None and not sets and not self._lazy_n
                and isinstance(blocks, range)
                and blocks.step == 1 and blocks.start == 0
                and len(blocks) <= num_sets):
            self._lazy_n = len(blocks)
            self._lazy_dirty = dirty_flags
            return
        self._materialize_all()
        for block, dirty in zip(blocks, dirty_flags):
            lines = sets.setdefault(block % num_sets, [])
            for line in lines:
                if line.block == block:
                    line.dirty = line.dirty or bool(dirty)
                    if ras is not None:
                        line.codeword = ras.encode_line(line.block,
                                                        line.dirty)
                    break
            else:
                if len(lines) >= capacity:
                    lines.pop(0)
                if ras is None:
                    lines.append(_Line(block, bool(dirty)))
                else:
                    lines.append(self._new_line(int(block), bool(dirty)))

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        lines, line = self._find(block)
        if line is None:
            return False
        lines.remove(line)
        return True

    # ------------------------------------------------------------------
    # Degradation support (repro.ras.degrade)
    # ------------------------------------------------------------------
    def disable_way(self) -> List[Tuple[int, bool]]:
        """Fuse off one way store-wide; returns the evicted lines."""
        if self.available_ways <= 1:
            raise RasError("cannot disable the last remaining way")
        self._materialize_all()
        self.disabled_ways += 1
        capacity = self.available_ways
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            while len(lines) > capacity:
                victim = lines.pop(0)
                evicted.append((victim.block, victim.dirty))
        return evicted

    def evict_matching(
        self, predicate: Callable[[int], bool]
    ) -> List[Tuple[int, bool]]:
        """Drop every resident line whose block satisfies ``predicate``."""
        self._materialize_all()
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            keep = [line for line in lines if not predicate(line.block)]
            if len(keep) != len(lines):
                evicted.extend(
                    (line.block, line.dirty)
                    for line in lines if predicate(line.block)
                )
                lines[:] = keep
        return evicted
