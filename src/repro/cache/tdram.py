"""TDRAM cache controller — the paper's contribution (§III).

Per Table II, every access is one fused command:

========================  ======  ===========  ================  =========================
Cache access              CMD     DQ activity  HM bus            Later actions
========================  ======  ===========  ================  =========================
Read hit (clean/dirty)    ActRd   hit data     hit               none
Read to invalid / m-clean ActRd   none         miss              read main mem & fill
Read miss dirty           ActRd   dirty data   miss + dirty tag  mm read & fill; writeback
Write (all hit/clean)     ActWr   wr data      hit/miss          none
Write miss dirty          ActWr   wr data      miss + dirty tag  victim -> flush buffer
========================  ======  ===========  ================  =========================

The HM result arrives ``tRCD_TAG + tHM`` after the command — before the
data slot — enabling the conditional column operation. Early tag
probing (§III-E) opportunistically resolves queued reads ahead of
their MAIN slot; the flush buffer (§III-D2) absorbs dirty victims on
write misses so the DQ bus never turns around mid-write-burst.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.controller import CacheOp, DramCacheController, OpKind
from repro.cache.request import DemandRequest, Op, Outcome
from repro.config.system import SystemConfig
from repro.core.flush_buffer import FlushBuffer
from repro.core.probe import ProbeEngine
from repro.errors import CapacityError
from repro.dram.bus import Direction
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator, ns

#: Controller-side latency to recognise and serve a flush-buffer hit.
FLUSH_HIT_LATENCY = ns(4)


class TdramCache(DramCacheController):
    """Tag-enhanced DRAM cache with probing and a flush buffer."""

    design_name = "tdram"
    burst_bytes = 64
    has_tag_path = True

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        super().__init__(sim, config, main_memory)
        self.flush = FlushBuffer(config.flush_buffer_entries)
        if self.ras is not None:
            self.ras.attach_flush(self.flush)
        if self.obs is not None:
            self.obs.attach_flush(self.flush)
        self.probe_engine = ProbeEngine()
        self.enable_probing = config.enable_probing
        opportunistic = config.flush_unload_policy == "opportunistic"
        self.unload_on_refresh = opportunistic
        self.unload_on_read_miss_clean = opportunistic
        #: per-channel, per-bank time until which a probe holds the tag bank
        self._probe_busy_until = [
            [0] * len(channel.banks) for channel in self.channels
        ]
        #: per-channel flag: a deferred probe attempt is already scheduled
        self._probe_retry_pending = [False] * len(self.channels)
        #: (channel, bank, hold-end) probe conflicts already counted
        self._counted_conflicts = set()
        for channel in self.channels:
            channel.refresh_listeners.append(self._on_refresh)

    # ------------------------------------------------------------------
    # Demand intake
    # ------------------------------------------------------------------
    def _enqueue(self, request: DemandRequest) -> None:
        channel_idx, bank = self.route(request.block_addr)
        if request.op is Op.READ:
            if self.flush.contains(request.block_addr):
                self._serve_from_flush_buffer(channel_idx, request)
                return
            op = CacheOp(OpKind.ACT_RD, request.block_addr, bank,
                         self.sim.now, demand=request)
            self.schedulers[channel_idx].push_read(op)
            return
        # Write demand: a newer full-line write supersedes any buffered
        # dirty copy of the same block (§III-D2).
        self.flush.remove(request.block_addr)
        op = CacheOp(OpKind.ACT_WR, request.block_addr, bank,
                     self.sim.now, demand=request)
        try:
            self.schedulers[channel_idx].push_write(op)
        except CapacityError:
            # Racing acceptance checks can overfill; absorb the demand
            # with counted backpressure rather than dropping it.
            self.metrics.events.add("write_backpressure_forced")
            self.schedulers[channel_idx].push_write(op, forced=True)

    def _serve_from_flush_buffer(self, channel_idx: int,
                                 request: DemandRequest) -> None:
        """Read demand to a buffered victim: stream it from the buffer.

        The controller mirrors buffer addresses, so the tag outcome is
        known immediately; the data rides one explicit DQ read grant.
        The entry stays buffered — it is still dirty w.r.t. main memory.
        """
        now = self.sim.now
        self.metrics.events.add("flush_buffer_read_hit")
        self._record_tag_result(request, now, Outcome.HIT_DIRTY)
        end = self.channels[channel_idx].transfer_raw(
            now + FLUSH_HIT_LATENCY, 64, Direction.READ)
        self.meter.add_dq_bytes(64)
        self.metrics.ledger.move("flush_buffer_hit", 64, useful=True)
        self.sim.at(end, self._complete_read, request, end)

    # ------------------------------------------------------------------
    # Scheduling hooks
    # ------------------------------------------------------------------
    def _hm_delay(self) -> Optional[int]:
        """Issue-to-HM-result delay (None = device default: activation
        path, ``tRCD_TAG + tHM``)."""
        return None

    def _earliest_op(self, channel_idx: int, op: CacheOp, now: int) -> int:
        is_write = op.kind is OpKind.ACT_WR
        channel = self.channels[channel_idx]
        earliest = channel.earliest_issue(op.bank, now, is_write, with_tag=True)
        probe_hold = self._probe_busy_until[channel_idx][op.bank]
        if probe_hold > now and probe_hold > channel.banks[op.bank].earliest(now):
            # Each probe's hold is counted as a conflict at most once.
            key = (channel_idx, op.bank, probe_hold)
            if key not in self._counted_conflicts:
                self._counted_conflicts.add(key)
                self.probe_engine.record_bank_conflict()
        return earliest

    def _commit_op(self, channel_idx: int, op: CacheOp, now: int) -> None:
        if op.kind is OpKind.ACT_RD:
            self._commit_act_rd(channel_idx, op, now)
        elif op.kind is OpKind.ACT_WR:
            self._commit_act_wr(channel_idx, op, now)
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op kind {op.kind}")

    # ------------------------------------------------------------------
    # ActRd
    # ------------------------------------------------------------------
    def _commit_act_rd(self, channel_idx: int, op: CacheOp, now: int) -> None:
        demand = op.demand
        if op.victim_block is not None:
            self._commit_victim_readout(channel_idx, op, now)
            return
        assert demand is not None
        self._record_queue_delay(demand, now)
        result = self.tags.probe(demand.block_addr, touch=True)
        outcome = result.outcome
        streams_data = outcome.is_hit or outcome is Outcome.MISS_DIRTY
        grant = self._access(
            channel_idx, op.bank, now, is_write=False, with_data=True,
            with_tag=True, hm_result_delay=self._hm_delay(),
            column_op=self._column_op_happens(streams_data),
            transfer=streams_data,
        )
        assert grant.hm_at is not None and grant.data_end is not None
        hm_at, data_start, data_end = grant.hm_at, grant.data_start, grant.data_end
        # ECC corrections/retries on the tag read delay both the HM
        # result and the gated data (§III-C3's on-die correction path).
        if result.ecc_penalty_ps:
            hm_at += result.ecc_penalty_ps
            data_end += result.ecc_penalty_ps
        already_recorded = demand.tag_result_time >= 0
        if not already_recorded:
            self._record_tag_result(demand, hm_at, outcome)
        if outcome.is_hit:
            self.metrics.ledger.move("hit_data", 64, useful=True)
            if self.obs is not None and data_start is not None:
                self.obs.on_dq_window(demand, data_start, data_end)
            self.sim.at(data_end, self._complete_read, demand, data_end)
            return
        if outcome is Outcome.MISS_DIRTY:
            assert result.victim_block is not None
            victim = result.victim_block
            self.metrics.ledger.move("victim_readout", 64, useful=False)
            self.tags.invalidate(victim)
            self.sim.at(data_end, self._writeback, victim)
            self.sim.at(hm_at, self._fetch, demand.block_addr, demand)
            return
        # Miss to clean/invalid: no data drives; the reserved DQ slot can
        # carry one flush-buffer entry out instead (§III-D2).
        self.sim.at(hm_at, self._fetch, demand.block_addr, demand)
        assert data_start is not None
        self._unload_in_read_slot(channel_idx, data_start, data_end)

    def _column_op_happens(self, streams_data: bool) -> bool:
        """TDRAM gates the data-bank column decode on the tag result."""
        return streams_data

    def _commit_victim_readout(self, channel_idx: int, op: CacheOp,
                               now: int) -> None:
        """MAIN slot for a probe-detected dirty miss: stream the victim."""
        victim = op.victim_block
        assert victim is not None
        grant = self._access(
            channel_idx, op.bank, now, is_write=False, with_data=True,
            with_tag=True, hm_result_delay=self._hm_delay(),
        )
        assert grant.data_end is not None
        self.metrics.ledger.move("victim_readout", 64, useful=False)
        self.sim.at(grant.data_end, self._writeback, victim)

    def _unload_in_read_slot(self, channel_idx: int, slot_start: int,
                             slot_end: int) -> None:
        if not self.unload_on_read_miss_clean:
            return
        block = self.flush.pop()
        if block is None:
            return
        self.flush.note_unload("read_miss_clean")
        self.meter.add_dq_bytes(64)
        self.metrics.ledger.move("flush_unload", 64, useful=False)
        if self.obs is not None:
            self.obs.on_flush_drain("read_miss_clean", block,
                                    slot_start, slot_end)
        self.sim.at(slot_end, self._writeback, block)

    # ------------------------------------------------------------------
    # ActWr
    # ------------------------------------------------------------------
    def _commit_act_wr(self, channel_idx: int, op: CacheOp, now: int) -> None:
        grant = self._access(
            channel_idx, op.bank, now, is_write=True, with_data=True,
            with_tag=True, hm_result_delay=self._hm_delay(),
        )
        assert grant.hm_at is not None
        if op.is_fill:
            self.metrics.ledger.move("fill", 64, useful=False)
            return
        demand = op.demand
        assert demand is not None
        if self.obs is not None:
            self.obs.on_issue(demand, now)
        result = self.tags.probe(demand.block_addr, touch=False)
        self._record_tag_result(demand, grant.hm_at + result.ecc_penalty_ps,
                                result.outcome)
        if (self.obs is not None and grant.data_start is not None
                and grant.data_end is not None):
            self.obs.on_dq_window(demand, grant.data_start, grant.data_end)
        self.metrics.ledger.move("demand_write", 64, useful=True)
        evicted = self.tags.install(demand.block_addr, dirty=True)
        if evicted is not None and evicted[1]:
            # Internal read moves the dirty victim into the flush buffer
            # (small internal turnaround; no DQ activity, §III-D2).
            self.meter.record("col_op")
            self.metrics.events.add("victim_to_flush_buffer")
            self._add_to_flush_buffer(channel_idx, evicted[0], grant.hm_at)

    def _add_to_flush_buffer(self, channel_idx: int, block: int,
                             time: int) -> None:
        if not self.flush.add(block):
            self._forced_drain(channel_idx, time)
            self.flush.add(block)

    def _forced_drain(self, channel_idx: int, time: int) -> None:
        """Explicit read-from-flush-buffer commands: drain half the
        buffer in one grouped read burst (one amortised turnaround)."""
        self.metrics.events.add("flush_forced_drain")
        count = max(1, self.flush.capacity // 2)
        channel = self.channels[channel_idx]
        for _ in range(count):
            block = self.flush.pop()
            if block is None:
                break
            self.flush.note_unload("forced")
            end = channel.transfer_raw(time, 64, Direction.READ)
            self.meter.add_dq_bytes(64)
            self.metrics.ledger.move("flush_unload", 64, useful=False)
            if self.obs is not None:
                self.obs.on_flush_drain("forced", block, time, end)
            self.sim.at(end, self._writeback, block)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def _fill_op_kind(self) -> OpKind:
        return OpKind.ACT_WR

    def _handle_fill_eviction(self, victim_block: int, time: int) -> None:
        """A fill displaced dirty data: it goes to the flush buffer
        in-DRAM rather than across the DQ bus."""
        channel_idx, _bank = self.route(victim_block)
        self.meter.record("col_op")
        self.metrics.events.add("victim_to_flush_buffer")
        self._add_to_flush_buffer(channel_idx, victim_block, time)

    # ------------------------------------------------------------------
    # Early tag probing (§III-E)
    # ------------------------------------------------------------------
    def _on_blocked(self, channel_idx: int, now: int) -> None:
        if not self.enable_probing:
            return
        channel = self.channels[channel_idx]
        read_q = self.schedulers[channel_idx].read_q
        op = self.probe_engine.select(channel, read_q, now)
        if op is None:
            # Candidates may exist whose tag bank / CA / HM slot is
            # momentarily busy: retry shortly (probe windows open and
            # close between MAIN commands).
            if (not self._probe_retry_pending[channel_idx]
                    and any(o.demand is not None and o.demand.is_read
                            and not o.demand.probed for o in read_q)):
                self._probe_retry_pending[channel_idx] = True
                self.sim.schedule(self.config.tag_timing.tRRD_TAG * 2,
                                  self._probe_retry, channel_idx)
            return
        demand = op.demand
        assert demand is not None
        grant = channel.issue_probe(op.bank, now)
        self.probe_engine.record_issue()
        self.meter.record("cmd")
        self.meter.record("act_tag")
        self.meter.record("hm_packet")
        demand.probed = True
        self._record_queue_delay(demand, now)
        tag_timing = self.config.tag_timing
        self._probe_busy_until[channel_idx][op.bank] = now + tag_timing.tRC_TAG
        assert grant.hm_at is not None
        hm_at = grant.hm_at
        if self.obs is not None:
            self.obs.on_probe(demand, now, hm_at)
            self.obs.on_hm_result(channel_idx, hm_at)
        self.sim.at(hm_at, self._on_probe_result, channel_idx, op, hm_at)
        # The CA bus frees after one command slot; chain another probe
        # attempt so every unused slot can be filled (§III-E).
        free_at = channel.ca.free_at
        self.sim.at(free_at, self._on_blocked, channel_idx, free_at)

    def _probe_retry(self, channel_idx: int) -> None:
        self._probe_retry_pending[channel_idx] = False
        self._on_blocked(channel_idx, self.sim.now)

    def _on_probe_result(self, channel_idx: int, op: CacheOp, time: int) -> None:
        demand = op.demand
        assert demand is not None
        if demand.tag_result_time >= 0:
            # The MAIN slot beat the probe result; nothing to do.
            self.probe_engine.stats.add("wasted")
            return
        result = self.tags.probe(demand.block_addr, touch=False)
        outcome = result.outcome
        self._record_tag_result(demand, time + result.ecc_penalty_ps, outcome)
        scheduler = self.schedulers[channel_idx]
        if outcome.is_hit:
            self.metrics.events.add("probe_hit")
            return  # stays queued; its MAIN ActRd streams the data
        if outcome is Outcome.MISS_DIRTY:
            self.metrics.events.add("probe_miss_dirty")
            assert result.victim_block is not None
            self.tags.invalidate(result.victim_block)
            op.victim_block = result.victim_block
            op.demand = None
            self._fetch(demand.block_addr, demand)
            return  # stays queued to stream the victim out
        # Miss to clean/invalid: the demand leaves the read queue right
        # now and the main-memory fetch starts immediately.
        self.metrics.events.add("probe_miss_clean")
        if op in scheduler.read_q:
            scheduler.remove_read(op)
        self._fetch(demand.block_addr, demand)
        scheduler.kick()

    # ------------------------------------------------------------------
    # Refresh-window unloads (§III-D2 case i)
    # ------------------------------------------------------------------
    def _on_refresh(self, start: int, end: int) -> None:
        if not self.unload_on_refresh or len(self.flush) == 0:
            return
        # Refresh blocks the banks; the DQ bus idles, so buffered
        # victims stream out back to back.
        burst = self.config.cache_timing.tBURST
        slots = max(0, (end - start) // max(1, burst))
        for i in range(slots):
            block = self.flush.pop()
            if block is None:
                break
            self.flush.note_unload("refresh")
            self.meter.add_dq_bytes(64)
            self.metrics.ledger.move("flush_unload", 64, useful=False)
            if self.obs is not None:
                self.obs.on_flush_drain("refresh", block,
                                        start + i * burst,
                                        start + (i + 1) * burst)
            self.sim.at(end, self._writeback, block)
