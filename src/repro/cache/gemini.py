"""Gemini-style hybrid-mapped DRAM cache (PAPERS.md, arXiv:1806.00779).

Gemini's observation: direct-mapped DRAM caches hit fast (no set
search, no way mux) but thrash on conflicts, while set-associative
caches tolerate conflicts at a per-access search cost. The hybrid
splits the frame pool — a direct-mapped *hot region* and a
set-associative *cold region* — and migrates lines between them by
observed reuse: a block whose demand count reaches
``gemini_hot_threshold`` is promoted to the direct region, so the hot
working set enjoys direct-mapped latency while cold conflict traffic
spreads over associative sets.

Built on the organization seam: the layout is a
:class:`~repro.cache.organization.HybridMappingOrganization` whose
``is_hot`` predicate reads this controller's hotness table, and the
timing side charges ``gemini_assoc_probe_ns`` extra on cold-region
tag resolutions (:meth:`TagStore.probe_cost_ps`). Everything else
(tags-in-ECC transactions) is inherited from the Cascade Lake model —
the comparison isolates the *mapping*, not the device.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.organization import HybridMappingOrganization
from repro.cache.request import DemandRequest
from repro.cache.tagstore import TagStore
from repro.config.system import SystemConfig
from repro.dram.address import DramGeometry
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator, ns


class GeminiHybridCache(CascadeLakeCache):
    """Hot lines direct-mapped, cold lines set-associative."""

    design_name = "gemini_hybrid"
    burst_bytes = 64
    has_tag_path = False

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        # The hotness table must exist before the base constructor runs:
        # _build_tag_store hands the organization a live reference to it.
        self._hot: Set[int] = set()
        self._heat: Dict[int, int] = {}
        super().__init__(sim, config, main_memory)

    def _build_tag_store(self, geometry: DramGeometry) -> TagStore:
        config = self.config
        organization = HybridMappingOrganization(
            geometry.total_blocks,
            direct_fraction=config.gemini_direct_fraction,
            assoc_ways=config.gemini_assoc_ways,
            assoc_probe_ps=ns(config.gemini_assoc_probe_ns),
            is_hot=self._hot.__contains__,
        )
        return TagStore(geometry.total_blocks, config.gemini_assoc_ways,
                        organization=organization)

    # ------------------------------------------------------------------
    def _enqueue(self, request: DemandRequest) -> None:
        block = request.block_addr
        if block not in self._hot:
            count = self._heat.get(block, 0) + 1
            if count >= self.config.gemini_hot_threshold:
                self._promote(block)
            else:
                self._heat[block] = count
        super()._enqueue(request)

    def _promote(self, block: int) -> None:
        """Reclassify ``block`` as hot (remapping it to the direct region).

        The organization resolves ``is_hot`` at every ``set_index``
        call, so any copy resident in the cold region must be migrated
        out *before* the hotness table flips — otherwise it would
        become unreachable and its dirty data lost.
        """
        if self.tags.contains(block):
            if self.tags.is_dirty(block):
                self._writeback(block)
            self.tags.invalidate(block)
            self.metrics.events.add("gemini_migrations")
        self._hot.add(block)
        self._heat.pop(block, None)
        self.metrics.events.add("gemini_promotions")

    # ------------------------------------------------------------------
    def _on_tag_data(self, channel_idx: int, demand: DemandRequest,
                     time: int) -> None:
        # Cold-region sets pay the associative search on top of the
        # DRAM access that returned tag+data; direct-region cost is 0.
        penalty = self.tags.probe_cost_ps(demand.block_addr)
        if penalty:
            self.metrics.events.add("gemini_assoc_probes")
        super()._on_tag_data(channel_idx, demand, time + penalty)
