"""TicToc-style tag-cache + dirty-list DRAM cache (PAPERS.md, arXiv:1907.02184).

TicToc attacks the tag-serialization problem with two small on-die
SRAM structures instead of changing the DRAM array:

* an **SRAM tag cache** mirroring recently resolved tag entries — a
  hit means the controller already knows the lookup outcome and can go
  straight to the data access, skipping the DRAM tag read entirely;
* a **dirty-region list** counting dirty resident lines per region of
  cache sets — if the region covering an access's set holds no dirty
  line, neither the block (if resident, its copy equals memory) nor
  any would-be victim can be dirty, so the controller may *bypass* the
  DRAM tag probe: reads are served from main memory directly, writes
  install without the victim-readout tag fetch.

Only accesses that are both tag-cache misses *and* land in a dirty
region pay the full Cascade-Lake tag-read transaction (inherited
unchanged). The mirrors ride the replacement-policy seam
(:class:`~repro.cache.organization.TictocPolicy`): every install,
touch, dirty transition and eviction in the tag store updates them, so
a present tag-cache entry is always accurate and the dirty counts are
exact — including under RAS line drops.
"""

from __future__ import annotations

from functools import partial

from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.controller import CacheOp, OpKind
from repro.cache.organization import (
    DirtyRegionList,
    SetAssociativeOrganization,
    SramTagCache,
    TictocPolicy,
)
from repro.cache.request import DemandRequest, Op
from repro.cache.tagstore import TagStore
from repro.config.system import SystemConfig
from repro.dram.address import DramGeometry
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator, ns


class TicTocCache(CascadeLakeCache):
    """Cascade-Lake array + SRAM tag cache + dirty-region bypass."""

    design_name = "tictoc"
    burst_bytes = 64
    has_tag_path = False

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        super().__init__(sim, config, main_memory)
        #: SRAM tag-cache lookup latency charged on short-circuited paths
        self._sram_ps = ns(config.tictoc_tag_latency_ns)

    def _build_tag_store(self, geometry: DramGeometry) -> TagStore:
        config = self.config
        organization = SetAssociativeOrganization(geometry.total_blocks,
                                                  config.cache_ways)
        self.tag_cache = SramTagCache(config.tictoc_tag_cache_entries)
        self.dirty_list = DirtyRegionList(config.tictoc_dirty_region_sets)
        policy = TictocPolicy(self.tag_cache, self.dirty_list,
                              organization.set_index)
        return TagStore(geometry.total_blocks, config.cache_ways,
                        organization=organization, policy=policy)

    # ------------------------------------------------------------------
    def _enqueue(self, request: DemandRequest) -> None:
        block = request.block_addr
        known = self.tag_cache.get(block)
        region_clean = not self.dirty_list.region_dirty(
            self.tags.set_index(block))
        if request.op is Op.READ:
            if known is not None:
                self._known_read(request)
                return
            if region_clean:
                self._bypass_read(request)
                return
            self.metrics.events.add("tictoc_tag_probes")
            super()._enqueue(request)
            return
        # Write demand: a known-resident block updates in place, and in
        # a clean region no victim needs reading out — either way the
        # tags-in-ECC read that CL performs first carries no information
        # the SRAM structures don't already have.
        if known is not None or region_clean:
            self._direct_write(request)
            return
        self.metrics.events.add("tictoc_tag_probes")
        super()._enqueue(request)

    def _known_read(self, demand: DemandRequest) -> None:
        """SRAM tag-cache hit: outcome known, go straight to data."""
        result = self.tags.probe(demand.block_addr, touch=True)
        now = self.sim.now
        if not result.outcome.is_hit:
            # The mirror is kept coherent eagerly, so this only happens
            # when the probe itself just dropped the line (RAS
            # uncorrectable): fall through to a refetch.
            self.metrics.events.add("tictoc_tag_cache_stale")
            self._record_tag_result(demand, now + self._sram_ps,
                                    result.outcome)
            self._fetch(demand.block_addr, demand)
            return
        self.metrics.events.add("tictoc_tag_cache_hits")
        self._record_tag_result(
            demand, now + self._sram_ps + result.ecc_penalty_ps,
            result.outcome)
        channel, bank = self.route(demand.block_addr)
        op = CacheOp(OpKind.DATA_READ, demand.block_addr, bank, now,
                     demand=demand)
        self.schedulers[channel].push_read(op)

    def _bypass_read(self, demand: DemandRequest) -> None:
        """Tag-cache miss in a clean region: skip the DRAM tag probe.

        A resident copy is necessarily clean, i.e. identical to main
        memory — so the read is served from main memory either way and
        the DRAM cache's tag bandwidth is never spent. (The functional
        probe below is the simulator learning the truth for metrics and
        recency; the modelled hardware never touches the DRAM tags.)
        """
        result = self.tags.probe(demand.block_addr, touch=True)
        self._record_tag_result(demand, self.sim.now + self._sram_ps,
                                result.outcome)
        if result.outcome.is_hit:
            self.metrics.events.add("tictoc_bypass_reads")
            self.main_memory.read(
                demand.block_addr,
                partial(self._on_bypass_return, demand),
                order=demand.seq,
            )
            return
        self._fetch(demand.block_addr, demand)

    def _on_bypass_return(self, demand: DemandRequest, time: int) -> None:
        self.metrics.ledger.move("mm_fetch", 64, useful=True)
        self._complete_read(demand, time)

    def _direct_write(self, demand: DemandRequest) -> None:
        """Write without the CL tag-read: SRAM already rules the victim."""
        block = demand.block_addr
        result = self.tags.probe(block, touch=False)
        self._record_tag_result(
            demand, self.sim.now + self._sram_ps + result.ecc_penalty_ps,
            result.outcome)
        evicted = self.tags.install(block, dirty=True)
        if evicted is not None and evicted[1]:
            # Only reachable when a stale region went dirty between the
            # check and the install — the books still balance.
            self._writeback(evicted[0])
        self.metrics.events.add("tictoc_direct_writes")
        channel, bank = self.route(block)
        op = CacheOp(OpKind.DATA_WRITE, block, bank, self.sim.now,
                     demand=demand)
        self.schedulers[channel].push_write(op, forced=True)

    # ------------------------------------------------------------------
    def _commit_op(self, channel_idx: int, op: CacheOp, now: int) -> None:
        if op.kind is OpKind.DATA_READ:
            assert op.demand is not None
            self._record_queue_delay(op.demand, now)
            grant = self._access(channel_idx, op.bank, now, is_write=False,
                                 with_data=True)
            assert grant.data_end is not None
            self.metrics.ledger.move("hit_data", 64, useful=True)
            self.sim.at(grant.data_end, self._complete_read, op.demand,
                        grant.data_end)
            return
        super()._commit_op(channel_idx, op, now)
