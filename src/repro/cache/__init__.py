"""DRAM-cache designs: the paper's TDRAM and every evaluated baseline."""

from repro.cache.alloy import AlloyCache
from repro.cache.bear import BearCache
from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.controller import CacheOp, DramCacheController, OpKind
from repro.cache.gemini import GeminiHybridCache
from repro.cache.ideal import IdealCache
from repro.cache.metrics import BREAKDOWN_CATEGORIES, CacheMetrics
from repro.cache.ndc import NdcCache
from repro.cache.no_cache import NoCacheSystem
from repro.cache.organization import (
    DirtyRegionList,
    HybridMappingOrganization,
    LruPolicy,
    Organization,
    ReplacementPolicy,
    SetAssociativeOrganization,
    SramTagCache,
    TictocPolicy,
)
from repro.cache.predictor import MapIPredictor
from repro.cache.prefetcher import StridePrefetcher
from repro.cache.request import DemandRequest, Op, Outcome
from repro.cache.tagstore import LookupResult, TagStore
from repro.cache.tdram import TdramCache
from repro.cache.tictoc import TicTocCache

#: Registry used by the experiment runner and the CLI.
DESIGNS = {
    "cascade_lake": CascadeLakeCache,
    "alloy": AlloyCache,
    "bear": BearCache,
    "ndc": NdcCache,
    "tdram": TdramCache,
    "ideal": IdealCache,
    "no_cache": NoCacheSystem,
    "gemini_hybrid": GeminiHybridCache,
    "tictoc": TicTocCache,
}

__all__ = [
    "AlloyCache",
    "BearCache",
    "CascadeLakeCache",
    "CacheOp",
    "DramCacheController",
    "OpKind",
    "GeminiHybridCache",
    "IdealCache",
    "BREAKDOWN_CATEGORIES",
    "CacheMetrics",
    "NdcCache",
    "NoCacheSystem",
    "MapIPredictor",
    "StridePrefetcher",
    "DemandRequest",
    "Op",
    "Outcome",
    "LookupResult",
    "TagStore",
    "TdramCache",
    "TicTocCache",
    "DirtyRegionList",
    "HybridMappingOrganization",
    "LruPolicy",
    "Organization",
    "ReplacementPolicy",
    "SetAssociativeOrganization",
    "SramTagCache",
    "TictocPolicy",
    "DESIGNS",
]
