"""NDC — Native DRAM Cache [60] (ISCA 2024), the closest prior design.

Like TDRAM, NDC keeps tags in the DRAM and compares them there, moving
the same number of bytes per demand (Table IV shows identical bloat).
The differences the paper calls out (§VI) and that this model captures:

* **No early tag probing** — the hit/miss indication is tied to the
  RD/WR command itself, so requests sit in the controller queues until
  their MAIN slot (longer queue occupancy -> Fig 9/10 gap vs TDRAM).
* **Result during the column operation** — the hit/miss is produced by
  NDC's CAM-like sensing during the column access, a little later than
  TDRAM's activation-time compare, and the data-bank column operation
  always executes (slight energy cost; same DQ traffic).
* **Victim buffer drained by an explicit ``RES`` command** — unloading
  requires read-direction grants that bubble the DQ bus between write
  bursts, instead of TDRAM's free read-miss-clean/refresh slots.
"""

from __future__ import annotations

from repro.cache.tdram import TdramCache
from repro.config.system import SystemConfig
from repro.dram.bus import Direction
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator


class NdcCache(TdramCache):
    """Native DRAM Cache: in-DRAM tags without probing or free unloads."""

    design_name = "ndc"

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        super().__init__(sim, config, main_memory)
        self.enable_probing = False
        self.unload_on_refresh = False
        self.unload_on_read_miss_clean = False
        #: RES fires once the victim buffer is half full
        self.res_threshold = max(1, config.flush_buffer_entries // 2)

    def _hm_delay(self) -> int:
        """NDC's result appears during the column operation."""
        timing = self.config.cache_timing
        tag = self.config.tag_timing
        return timing.tRCD + timing.tCCD_L + tag.tHM_int

    def _column_op_happens(self, streams_data: bool) -> bool:
        """NDC always performs the data-bank column operation (§VI)."""
        return True

    def _add_to_flush_buffer(self, channel_idx: int, block: int,
                             time: int) -> None:
        super()._add_to_flush_buffer(channel_idx, block, time)
        if len(self.flush) >= self.res_threshold:
            self._res_drain(channel_idx, time)

    def _res_drain(self, channel_idx: int, time: int) -> None:
        """Explicit RES commands: drain the buffer with read grants.

        These force the DQ bus into the read direction in the middle of
        write traffic — the turnaround bubble TDRAM avoids (§VI).
        """
        self.metrics.events.add("res_drain")
        channel = self.channels[channel_idx]
        while True:
            block = self.flush.pop()
            if block is None:
                break
            self.flush.note_unload("forced")
            end = channel.transfer_raw(time, 64, Direction.READ)
            self.meter.add_dq_bytes(64)
            self.metrics.ledger.move("flush_unload", 64, useful=False)
            self.sim.at(end, self._writeback, block)
