"""Ideal cache: hit/miss and metadata known in zero time (§IV-A).

An upper bound for any tags-in-SRAM design: the controller resolves
the tag check the instant a demand arrives, pays no DRAM access for
tags, and never moves a useless byte. Data accesses (hit reads, demand
writes, fills, dirty-victim readouts) still cost real DRAM time.
"""

from __future__ import annotations

from repro.cache.controller import CacheOp, DramCacheController, OpKind
from repro.cache.request import DemandRequest, Op, Outcome


class IdealCache(DramCacheController):
    """Zero-latency tag check; data accesses at normal DRAM timing."""

    design_name = "ideal"
    burst_bytes = 64
    has_tag_path = False

    def _enqueue(self, request: DemandRequest) -> None:
        now = self.sim.now
        channel_idx, bank = self.route(request.block_addr)
        scheduler = self.schedulers[channel_idx]
        if request.op is Op.READ:
            result = self.tags.probe(request.block_addr, touch=True)
            self._record_tag_result(request, now, result.outcome)
            if result.outcome.is_hit:
                op = CacheOp(OpKind.DATA_READ, request.block_addr, bank,
                             now, demand=request)
                scheduler.push_read(op)
                return
            if result.outcome is Outcome.MISS_DIRTY:
                assert result.victim_block is not None
                self._schedule_victim_readout(result.victim_block, now)
            request.issue_time = now  # no DRAM-cache read command needed
            self.metrics.read_queue_delay.record(0)
            self._fetch(request.block_addr, request)
            return
        result = self.tags.probe(request.block_addr, touch=False)
        self._record_tag_result(request, now, result.outcome)
        evicted = self.tags.install(request.block_addr, dirty=True)
        if evicted is not None and evicted[1]:
            self._schedule_victim_readout(evicted[0], now)
        op = CacheOp(OpKind.DATA_WRITE, request.block_addr, bank, now)
        scheduler.push_write(op, forced=True)

    def _schedule_victim_readout(self, victim_block: int, now: int) -> None:
        channel_idx, bank = self.route(victim_block)
        self.tags.invalidate(victim_block)
        op = CacheOp(OpKind.DATA_READ, victim_block, bank, now,
                     victim_block=victim_block)
        self.schedulers[channel_idx].push_read(op)

    # ------------------------------------------------------------------
    def _earliest_op(self, channel_idx: int, op: CacheOp, now: int) -> int:
        is_write = op.kind is OpKind.DATA_WRITE
        return self.channels[channel_idx].earliest_issue(op.bank, now, is_write)

    def _commit_op(self, channel_idx: int, op: CacheOp, now: int) -> None:
        if op.kind is OpKind.DATA_READ:
            grant = self._access(channel_idx, op.bank, now, is_write=False,
                                 with_data=True)
            assert grant.data_end is not None
            data_end = grant.data_end
            if op.victim_block is not None:
                victim = op.victim_block
                self.metrics.ledger.move("victim_readout", 64, useful=False)
                self.sim.at(data_end, self._writeback, victim)
                return
            demand = op.demand
            assert demand is not None
            self._record_queue_delay(demand, now)
            self.metrics.ledger.move("hit_data", 64, useful=True)
            self.sim.at(data_end, self._complete_read, demand, data_end)
        elif op.kind is OpKind.DATA_WRITE:
            self._access(channel_idx, op.bank, now, is_write=True, with_data=True)
            if op.is_fill:
                self.metrics.ledger.move("fill", 64, useful=False)
            else:
                self.metrics.ledger.move("demand_write", 64, useful=True)
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op kind {op.kind}")
