"""DRAM-cache controller infrastructure shared by every design.

A controller owns the functional :class:`TagStore`, one
:class:`DramChannel` per cache channel, per-channel FR-FCFS schedulers
with bounded read/write buffers and a write-drain watermark policy, an
MSHR file for main-memory fetches, and the metrics/energy instruments.

Concrete designs (Cascade Lake, Alloy, BEAR, NDC, TDRAM, Ideal)
subclass :class:`DramCacheController` and implement:

* :meth:`DramCacheController._enqueue` — turn an accepted demand into
  queued cache operations;
* :meth:`DramCacheController._earliest_op` / :meth:`_commit_op` — the
  design's DRAM transaction for each operation kind;
* optionally :meth:`_on_blocked` (TDRAM's probe slots) and
  :meth:`_handle_fill_eviction` (flush/victim buffers).
"""

from __future__ import annotations

import abc
import enum
import itertools
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.metrics import CacheMetrics
from repro.cache.prefetcher import StridePrefetcher
from repro.cache.request import DemandRequest, Op, Outcome
from repro.cache.tagstore import TagStore
from repro.config.system import SystemConfig
from repro.dram.address import AddressMapper, DramGeometry
from repro.dram.bus import Direction
from repro.dram.device import AccessGrant, DramChannel
from repro.dram.soa import BankStateArrays
from repro.energy.power_model import EnergyMeter
from repro.errors import CapacityError
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator


class OpKind(enum.Enum):
    """Cache operations a design can queue."""

    TAG_READ = "tag_read"      #: CL/Alloy/BEAR: DRAM read retrieving tag+data
    DATA_READ = "data_read"    #: plain data read (Ideal hit, victim readout)
    DATA_WRITE = "data_write"  #: plain data write (demand write or fill)
    ACT_RD = "act_rd"          #: TDRAM/NDC fused activate-read with tag check
    ACT_WR = "act_wr"          #: TDRAM/NDC fused activate-write with tag check


_op_sequence = itertools.count()


class CacheOp:
    """One queued DRAM-cache operation.

    A plain ``__slots__`` class rather than a dataclass: controllers
    allocate one per queued operation on the simulation hot path, and
    slotted instances skip the per-object ``__dict__``.
    """

    __slots__ = ("kind", "block", "bank", "arrive", "demand", "is_fill",
                 "victim_block", "seq")

    def __init__(self, kind: OpKind, block: int, bank: int, arrive: int,
                 demand: Optional[DemandRequest] = None,
                 is_fill: bool = False,
                 victim_block: Optional[int] = None) -> None:
        self.kind = kind
        self.block = block
        self.bank = bank
        self.arrive = arrive
        self.demand = demand
        self.is_fill = is_fill
        #: set when an early probe found a dirty miss: the MAIN slot only
        #: streams this victim out (the demand itself is served via MSHR)
        self.victim_block = victim_block
        self.seq = next(_op_sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheOp({self.kind.value}, blk={self.block:#x}, "
                f"bank={self.bank}, seq={self.seq})")


#: Queue length at which FR-FCFS selection switches from the per-op
#: Python loop to one vectorized gather over the SoA ready column
#: (batched mode only; below this the loop's early exit wins).
_SOA_SELECT_MIN = 8


class ChannelScheduler:
    """Bounded read/write queues + FR-FCFS + write-drain for one channel."""

    def __init__(self, controller: "DramCacheController", index: int) -> None:
        self.controller = controller
        self.index = index
        self.read_q: List[CacheOp] = []
        self.write_q: List[CacheOp] = []
        config = controller.config
        self.read_capacity = config.read_buffer_entries
        self.write_capacity = config.write_buffer_entries
        self.high_watermark = max(1, (3 * self.write_capacity) // 4)
        self.low_watermark = max(0, self.write_capacity // 4)
        self.draining = False
        self._wake_at: Optional[int] = None
        #: per-channel SoA bank state (batched step mode) or None; the
        #: scheduler keeps its per-bank queue-depth column current
        self._soa = controller.channels[index].soa

    # ------------------------------------------------------------------
    def read_space(self) -> int:
        return self.read_capacity - len(self.read_q)

    def write_space(self) -> int:
        return self.write_capacity - len(self.write_q)

    def push_read(self, op: CacheOp) -> None:
        self.read_q.append(op)
        if self._soa is not None:
            self._soa.queue_depth[op.bank] += 1
        self.kick()

    def push_write(self, op: CacheOp, forced: bool = False) -> None:
        """Append to the write queue, counting overflow backpressure.

        Unforced overflow still raises :class:`CapacityError` (the
        front end is expected to have checked :meth:`can_accept`), but
        the rejection is now visible in the metrics; forced pushes past
        capacity (fills, drains) are counted rather than silent.
        """
        if len(self.write_q) >= self.write_capacity:
            events = self.controller.metrics.events
            if not forced:
                events.add("write_q_rejected")
                raise CapacityError(f"write buffer full on channel {self.index}")
            events.add("write_q_forced_over_capacity")
        self.write_q.append(op)
        if self._soa is not None:
            self._soa.queue_depth[op.bank] += 1
        self.kick()

    def remove_read(self, op: CacheOp) -> None:
        self.read_q.remove(op)
        if self._soa is not None:
            self._soa.queue_depth[op.bank] -= 1

    # ------------------------------------------------------------------
    def kick(self) -> None:
        now = self.controller.sim.now
        if self._wake_at is not None and self._wake_at <= now:
            self._wake_at = None
        if self._wake_at is not None:
            # A MAIN issue is already pending; newly arrived work can
            # still be probed in the meantime (TDRAM, §III-E).
            self.controller._on_blocked(self.index, now)
            return
        self._try_issue()

    def _schedule_wake(self, at: int) -> None:
        at = max(at, self.controller.sim.now + 1)
        if self._wake_at is not None and self._wake_at <= at:
            return
        self._wake_at = at
        self.controller.sim.at(at, self._on_wake)

    def _on_wake(self) -> None:
        self._wake_at = None
        self._try_issue()

    def _update_drain_mode(self) -> None:
        if len(self.write_q) >= self.high_watermark:
            self.draining = True
        elif len(self.write_q) <= self.low_watermark:
            self.draining = False

    def _select(self, queue: List[CacheOp], at: int) -> Optional[CacheOp]:
        """FR-FCFS: oldest op whose bank is ready, else the oldest op."""
        soa = self._soa
        if soa is not None and len(queue) >= _SOA_SELECT_MIN:
            # Batched mode, deep queue: one gather over the SoA ready
            # column replaces the per-op loop (same first-match pick).
            bank_ids = np.fromiter((op.bank for op in queue),
                                   dtype=np.int64, count=len(queue))
            index = soa.first_ready(bank_ids, at)
            return queue[index] if index >= 0 else queue[0]
        banks = self.controller.channels[self.index].banks
        for op in queue:
            if banks[op.bank].is_ready(at):
                return op
        return queue[0] if queue else None

    def _try_issue(self) -> None:
        controller = self.controller
        now = controller.sim.now
        self._update_drain_mode()
        use_writes = bool(self.write_q) and (self.draining or not self.read_q)
        queue = self.write_q if use_writes else self.read_q
        if not queue:
            queue = self.write_q if queue is self.read_q else self.read_q
        op = self._select(queue, now)
        if op is None:
            return
        earliest = controller._earliest_op(self.index, op, now)
        if earliest > now:
            self._schedule_wake(earliest)
            controller._on_blocked(self.index, now)
            return
        queue.remove(op)
        if self._soa is not None:
            self._soa.queue_depth[op.bank] -= 1
        controller._commit_op(self.index, op, now)
        # Immediately look for more work once the CA slot frees.
        if self.read_q or self.write_q:
            self._schedule_wake(controller.channels[self.index].ca.free_at)


class DramCacheController(abc.ABC):
    """Base class for all DRAM-cache designs."""

    design_name = "base"
    #: bytes moved per access on the cache DQ bus (Alloy/BEAR use 80)
    burst_bytes = 64
    #: whether the device carries tag mats + an HM bus (TDRAM, NDC)
    has_tag_path = False

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        self.sim = sim
        self.config = config
        self.main_memory = main_memory
        #: allocation policy: "write_allocate" (default), "write_only",
        #: or "write_around" — see docs/backends.md
        self.cache_mode = config.cache_mode
        geometry = config.cache_geometry()
        self.mapper = AddressMapper(geometry)
        self.tags = self._build_tag_store(geometry)
        tag_timing = config.tag_timing if self.has_tag_path else None
        # Batched stepping keeps each channel's hot bank state in
        # structure-of-arrays columns (see repro.dram.soa) so group
        # transitions/queries run as vectorized passes.
        soa_arrays: List[Optional[BankStateArrays]] = [
            BankStateArrays(geometry.banks_per_channel)
            if config.step_mode == "batched" else None
            for _ in range(geometry.channels)
        ]
        self.channels = [
            DramChannel(sim, config.cache_timing, geometry.banks_per_channel,
                        f"{self.design_name}{i}", tag_timing=tag_timing,
                        refresh_policy=config.cache_refresh_policy,
                        soa=soa_arrays[i])
            for i in range(geometry.channels)
        ]
        self.schedulers = [
            ChannelScheduler(self, i) for i in range(geometry.channels)
        ]
        self.metrics = CacheMetrics()
        self.meter = EnergyMeter(
            config.energy_model, geometry.channels, self.has_tag_path
        )
        #: block -> demands waiting on an in-flight main-memory fetch
        self._mshrs: Dict[int, List[DemandRequest]] = {}
        #: outstanding-miss bound: early probing may free read-buffer
        #: entries (§III-E), but the controller still tracks each miss
        #: in an MSHR until the fill returns, bounding memory pressure.
        self.mshr_limit = config.read_buffer_entries
        self.writebacks = 0
        self.prefetcher: Optional[StridePrefetcher] = (
            StridePrefetcher(degree=config.prefetch_degree)
            if config.use_prefetcher else None
        )
        #: reliability subsystem (fault injection, ECC recovery,
        #: scrubbing, degradation) — None unless config.ras.enabled
        self.ras = None
        if config.ras.enabled:
            from repro.ras.manager import RasManager

            self.ras = RasManager(self)
        #: observability layer (lifecycle tracing, epoch series, kernel
        #: profiling) — None unless any config.obs instrument is on
        self.obs = None
        if config.obs.any_enabled:
            from repro.obs.session import ObsSession

            self.obs = ObsSession(self)

    def _build_tag_store(self, geometry: DramGeometry) -> TagStore:
        """Construct the design's tag store (the organization seam).

        The default is set-associative LRU, matching the pre-seam
        behaviour bit for bit. ``cache_organization="reference"``
        selects the frozen pre-seam store for A/B runs; designs with a
        custom layout (Gemini, TicToc) override this hook.
        """
        if self.config.cache_organization == "reference":
            from repro.cache.reference_tagstore import ReferenceTagStore

            return ReferenceTagStore(geometry.total_blocks,
                                     self.config.cache_ways)
        return TagStore(geometry.total_blocks, self.config.cache_ways)

    # ------------------------------------------------------------------
    # Front-end interface
    # ------------------------------------------------------------------
    def route(self, block: int) -> Tuple[int, int]:
        decoded = self.mapper.decode(block)
        return decoded.channel, decoded.bank

    def can_accept(self, op: Op, block: int) -> bool:
        """Whether a new demand fits the controller's bounded buffers."""
        channel, _bank = self.route(block)
        scheduler = self.schedulers[channel]
        if op is Op.READ:
            return (scheduler.read_space() > 0
                    and len(self._mshrs) < self.mshr_limit)
        return self._can_accept_write(scheduler)

    def _can_accept_write(self, scheduler: ChannelScheduler) -> bool:
        """Default: a write needs a write-buffer slot."""
        return scheduler.write_space() > 0

    def submit(self, request: DemandRequest) -> None:
        """Accept a demand (caller must have checked :meth:`can_accept`)."""
        request.arrive_time = self.sim.now
        if self.obs is not None:
            self.obs.on_enqueue(request)
        if (self.cache_mode == "write_around" and request.op is Op.WRITE
                and not self.tags.contains(request.block_addr)):
            self._bypass_write(request)
            return
        if self.prefetcher is not None and request.op is Op.READ:
            self._drive_prefetcher(request)
        self._enqueue(request)

    def _bypass_write(self, request: DemandRequest) -> None:
        """write_around: send a write miss straight to the backing store.

        The cache is not allocated: the 64 demand bytes go to the
        backend as a posted write (a *useful* move — they are the
        demand's payload), the miss is still recorded against the tag
        store so every design sees the same outcome stream, and any
        stale copy of the block sitting in a flush buffer is dropped
        (the bypassed write supersedes it).
        """
        now = self.sim.now
        flush = getattr(self, "flush", None)
        if flush is not None:
            flush.remove(request.block_addr)
        result = self.tags.probe(request.block_addr, touch=False)
        self._record_tag_result(request, now, result.outcome)
        self.metrics.events.add("write_around_bypass")
        self.metrics.ledger.move("mm_write_direct", 64, useful=True)
        self.main_memory.write(request.block_addr)
        request.complete(now)

    def _drive_prefetcher(self, request: DemandRequest) -> None:
        """Train the stride prefetcher and launch speculative fills.

        Prefetches ride the normal fetch+fill path with no owning
        demand; they compete with demands for main-memory bandwidth and
        MSHRs — the interference §V-D describes.
        """
        assert self.prefetcher is not None
        self.prefetcher.note_demand_hit(request.block_addr)
        for candidate in self.prefetcher.observe(request.pc,
                                                 request.block_addr):
            if self.tags.contains(candidate) or candidate in self._mshrs:
                continue
            if len(self._mshrs) >= self.mshr_limit:
                self.prefetcher.stats.add("dropped_mshr_full")
                break
            self.metrics.events.add("prefetch_issued")
            self._fetch(candidate, None)

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    def _record_tag_result(self, demand: DemandRequest, time: int,
                           outcome: Outcome) -> None:
        if self.ras is not None and self.has_tag_path:
            # A corrupt HM result packet is detected by its packet ECC
            # and retransferred; the recovered result lands later.
            time += self.ras.hm_result_read()
        demand.tag_result_time = time
        demand.outcome = outcome
        self.metrics.record_outcome(demand.op, outcome)
        if self.obs is not None:
            self.obs.on_tag_result(demand, time, outcome)
        # Fig. 9's tag-check latency is a read-demand metric: it is the
        # component of the LLC read-miss penalty (§V-A). Write demands
        # resolve their tags with their own (posted) write operation.
        if demand.op is Op.READ:
            self.metrics.tag_check.record(time - demand.arrive_time)

    def _record_queue_delay(self, demand: DemandRequest, issue: int) -> None:
        if demand.issue_time < 0:
            demand.issue_time = issue
            self.metrics.read_queue_delay.record(issue - demand.arrive_time)
            if self.obs is not None:
                self.obs.on_issue(demand, issue)

    def _complete_read(self, demand: DemandRequest, time: int) -> None:
        if demand.completed:
            return
        self.metrics.read_latency.record(time - demand.arrive_time)
        if self.obs is not None:
            self.obs.on_read_complete(demand, time)
        demand.complete(time)

    def _fetch(self, block: int, demand: Optional[DemandRequest]) -> None:
        """Read ``block`` from main memory; fill and complete waiters."""
        if self.obs is not None and demand is not None:
            self.obs.on_fetch_start(demand, self.sim.now)
        waiters = self._mshrs.get(block)
        if waiters is not None:
            if demand is not None:
                waiters.append(demand)
                self.metrics.events.add("mshr_merge")
            return
        self._mshrs[block] = [demand] if demand is not None else []
        # The demand's sequence number rides along so an early-probed
        # fetch cannot overtake older demands at the backing store.
        order = demand.seq if demand is not None else None
        self.main_memory.read(
            block, partial(self._on_fetch_return, block), order=order,
        )

    def _on_fetch_return(self, block: int, time: int) -> None:
        waiters = self._mshrs.pop(block, [])
        # The fetched line is the useful payload answering the demand(s);
        # a speculative fetch nobody waits for moved bytes for nothing.
        self.metrics.ledger.move("mm_fetch", 64, useful=bool(waiters))
        for demand in waiters:
            if self.obs is not None:
                self.obs.on_fetch_return(demand, time)
            self._complete_read(demand, time)
        if self.cache_mode == "write_only":
            # Dirty-traffic-only caching: a fetched line streams through
            # to the requestor without allocating a frame, so the cache
            # holds nothing a writeback would not need anyway.
            self.metrics.events.add("read_fill_bypassed")
            return
        evicted = self.tags.fill(block)
        if evicted is None and not self.tags.contains(block):
            return  # fill dropped (newer data raced in) and nothing evicted
        if evicted is not None and evicted[1]:
            self._handle_fill_eviction(evicted[0], time)
        self._enqueue_fill(block, time)

    def _enqueue_fill(self, block: int, time: int) -> None:
        """Queue the DRAM write that installs the fetched line."""
        channel, bank = self.route(block)
        op = CacheOp(self._fill_op_kind(), block, bank, time, is_fill=True)
        self.schedulers[channel].push_write(op, forced=True)

    def _fill_op_kind(self) -> OpKind:
        return OpKind.DATA_WRITE

    def _handle_fill_eviction(self, victim_block: int, time: int) -> None:
        """A fill displaced a dirty line installed after the miss probe.

        Rare interleaving; the default (tag-in-data designs) reads the
        victim out over DQ and posts the writeback.
        """
        channel, _bank = self.route(victim_block)
        self.channels[channel].transfer_raw(time, 64, Direction.READ)
        self.meter.add_dq_bytes(64)
        self.metrics.ledger.move("victim_readout", 64, useful=False)
        self._writeback(victim_block)

    def _writeback(self, block: int) -> None:
        self.main_memory.write(block)
        self.writebacks += 1
        self.metrics.events.add("writebacks")
        self.metrics.ledger.move("mm_writeback", 64, useful=False)

    # ------------------------------------------------------------------
    # DRAM access helper (energy-instrumented)
    # ------------------------------------------------------------------
    def _access(
        self,
        channel_idx: int,
        bank: int,
        at: int,
        is_write: bool,
        with_data: bool,
        data_bytes: Optional[int] = None,
        with_tag: bool = False,
        hm_result_delay: Optional[int] = None,
        column_op: bool = True,
        transfer: bool = True,
    ) -> AccessGrant:
        """Issue one access on a cache channel, recording energy."""
        channel = self.channels[channel_idx]
        n_bytes = self.burst_bytes if data_bytes is None else data_bytes
        grant = channel.issue_access(
            bank, at, is_write, with_data=with_data, with_tag=with_tag,
            data_bytes=n_bytes, hm_result_delay=hm_result_delay,
            transfer=transfer,
        )
        self.meter.record("cmd")
        self.meter.record("act_data")
        if with_tag:
            self.meter.record("act_tag")
            self.meter.record("hm_packet")
            if self.obs is not None and grant.hm_at is not None:
                self.obs.on_hm_result(channel_idx, grant.hm_at)
        if column_op:
            self.meter.record("col_op")
        if with_data and transfer:
            self.meter.add_dq_bytes(n_bytes)
        return grant

    # ------------------------------------------------------------------
    # Design hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _enqueue(self, request: DemandRequest) -> None:
        """Route an accepted demand into the channel queues."""

    @abc.abstractmethod
    def _earliest_op(self, channel_idx: int, op: CacheOp, now: int) -> int:
        """Earliest instant ``op`` could issue on its channel."""

    @abc.abstractmethod
    def _commit_op(self, channel_idx: int, op: CacheOp, now: int) -> None:
        """Issue ``op`` now: reserve resources, schedule consequences."""

    def _on_blocked(self, channel_idx: int, now: int) -> None:
        """Called when the scheduler found work but no free slot.

        TDRAM overrides this to fire early tag probes into the unused
        CA/HM slots (§III-E).
        """

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def pending_ops(self) -> int:
        return sum(len(s.read_q) + len(s.write_q) for s in self.schedulers) + len(
            self._mshrs
        )

    def queue_occupancy(self) -> int:
        return sum(len(s.read_q) for s in self.schedulers)

    def bank_queue_depths(self) -> Optional[List[List[int]]]:
        """Per-channel, per-bank queued-op depths from the SoA columns.

        ``None`` in the exact event mode (no SoA state is kept there);
        in batched mode the scheduler maintains the depth column on
        every push/issue, so this is an O(banks) snapshot for
        diagnostics and tests.
        """
        if self.channels[0].soa is None:
            return None
        return [channel.soa.depths() for channel in self.channels
                if channel.soa is not None]
