"""Stride prefetcher for the DRAM cache (§V-D's prefetcher discussion).

The paper's preliminary analysis finds prefetchers give only
*incremental* gains at the DRAM-cache level: they interfere with demand
accesses, consume bandwidth and buffers, and add tail latency when
accuracy is low. This reference-point implementation — a classic
PC-indexed stride detector driving degree-N prefetch fills — lets the
`prefetcher_study` quantify exactly that trade-off in this model.

A table entry tracks the last block and last stride per instruction
region; two consecutive accesses with the same stride arm the entry,
and an armed entry emits ``degree`` prefetch candidates ahead of the
demand. Prefetch fetches travel the normal fill path (main-memory read
plus cache fill) but belong to no demand, so a useless prefetch is pure
bandwidth bloat — precisely the hazard the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.errors import ConfigError
from repro.stats.counters import CounterSet


@dataclass
class _StrideEntry:
    last_block: int
    stride: int
    confident: bool


class StridePrefetcher:
    """PC-indexed stride detector with configurable degree."""

    def __init__(self, table_size: int = 256, degree: int = 2,
                 max_stride: int = 64) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ConfigError("table_size must be a positive power of two")
        if degree < 1:
            raise ConfigError("degree must be >= 1")
        if max_stride < 1:
            raise ConfigError("max_stride must be >= 1")
        self.table_size = table_size
        self.degree = degree
        self.max_stride = max_stride
        self._table: Dict[int, _StrideEntry] = {}
        self._outstanding: Set[int] = set()
        self.stats = CounterSet()

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 7)) % self.table_size

    # ------------------------------------------------------------------
    def observe(self, pc: int, block: int) -> List[int]:
        """Train on a demand read; returns blocks to prefetch."""
        index = self._index(pc)
        entry = self._table.get(index)
        candidates: List[int] = []
        if entry is None:
            self._table[index] = _StrideEntry(block, 0, False)
            return candidates
        stride = block - entry.last_block
        if stride != 0 and stride == entry.stride and \
                abs(stride) <= self.max_stride:
            # Second occurrence of the same stride: steady state.
            entry.confident = True
            candidates = [block + stride * i
                          for i in range(1, self.degree + 1)
                          if block + stride * i >= 0]
        else:
            entry.confident = False
        entry.stride = stride
        entry.last_block = block
        fresh = [c for c in candidates if c not in self._outstanding]
        self._outstanding.update(fresh)
        self.stats.add("prefetches", len(fresh))
        return fresh

    # ------------------------------------------------------------------
    def note_demand_hit(self, block: int) -> bool:
        """A demand touched ``block``; was it one we prefetched?"""
        if block in self._outstanding:
            self._outstanding.discard(block)
            self.stats.add("useful")
            return True
        return False

    def note_evicted(self, block: int) -> None:
        """A prefetched block left the cache untouched (wasted)."""
        if block in self._outstanding:
            self._outstanding.discard(block)
            self.stats.add("wasted")

    @property
    def issued(self) -> int:
        return self.stats["prefetches"]

    @property
    def accuracy(self) -> float:
        resolved = self.stats["useful"] + self.stats["wasted"]
        if resolved == 0:
            return 0.0
        return self.stats["useful"] / resolved
