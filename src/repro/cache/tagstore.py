"""Architectural (functional) tag store for the DRAM cache.

The tag store holds the *truth* about cache contents; design
controllers consult it to learn the outcome an access will have, then
model the timing/energy their hardware spends discovering that outcome.

Where a block may live and which line a conflict evicts are delegated
to the pluggable seams in :mod:`repro.cache.organization`: an
:class:`~repro.cache.organization.Organization` (set indexing / way
mapping / probe cost) and a
:class:`~repro.cache.organization.ReplacementPolicy` (victim choice +
touch/install/evict hooks). The default pairing — modulo-indexed
set-associative with LRU-as-list-order — is bit-identical to the
pre-seam store (kept verbatim as
:class:`~repro.cache.reference_tagstore.ReferenceTagStore` for A/B
runs). Direct-mapped is the paper's primary configuration; ``ways > 1``
gives the set-associative variant of §V-F. Only frames that have ever
been touched are materialised (a dict), so a 64 GiB cache costs memory
proportional to the trace, not the device.

When a RAS hook is attached (``SystemConfig.ras.enabled``), every line
additionally carries the SECDED codeword the tag mats would store
(§III-C3), every probe decodes it, and the hook decides recovery:
corrected errors add a latency penalty, uncorrectable ones drop the
line so the access degrades to a clean miss-and-refetch. Every line
that *leaves* the store is decoded exactly once: a probe that named a
victim marks it ``probed`` and the ensuing install consumes the mark
instead of decoding again, while an unpaired eviction (a fill racing
in) decodes at eviction time — so ECC events are neither double- nor
under-counted across the probe→install pair. Fused-off banks force
misses and reject installs, so the controller keeps serving traffic at
reduced capacity. Without a hook the store behaves exactly as before —
the codeword fields are inert.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.organization import (
    LruPolicy,
    Organization,
    ReplacementPolicy,
    SetAssociativeOrganization,
)
from repro.cache.request import Outcome
from repro.errors import ConfigError, RasError


class _Line:
    """One resident tag line (``__slots__``: allocated per cached block)."""

    __slots__ = ("block", "dirty", "codeword", "soft", "probed")

    def __init__(self, block: int, dirty: bool, codeword: int = 0) -> None:
        self.block = block
        self.dirty = dirty
        #: stored SECDED codeword (meaningful only with a RAS hook attached)
        self.codeword = codeword
        #: transient read-disturb overlay, XORed onto the next read
        self.soft = 0
        #: a miss probe already decoded this line as its would-be victim
        #: (the next eviction consumes the mark instead of re-decoding)
        self.probed = False


class LookupResult:
    """Outcome of probing the tag store, plus the would-be victim.

    A ``__slots__`` value object: one is allocated per tag probe on the
    simulation hot path.
    """

    __slots__ = ("outcome", "victim_block", "victim_dirty", "ecc_penalty_ps")

    def __init__(self, outcome: Outcome, victim_block: Optional[int] = None,
                 victim_dirty: bool = False, ecc_penalty_ps: int = 0) -> None:
        self.outcome = outcome
        #: conflicting resident block (on miss)
        self.victim_block = victim_block
        self.victim_dirty = victim_dirty
        #: added latency from ECC corrections/retries on this tag read (ps)
        self.ecc_penalty_ps = ecc_penalty_ps


class TagStore:
    """Tag/metadata array composing an organization and a policy."""

    def __init__(self, num_frames: int, ways: int = 1,
                 organization: Optional[Organization] = None,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if organization is None:
            organization = SetAssociativeOrganization(num_frames, ways)
        self.organization = organization
        self.policy: ReplacementPolicy = (
            policy if policy is not None else LruPolicy())
        self.num_frames = num_frames
        #: maximum way count of any set (uniform organizations: all sets)
        self.ways = ways
        self.num_sets = organization.num_sets
        #: modulo fast path for uniform organizations (the hot default);
        #: ``None`` routes indexing through ``organization.set_index``
        self._mod_sets: Optional[int] = (
            organization.num_sets if organization.uniform else None)
        #: set index -> policy-ordered lines (LRU: index 0 = LRU, last = MRU)
        self._sets: Dict[int, List[_Line]] = {}
        #: lazy prewarm backing: sets ``[0, _lazy_n)`` not present in
        #: ``_sets`` hold one line ``_Line(idx, _lazy_dirty[idx])`` that is
        #: materialised on first touch (see ``bulk_install``)
        self._lazy_n = 0
        self._lazy_dirty: Optional[List[bool]] = None
        #: RAS hook (repro.ras.manager.RasManager) — None = ECC disabled
        self.ras = None
        #: ways fused off by the degradation manager (never all of them)
        self.disabled_ways = 0

    @property
    def available_ways(self) -> int:
        return self.ways - self.disabled_ways

    def set_index(self, block: int) -> int:
        mod = self._mod_sets
        if mod is not None:
            return block % mod
        return self.organization.set_index(block)

    def probe_cost_ps(self, block: int) -> int:
        """Extra search latency of ``block``'s set (organization seam)."""
        return self.organization.probe_cost_ps(self.set_index(block))

    def _capacity(self, idx: int) -> int:
        if self._mod_sets is not None:
            return self.ways - self.disabled_ways
        return max(1, self.organization.ways_of(idx) - self.disabled_ways)

    def _locate(self, block: int) -> Tuple[int, List[_Line], Optional[_Line]]:
        mod = self._mod_sets
        idx = block % mod if mod is not None else \
            self.organization.set_index(block)
        lines = self._sets.get(idx)
        if lines is None:
            lines = self._materialize(idx)
        for line in lines:
            if line.block == block:
                return idx, lines, line
        return idx, lines, None

    def _materialize(self, idx: int) -> List[_Line]:
        """First touch of a set: realise its lazy prewarm line (if any)."""
        if idx < self._lazy_n:
            lines = [_Line(idx, bool(self._lazy_dirty[idx]))]
        else:
            lines = []
        self._sets[idx] = lines
        return lines

    def _materialize_all(self) -> None:
        """Realise every remaining lazy prewarm line (whole-store walks)."""
        n, dirty = self._lazy_n, self._lazy_dirty
        if not n:
            return
        self._lazy_n, self._lazy_dirty = 0, None
        sets = self._sets
        for idx in range(n):
            if idx not in sets:
                sets[idx] = [_Line(idx, bool(dirty[idx]))]

    # ------------------------------------------------------------------
    # Probes (no state change beyond the policy's touch on hit)
    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> LookupResult:
        """Look up ``block``; on a hit optionally touch its recency."""
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            # The bank's tag mat is fused off: served as a forced miss.
            return LookupResult(Outcome.MISS_INVALID)
        idx, lines, line = self._locate(block)
        penalty = 0
        if line is not None and ras is not None:
            verdict = ras.on_tag_read(line, block)
            if verdict is None:
                # Uncorrectable after retries: the line is lost and the
                # access degrades to a miss (clean refetch / counted
                # data loss — the hook already accounted it).
                lines.remove(line)
                self.policy.on_evict(line)
                line = None
            else:
                penalty = verdict
        if line is not None:
            if touch:
                self.policy.on_hit(lines, line)
            outcome = Outcome.HIT_DIRTY if line.dirty else Outcome.HIT_CLEAN
            return LookupResult(outcome, ecc_penalty_ps=penalty)
        if len(lines) < self._capacity(idx):
            return LookupResult(Outcome.MISS_INVALID, ecc_penalty_ps=penalty)
        victim = self.policy.victim(lines)
        if ras is not None:
            # The set read also decoded the victim's tag word; mark it
            # so the eviction this probe leads to does not decode (and
            # count) the same physical read again.
            verdict = ras.on_tag_read(victim, victim.block)
            if verdict is None:
                lines.remove(victim)
                self.policy.on_evict(victim)
                return LookupResult(Outcome.MISS_INVALID,
                                    ecc_penalty_ps=penalty)
            penalty += verdict
            victim.probed = True
        outcome = Outcome.MISS_DIRTY if victim.dirty else Outcome.MISS_CLEAN
        return LookupResult(outcome, victim_block=victim.block,
                            victim_dirty=victim.dirty,
                            ecc_penalty_ps=penalty)

    def contains(self, block: int) -> bool:
        return self._locate(block)[2] is not None

    def is_dirty(self, block: int) -> bool:
        line = self._locate(block)[2]
        return bool(line and line.dirty)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def _evict_for(self, idx: int, lines: List[_Line]) \
            -> Optional[Tuple[int, bool]]:
        """Make room in a full set: pop and account the policy's victim.

        With RAS attached, leaving the store requires the victim's tag
        word to have been read: a probe→install pair decoded it at
        probe time (``probed`` set, consumed here); an unpaired
        eviction — e.g. a fill whose victim was installed after the
        miss probe — decodes it now. An uncorrectable word at that
        point means the victim's content is unrecoverable: nothing can
        be written back, so the eviction reports no victim (the hook
        already counted the loss).
        """
        if len(lines) < self._capacity(idx):
            return None
        victim = self.policy.victim(lines)
        lines.remove(victim)
        self.policy.on_evict(victim)
        ras = self.ras
        if ras is not None:
            if victim.probed:
                victim.probed = False
            elif ras.on_tag_read(victim, victim.block) is None:
                return None
        return (victim.block, victim.dirty)

    def install(self, block: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert (or update) ``block``; returns the evicted (block, dirty).

        A resident block is updated in place (writes re-dirty it); an
        absent block evicts the policy's victim if the set is full.
        Installs routed to a fused-off bank are rejected: dirty data is
        written through to main memory by the RAS hook, clean fills are
        dropped.
        """
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            if dirty:
                ras.write_through(block)
            else:
                ras.dropped_fill()
            return None
        idx, lines, line = self._locate(block)
        if line is not None:
            became_dirty = dirty and not line.dirty
            line.dirty = line.dirty or dirty
            if ras is not None:
                # Rewriting the word stores a fresh codeword (and clears
                # any latent fault in the old one — counted so campaign
                # books balance). Any earlier probe's victim decode
                # referred to the stale word, so the pairing mark resets.
                ras.note_rewrite(line)
                line.codeword = ras.encode_line(block, line.dirty)
                line.soft = 0
                line.probed = False
            self.policy.on_hit(lines, line)
            if became_dirty:
                self.policy.on_dirty(line)
            return None
        evicted = self._evict_for(idx, lines)
        self.policy.on_install(lines, self._new_line(block, dirty))
        return evicted

    def _new_line(self, block: int, dirty: bool) -> _Line:
        codeword = 0
        if self.ras is not None:
            codeword = self.ras.encode_line(block, dirty)
        return _Line(block=block, dirty=dirty, codeword=codeword)

    def fill(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy fetched from main memory (one set walk).

        If the block arrived in the meantime (e.g. a write allocated it
        while the fetch was in flight), the fill is dropped so a stale
        clean copy never overwrites newer dirty data.
        """
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            ras.dropped_fill()
            return None
        idx, lines, line = self._locate(block)
        if line is not None:
            return None
        evicted = self._evict_for(idx, lines)
        self.policy.on_install(lines, self._new_line(block, dirty=False))
        return evicted

    def bulk_install(self, blocks: Iterable[int],
                     dirty_flags: Iterable[bool]) -> None:
        """Fast-path warm-up: install many lines without recency churn.

        Used to emulate the paper's warmed checkpoints (§IV-B): the
        steady-state resident set is installed functionally before the
        timed simulation starts. Later installs to a full set evict in
        arrival order (policies still see install/evict/dirty hooks, so
        residency mirrors stay exact).
        """
        # Numpy arrays convert to native lists once up front; the loop
        # below then runs on plain ints (cheaper hashing and compares).
        if hasattr(blocks, "tolist"):
            blocks = blocks.tolist()
        if hasattr(dirty_flags, "tolist"):
            dirty_flags = dirty_flags.tolist()
        sets = self._sets
        mod = self._mod_sets
        org = self.organization
        policy = self.policy
        ras = self.ras
        if (ras is None and not sets and not self._lazy_n
                and mod is not None and not policy.tracks_residency
                and isinstance(blocks, range)
                and blocks.step == 1 and blocks.start == 0
                and len(blocks) <= mod):
            # The generator prewarm path: a contiguous block range into
            # an empty store. Every block lands in its own set
            # (block % num_sets == block), so instead of allocating a
            # line per block we record the range and materialise each
            # set on first touch — a short run over a large resident set
            # only ever realises the sets it actually probes. Policies
            # that mirror residency need every install surfaced, so
            # they take the general path below.
            self._lazy_n = len(blocks)
            self._lazy_dirty = dirty_flags
            return
        self._materialize_all()
        uniform_capacity = self.available_ways if mod is not None else None
        for block, dirty in zip(blocks, dirty_flags):
            idx = block % mod if mod is not None else org.set_index(block)
            lines = sets.setdefault(idx, [])
            for line in lines:
                if line.block == block:
                    became_dirty = bool(dirty) and not line.dirty
                    line.dirty = line.dirty or bool(dirty)
                    if ras is not None:
                        line.codeword = ras.encode_line(line.block,
                                                        line.dirty)
                    if became_dirty:
                        policy.on_dirty(line)
                    break
            else:
                capacity = (uniform_capacity if uniform_capacity is not None
                            else self._capacity(idx))
                if len(lines) >= capacity:
                    policy.on_evict(lines.pop(0))
                if ras is None:
                    new_line = _Line(block, bool(dirty))
                else:
                    new_line = self._new_line(int(block), bool(dirty))
                policy.on_install(lines, new_line)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        _idx, lines, line = self._locate(block)
        if line is None:
            return False
        lines.remove(line)
        self.policy.on_evict(line)
        return True

    def resident_blocks(self) -> int:
        count = sum(len(lines) for lines in self._sets.values())
        if self._lazy_n:
            count += self._lazy_n - sum(
                1 for idx in self._sets if idx < self._lazy_n)
        return count

    # ------------------------------------------------------------------
    # Degradation support (repro.ras.degrade)
    # ------------------------------------------------------------------
    def disable_way(self) -> List[Tuple[int, bool]]:
        """Fuse off one way store-wide; returns the (block, dirty) lines
        evicted when materialised sets shrink to the new capacity.
        Non-uniform organizations clamp every set to at least one way."""
        if self.available_ways <= 1:
            raise RasError("cannot disable the last remaining way")
        self._materialize_all()
        self.disabled_ways += 1
        evicted: List[Tuple[int, bool]] = []
        for idx, lines in self._sets.items():
            capacity = self._capacity(idx)
            while len(lines) > capacity:
                victim = lines.pop(0)
                self.policy.on_evict(victim)
                evicted.append((victim.block, victim.dirty))
        return evicted

    def evict_matching(
        self, predicate: Callable[[int], bool]
    ) -> List[Tuple[int, bool]]:
        """Drop every resident line whose block satisfies ``predicate``
        (bank fuse-off); returns the evicted (block, dirty) pairs."""
        self._materialize_all()
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            keep = [line for line in lines if not predicate(line.block)]
            if len(keep) != len(lines):
                for line in lines:
                    if predicate(line.block):
                        self.policy.on_evict(line)
                        evicted.append((line.block, line.dirty))
                lines[:] = keep
        return evicted
