"""Architectural (functional) tag store for the DRAM cache.

The tag store holds the *truth* about cache contents; design
controllers consult it to learn the outcome an access will have, then
model the timing/energy their hardware spends discovering that outcome.

Direct-mapped is the paper's primary configuration; ``ways > 1`` gives
the set-associative variant of §V-F with LRU replacement inside a set.
Only frames that have ever been touched are materialised (a dict), so a
64 GiB cache costs memory proportional to the trace, not the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.request import Outcome
from repro.errors import ConfigError


@dataclass
class _Line:
    block: int
    dirty: bool


@dataclass(frozen=True)
class LookupResult:
    """Outcome of probing the tag store, plus the would-be victim."""

    outcome: Outcome
    victim_block: Optional[int] = None   #: conflicting resident block (on miss)
    victim_dirty: bool = False


class TagStore:
    """Set-associative tag/metadata array with LRU replacement."""

    def __init__(self, num_frames: int, ways: int = 1) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if ways <= 0 or num_frames % ways:
            raise ConfigError(f"ways={ways} must divide num_frames={num_frames}")
        self.num_frames = num_frames
        self.ways = ways
        self.num_sets = num_frames // ways
        #: set index -> LRU-ordered lines (index 0 = LRU, last = MRU)
        self._sets: Dict[int, List[_Line]] = {}

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _find(self, block: int) -> Tuple[List[_Line], Optional[_Line]]:
        lines = self._sets.setdefault(self.set_index(block), [])
        for line in lines:
            if line.block == block:
                return lines, line
        return lines, None

    # ------------------------------------------------------------------
    # Probes (no state change beyond LRU touch on hit)
    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> LookupResult:
        """Look up ``block``; on a hit optionally refresh its LRU slot."""
        lines, line = self._find(block)
        if line is not None:
            if touch:
                lines.remove(line)
                lines.append(line)
            outcome = Outcome.HIT_DIRTY if line.dirty else Outcome.HIT_CLEAN
            return LookupResult(outcome)
        if len(lines) < self.ways:
            return LookupResult(Outcome.MISS_INVALID)
        victim = lines[0]
        outcome = Outcome.MISS_DIRTY if victim.dirty else Outcome.MISS_CLEAN
        return LookupResult(outcome, victim_block=victim.block, victim_dirty=victim.dirty)

    def contains(self, block: int) -> bool:
        return self._find(block)[1] is not None

    def is_dirty(self, block: int) -> bool:
        line = self._find(block)[1]
        return bool(line and line.dirty)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def install(self, block: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert (or update) ``block``; returns the evicted (block, dirty).

        A resident block is updated in place (writes re-dirty it); an
        absent block evicts the LRU way if the set is full.
        """
        lines, line = self._find(block)
        if line is not None:
            line.dirty = line.dirty or dirty
            lines.remove(line)
            lines.append(line)
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if len(lines) >= self.ways:
            victim = lines.pop(0)
            evicted = (victim.block, victim.dirty)
        lines.append(_Line(block=block, dirty=dirty))
        return evicted

    def fill(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy fetched from main memory.

        If the block arrived in the meantime (e.g. a write allocated it
        while the fetch was in flight), the fill is dropped so a stale
        clean copy never overwrites newer dirty data.
        """
        if self.contains(block):
            return None
        return self.install(block, dirty=False)

    def bulk_install(self, blocks, dirty_flags) -> None:
        """Fast-path warm-up: install many lines without LRU churn.

        Used to emulate the paper's warmed checkpoints (§IV-B): the
        steady-state resident set is installed functionally before the
        timed simulation starts. Later installs to a full set evict in
        arrival order.
        """
        for block, dirty in zip(blocks, dirty_flags):
            lines = self._sets.setdefault(block % self.num_sets, [])
            for line in lines:
                if line.block == block:
                    line.dirty = line.dirty or bool(dirty)
                    break
            else:
                if len(lines) >= self.ways:
                    lines.pop(0)
                lines.append(_Line(block=int(block), dirty=bool(dirty)))

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        lines, line = self._find(block)
        if line is None:
            return False
        lines.remove(line)
        return True

    def resident_blocks(self) -> int:
        return sum(len(lines) for lines in self._sets.values())
