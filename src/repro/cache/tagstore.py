"""Architectural (functional) tag store for the DRAM cache.

The tag store holds the *truth* about cache contents; design
controllers consult it to learn the outcome an access will have, then
model the timing/energy their hardware spends discovering that outcome.

Direct-mapped is the paper's primary configuration; ``ways > 1`` gives
the set-associative variant of §V-F with LRU replacement inside a set.
Only frames that have ever been touched are materialised (a dict), so a
64 GiB cache costs memory proportional to the trace, not the device.

When a RAS hook is attached (``SystemConfig.ras.enabled``), every line
additionally carries the SECDED codeword the tag mats would store
(§III-C3), every probe decodes it, and the hook decides recovery:
corrected errors add a latency penalty, uncorrectable ones drop the
line so the access degrades to a clean miss-and-refetch. Fused-off
banks force misses and reject installs, so the controller keeps serving
traffic at reduced capacity. Without a hook the store behaves exactly
as before — the codeword fields are inert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.request import Outcome
from repro.errors import ConfigError, RasError


@dataclass
class _Line:
    block: int
    dirty: bool
    #: stored SECDED codeword (meaningful only with a RAS hook attached)
    codeword: int = 0
    #: transient read-disturb overlay, XORed onto the next read
    soft: int = 0


@dataclass(frozen=True)
class LookupResult:
    """Outcome of probing the tag store, plus the would-be victim."""

    outcome: Outcome
    victim_block: Optional[int] = None   #: conflicting resident block (on miss)
    victim_dirty: bool = False
    #: added latency from ECC corrections/retries on this tag read (ps)
    ecc_penalty_ps: int = 0


class TagStore:
    """Set-associative tag/metadata array with LRU replacement."""

    def __init__(self, num_frames: int, ways: int = 1) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if ways <= 0 or num_frames % ways:
            raise ConfigError(f"ways={ways} must divide num_frames={num_frames}")
        self.num_frames = num_frames
        self.ways = ways
        self.num_sets = num_frames // ways
        #: set index -> LRU-ordered lines (index 0 = LRU, last = MRU)
        self._sets: Dict[int, List[_Line]] = {}
        #: RAS hook (repro.ras.manager.RasManager) — None = ECC disabled
        self.ras = None
        #: ways fused off by the degradation manager (never all of them)
        self.disabled_ways = 0

    @property
    def available_ways(self) -> int:
        return self.ways - self.disabled_ways

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _find(self, block: int) -> Tuple[List[_Line], Optional[_Line]]:
        lines = self._sets.setdefault(self.set_index(block), [])
        for line in lines:
            if line.block == block:
                return lines, line
        return lines, None

    # ------------------------------------------------------------------
    # Probes (no state change beyond LRU touch on hit)
    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> LookupResult:
        """Look up ``block``; on a hit optionally refresh its LRU slot."""
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            # The bank's tag mat is fused off: served as a forced miss.
            return LookupResult(Outcome.MISS_INVALID)
        lines, line = self._find(block)
        penalty = 0
        if line is not None and ras is not None:
            verdict = ras.on_tag_read(line, block)
            if verdict is None:
                # Uncorrectable after retries: the line is lost and the
                # access degrades to a miss (clean refetch / counted
                # data loss — the hook already accounted it).
                lines.remove(line)
                line = None
            else:
                penalty = verdict
        if line is not None:
            if touch:
                lines.remove(line)
                lines.append(line)
            outcome = Outcome.HIT_DIRTY if line.dirty else Outcome.HIT_CLEAN
            return LookupResult(outcome, ecc_penalty_ps=penalty)
        if len(lines) < self.available_ways:
            return LookupResult(Outcome.MISS_INVALID, ecc_penalty_ps=penalty)
        victim = lines[0]
        if ras is not None:
            # The set read also decoded the victim's tag word.
            verdict = ras.on_tag_read(victim, victim.block)
            if verdict is None:
                lines.remove(victim)
                return LookupResult(Outcome.MISS_INVALID,
                                    ecc_penalty_ps=penalty)
            penalty += verdict
        outcome = Outcome.MISS_DIRTY if victim.dirty else Outcome.MISS_CLEAN
        return LookupResult(outcome, victim_block=victim.block,
                            victim_dirty=victim.dirty,
                            ecc_penalty_ps=penalty)

    def contains(self, block: int) -> bool:
        return self._find(block)[1] is not None

    def is_dirty(self, block: int) -> bool:
        line = self._find(block)[1]
        return bool(line and line.dirty)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def install(self, block: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert (or update) ``block``; returns the evicted (block, dirty).

        A resident block is updated in place (writes re-dirty it); an
        absent block evicts the LRU way if the set is full. Installs
        routed to a fused-off bank are rejected: dirty data is written
        through to main memory by the RAS hook, clean fills are dropped.
        """
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            if dirty:
                ras.write_through(block)
            else:
                ras.dropped_fill()
            return None
        lines, line = self._find(block)
        if line is not None:
            line.dirty = line.dirty or dirty
            if ras is not None:
                # Rewriting the word stores a fresh codeword (and clears
                # any latent fault in the old one — counted so campaign
                # books balance).
                ras.note_rewrite(line)
                line.codeword = ras.encode_line(block, line.dirty)
                line.soft = 0
            lines.remove(line)
            lines.append(line)
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if len(lines) >= self.available_ways:
            victim = lines.pop(0)
            evicted = (victim.block, victim.dirty)
        lines.append(self._new_line(block, dirty))
        return evicted

    def _new_line(self, block: int, dirty: bool) -> _Line:
        codeword = 0
        if self.ras is not None:
            codeword = self.ras.encode_line(block, dirty)
        return _Line(block=block, dirty=dirty, codeword=codeword)

    def fill(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy fetched from main memory.

        If the block arrived in the meantime (e.g. a write allocated it
        while the fetch was in flight), the fill is dropped so a stale
        clean copy never overwrites newer dirty data.
        """
        if self.contains(block):
            return None
        return self.install(block, dirty=False)

    def bulk_install(self, blocks: Iterable[int],
                     dirty_flags: Iterable[bool]) -> None:
        """Fast-path warm-up: install many lines without LRU churn.

        Used to emulate the paper's warmed checkpoints (§IV-B): the
        steady-state resident set is installed functionally before the
        timed simulation starts. Later installs to a full set evict in
        arrival order.
        """
        capacity = self.available_ways
        for block, dirty in zip(blocks, dirty_flags):
            lines = self._sets.setdefault(block % self.num_sets, [])
            for line in lines:
                if line.block == block:
                    line.dirty = line.dirty or bool(dirty)
                    if self.ras is not None:
                        line.codeword = self.ras.encode_line(line.block,
                                                             line.dirty)
                    break
            else:
                if len(lines) >= capacity:
                    lines.pop(0)
                lines.append(self._new_line(int(block), bool(dirty)))

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        lines, line = self._find(block)
        if line is None:
            return False
        lines.remove(line)
        return True

    def resident_blocks(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    # ------------------------------------------------------------------
    # Degradation support (repro.ras.degrade)
    # ------------------------------------------------------------------
    def disable_way(self) -> List[Tuple[int, bool]]:
        """Fuse off one way store-wide; returns the (block, dirty) lines
        evicted when materialised sets shrink to the new capacity."""
        if self.available_ways <= 1:
            raise RasError("cannot disable the last remaining way")
        self.disabled_ways += 1
        capacity = self.available_ways
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            while len(lines) > capacity:
                victim = lines.pop(0)
                evicted.append((victim.block, victim.dirty))
        return evicted

    def evict_matching(
        self, predicate: Callable[[int], bool]
    ) -> List[Tuple[int, bool]]:
        """Drop every resident line whose block satisfies ``predicate``
        (bank fuse-off); returns the evicted (block, dirty) pairs."""
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            keep = [line for line in lines if not predicate(line.block)]
            if len(keep) != len(lines):
                evicted.extend(
                    (line.block, line.dirty)
                    for line in lines if predicate(line.block)
                )
                lines[:] = keep
        return evicted
