"""Architectural (functional) tag store for the DRAM cache.

The tag store holds the *truth* about cache contents; design
controllers consult it to learn the outcome an access will have, then
model the timing/energy their hardware spends discovering that outcome.

Direct-mapped is the paper's primary configuration; ``ways > 1`` gives
the set-associative variant of §V-F with LRU replacement inside a set.
Only frames that have ever been touched are materialised (a dict), so a
64 GiB cache costs memory proportional to the trace, not the device.

When a RAS hook is attached (``SystemConfig.ras.enabled``), every line
additionally carries the SECDED codeword the tag mats would store
(§III-C3), every probe decodes it, and the hook decides recovery:
corrected errors add a latency penalty, uncorrectable ones drop the
line so the access degrades to a clean miss-and-refetch. Fused-off
banks force misses and reject installs, so the controller keeps serving
traffic at reduced capacity. Without a hook the store behaves exactly
as before — the codeword fields are inert.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.request import Outcome
from repro.errors import ConfigError, RasError


class _Line:
    """One resident tag line (``__slots__``: allocated per cached block)."""

    __slots__ = ("block", "dirty", "codeword", "soft")

    def __init__(self, block: int, dirty: bool, codeword: int = 0) -> None:
        self.block = block
        self.dirty = dirty
        #: stored SECDED codeword (meaningful only with a RAS hook attached)
        self.codeword = codeword
        #: transient read-disturb overlay, XORed onto the next read
        self.soft = 0


class LookupResult:
    """Outcome of probing the tag store, plus the would-be victim.

    A ``__slots__`` value object: one is allocated per tag probe on the
    simulation hot path.
    """

    __slots__ = ("outcome", "victim_block", "victim_dirty", "ecc_penalty_ps")

    def __init__(self, outcome: Outcome, victim_block: Optional[int] = None,
                 victim_dirty: bool = False, ecc_penalty_ps: int = 0) -> None:
        self.outcome = outcome
        #: conflicting resident block (on miss)
        self.victim_block = victim_block
        self.victim_dirty = victim_dirty
        #: added latency from ECC corrections/retries on this tag read (ps)
        self.ecc_penalty_ps = ecc_penalty_ps


class TagStore:
    """Set-associative tag/metadata array with LRU replacement."""

    def __init__(self, num_frames: int, ways: int = 1) -> None:
        if num_frames <= 0:
            raise ConfigError("num_frames must be positive")
        if ways <= 0 or num_frames % ways:
            raise ConfigError(f"ways={ways} must divide num_frames={num_frames}")
        self.num_frames = num_frames
        self.ways = ways
        self.num_sets = num_frames // ways
        #: set index -> LRU-ordered lines (index 0 = LRU, last = MRU)
        self._sets: Dict[int, List[_Line]] = {}
        #: lazy prewarm backing: sets ``[0, _lazy_n)`` not present in
        #: ``_sets`` hold one line ``_Line(idx, _lazy_dirty[idx])`` that is
        #: materialised on first touch (see ``bulk_install``)
        self._lazy_n = 0
        self._lazy_dirty: Optional[List[bool]] = None
        #: RAS hook (repro.ras.manager.RasManager) — None = ECC disabled
        self.ras = None
        #: ways fused off by the degradation manager (never all of them)
        self.disabled_ways = 0

    @property
    def available_ways(self) -> int:
        return self.ways - self.disabled_ways

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _find(self, block: int) -> Tuple[List[_Line], Optional[_Line]]:
        idx = block % self.num_sets
        lines = self._sets.get(idx)
        if lines is None:
            lines = self._materialize(idx)
        for line in lines:
            if line.block == block:
                return lines, line
        return lines, None

    def _materialize(self, idx: int) -> List[_Line]:
        """First touch of a set: realise its lazy prewarm line (if any)."""
        if idx < self._lazy_n:
            lines = [_Line(idx, bool(self._lazy_dirty[idx]))]
        else:
            lines = []
        self._sets[idx] = lines
        return lines

    def _materialize_all(self) -> None:
        """Realise every remaining lazy prewarm line (whole-store walks)."""
        n, dirty = self._lazy_n, self._lazy_dirty
        if not n:
            return
        self._lazy_n, self._lazy_dirty = 0, None
        sets = self._sets
        for idx in range(n):
            if idx not in sets:
                sets[idx] = [_Line(idx, bool(dirty[idx]))]

    # ------------------------------------------------------------------
    # Probes (no state change beyond LRU touch on hit)
    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> LookupResult:
        """Look up ``block``; on a hit optionally refresh its LRU slot."""
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            # The bank's tag mat is fused off: served as a forced miss.
            return LookupResult(Outcome.MISS_INVALID)
        lines, line = self._find(block)
        penalty = 0
        if line is not None and ras is not None:
            verdict = ras.on_tag_read(line, block)
            if verdict is None:
                # Uncorrectable after retries: the line is lost and the
                # access degrades to a miss (clean refetch / counted
                # data loss — the hook already accounted it).
                lines.remove(line)
                line = None
            else:
                penalty = verdict
        if line is not None:
            if touch:
                lines.remove(line)
                lines.append(line)
            outcome = Outcome.HIT_DIRTY if line.dirty else Outcome.HIT_CLEAN
            return LookupResult(outcome, ecc_penalty_ps=penalty)
        if len(lines) < self.available_ways:
            return LookupResult(Outcome.MISS_INVALID, ecc_penalty_ps=penalty)
        victim = lines[0]
        if ras is not None:
            # The set read also decoded the victim's tag word.
            verdict = ras.on_tag_read(victim, victim.block)
            if verdict is None:
                lines.remove(victim)
                return LookupResult(Outcome.MISS_INVALID,
                                    ecc_penalty_ps=penalty)
            penalty += verdict
        outcome = Outcome.MISS_DIRTY if victim.dirty else Outcome.MISS_CLEAN
        return LookupResult(outcome, victim_block=victim.block,
                            victim_dirty=victim.dirty,
                            ecc_penalty_ps=penalty)

    def contains(self, block: int) -> bool:
        return self._find(block)[1] is not None

    def is_dirty(self, block: int) -> bool:
        line = self._find(block)[1]
        return bool(line and line.dirty)

    # ------------------------------------------------------------------
    # State changes
    # ------------------------------------------------------------------
    def install(self, block: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert (or update) ``block``; returns the evicted (block, dirty).

        A resident block is updated in place (writes re-dirty it); an
        absent block evicts the LRU way if the set is full. Installs
        routed to a fused-off bank are rejected: dirty data is written
        through to main memory by the RAS hook, clean fills are dropped.
        """
        ras = self.ras
        if ras is not None and ras.block_disabled(block):
            if dirty:
                ras.write_through(block)
            else:
                ras.dropped_fill()
            return None
        lines, line = self._find(block)
        if line is not None:
            line.dirty = line.dirty or dirty
            if ras is not None:
                # Rewriting the word stores a fresh codeword (and clears
                # any latent fault in the old one — counted so campaign
                # books balance).
                ras.note_rewrite(line)
                line.codeword = ras.encode_line(block, line.dirty)
                line.soft = 0
            lines.remove(line)
            lines.append(line)
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if len(lines) >= self.available_ways:
            victim = lines.pop(0)
            evicted = (victim.block, victim.dirty)
        lines.append(self._new_line(block, dirty))
        return evicted

    def _new_line(self, block: int, dirty: bool) -> _Line:
        codeword = 0
        if self.ras is not None:
            codeword = self.ras.encode_line(block, dirty)
        return _Line(block=block, dirty=dirty, codeword=codeword)

    def fill(self, block: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy fetched from main memory.

        If the block arrived in the meantime (e.g. a write allocated it
        while the fetch was in flight), the fill is dropped so a stale
        clean copy never overwrites newer dirty data.
        """
        if self.contains(block):
            return None
        return self.install(block, dirty=False)

    def bulk_install(self, blocks: Iterable[int],
                     dirty_flags: Iterable[bool]) -> None:
        """Fast-path warm-up: install many lines without LRU churn.

        Used to emulate the paper's warmed checkpoints (§IV-B): the
        steady-state resident set is installed functionally before the
        timed simulation starts. Later installs to a full set evict in
        arrival order.
        """
        # Numpy arrays convert to native lists once up front; the loop
        # below then runs on plain ints (cheaper hashing and compares).
        if hasattr(blocks, "tolist"):
            blocks = blocks.tolist()
        if hasattr(dirty_flags, "tolist"):
            dirty_flags = dirty_flags.tolist()
        capacity = self.available_ways
        sets = self._sets
        num_sets = self.num_sets
        ras = self.ras
        if (ras is None and not sets and not self._lazy_n
                and isinstance(blocks, range)
                and blocks.step == 1 and blocks.start == 0
                and len(blocks) <= num_sets):
            # The generator prewarm path: a contiguous block range into
            # an empty store. Every block lands in its own set
            # (block % num_sets == block), so instead of allocating a
            # line per block we record the range and materialise each
            # set on first touch — a short run over a large resident set
            # only ever realises the sets it actually probes.
            self._lazy_n = len(blocks)
            self._lazy_dirty = dirty_flags
            return
        self._materialize_all()
        for block, dirty in zip(blocks, dirty_flags):
            lines = sets.setdefault(block % num_sets, [])
            for line in lines:
                if line.block == block:
                    line.dirty = line.dirty or bool(dirty)
                    if ras is not None:
                        line.codeword = ras.encode_line(line.block,
                                                        line.dirty)
                    break
            else:
                if len(lines) >= capacity:
                    lines.pop(0)
                if ras is None:
                    lines.append(_Line(block, bool(dirty)))
                else:
                    lines.append(self._new_line(int(block), bool(dirty)))

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        lines, line = self._find(block)
        if line is None:
            return False
        lines.remove(line)
        return True

    def resident_blocks(self) -> int:
        count = sum(len(lines) for lines in self._sets.values())
        if self._lazy_n:
            count += self._lazy_n - sum(
                1 for idx in self._sets if idx < self._lazy_n)
        return count

    # ------------------------------------------------------------------
    # Degradation support (repro.ras.degrade)
    # ------------------------------------------------------------------
    def disable_way(self) -> List[Tuple[int, bool]]:
        """Fuse off one way store-wide; returns the (block, dirty) lines
        evicted when materialised sets shrink to the new capacity."""
        if self.available_ways <= 1:
            raise RasError("cannot disable the last remaining way")
        self._materialize_all()
        self.disabled_ways += 1
        capacity = self.available_ways
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            while len(lines) > capacity:
                victim = lines.pop(0)
                evicted.append((victim.block, victim.dirty))
        return evicted

    def evict_matching(
        self, predicate: Callable[[int], bool]
    ) -> List[Tuple[int, bool]]:
        """Drop every resident line whose block satisfies ``predicate``
        (bank fuse-off); returns the evicted (block, dirty) pairs."""
        self._materialize_all()
        evicted: List[Tuple[int, bool]] = []
        for lines in self._sets.values():
            keep = [line for line in lines if not predicate(line.block)]
            if len(keep) != len(lines):
                evicted.extend(
                    (line.block, line.dirty)
                    for line in lines if predicate(line.block)
                )
                lines[:] = keep
        return evicted
