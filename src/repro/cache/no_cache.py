"""No-DRAM-cache baseline: every demand goes straight to main memory.

Figure 12 normalises every design against this system; the paper's
headline observation is that Cascade Lake/Alloy/BEAR *slow down* large
workloads relative to it, while NDC and TDRAM speed them up.
"""

from __future__ import annotations

from functools import partial

from repro.cache.metrics import CacheMetrics
from repro.cache.request import DemandRequest, Op
from repro.config.system import SystemConfig
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator


class NoCacheSystem:
    """Front-end-compatible shim that bypasses the DRAM cache entirely."""

    design_name = "no_cache"
    has_tag_path = False

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        self.sim = sim
        self.config = config
        self.main_memory = main_memory
        self.metrics = CacheMetrics()
        self.meter = None  # all energy is accounted by the main memory
        #: crude in-flight bounds mirroring the controller's buffers
        self._inflight_reads = 0
        self._read_capacity = config.read_buffer_entries * config.mm_channels
        self._write_capacity = config.write_buffer_entries * config.mm_channels

    def can_accept(self, op: Op, block: int) -> bool:
        if op is Op.READ:
            return self._inflight_reads < self._read_capacity
        return self.main_memory.pending_writes() < self._write_capacity

    def submit(self, request: DemandRequest) -> None:
        request.arrive_time = self.sim.now
        if request.op is Op.READ:
            self._inflight_reads += 1
            self.main_memory.read(
                request.block_addr, partial(self._on_read_done, request),
            )
        else:
            self.main_memory.write(request.block_addr)

    def _on_read_done(self, request: DemandRequest, time: int) -> None:
        self._inflight_reads -= 1
        self.metrics.read_latency.record(time - request.arrive_time)
        request.complete(time)

    def pending_ops(self) -> int:
        return self.main_memory.pending()
