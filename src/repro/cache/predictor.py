"""MAP-I hit/miss predictor (Qureshi & Loh [58], evaluated in §V-D).

A Memory Access Predictor indexed by the *instruction* address of the
demand: a table of saturating counters keyed by a hash of the PC. On a
predicted miss, the controller launches the main-memory fetch
speculatively, in parallel with the tag-check read; a wrong prediction
wastes a main-memory access (the bandwidth-bloat hazard the paper
highlights when arguing for TDRAM's deterministic probing).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.stats.counters import CounterSet


class MapIPredictor:
    """PC-indexed table of 2-bit saturating hit/miss counters."""

    def __init__(self, table_size: int = 1024, counter_bits: int = 2) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ConfigError("table_size must be a positive power of two")
        if counter_bits < 1:
            raise ConfigError("counter_bits must be >= 1")
        self.table_size = table_size
        self.max_value = (1 << counter_bits) - 1
        #: counters start weakly predicting hit (mid-scale)
        self._table = [self.max_value // 2 + 1] * table_size
        self.stats = CounterSet()

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 13)) % self.table_size

    def predict_hit(self, pc: int) -> bool:
        """True if the access is predicted to hit the DRAM cache."""
        predicted = self._table[self._index(pc)] > self.max_value // 2
        self.stats.add("predictions")
        return predicted

    def predict_miss(self, pc: int) -> bool:
        return not self.predict_hit(pc)

    def update(self, pc: int, was_hit: bool) -> None:
        """Train the counter with the architectural outcome."""
        index = self._index(pc)
        value = self._table[index]
        if was_hit:
            self._table[index] = min(self.max_value, value + 1)
        else:
            self._table[index] = max(0, value - 1)
        self.stats.add("updates")
        predicted_hit = value > self.max_value // 2
        if predicted_hit == was_hit:
            self.stats.add("correct")
        else:
            self.stats.add("wrong")

    @property
    def accuracy(self) -> float:
        updates = self.stats["updates"]
        if updates == 0:
            return 0.0
        return self.stats["correct"] / updates
