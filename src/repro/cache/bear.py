"""BEAR cache [28]: Alloy plus bandwidth-bloat mitigations.

BEAR coordinates the LLC and the DRAM cache: the LLC tracks a "present
in DRAM cache" bit, so **writebacks that hit skip the tag-check read
entirely** (§II-A, §II-B.2). Read misses still pay the tag-check read,
and the 80 B TAD granularity still inflates every remaining transfer —
which is why BEAR lands between Alloy and TDRAM in Figures 3/9-13.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.controller import CacheOp, OpKind
from repro.cache.request import DemandRequest, Op
from repro.config.system import SystemConfig
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator


class BearCache(CascadeLakeCache):
    """BEAR: Alloy with write-hit bypass and bandwidth-aware fills."""

    design_name = "bear"
    burst_bytes = 80
    #: Bandwidth-Aware Bypass: fraction of read-miss fills skipped (the
    #: BEAR paper's BAB policy converges on bypassing ~90 % of fills
    #: with negligible hit-rate loss on low-reuse workloads; a fixed
    #: moderate rate keeps the model simple and the bloat in range).
    fill_bypass_probability = 0.5

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        super().__init__(sim, config, main_memory)
        self._bypass_rng = np.random.default_rng(0xBEA12)

    def _on_fetch_return(self, block: int, time: int) -> None:
        waiters = self._mshrs.pop(block, [])
        self.metrics.ledger.move("mm_fetch", 64, useful=bool(waiters))
        for demand in waiters:
            self._complete_read(demand, time)
        if self._bypass_rng.random() < self.fill_bypass_probability:
            self.metrics.events.add("fill_bypass")
            return
        evicted = self.tags.fill(block)
        if evicted is None and not self.tags.contains(block):
            return
        if evicted is not None and evicted[1]:
            self._handle_fill_eviction(evicted[0], time)
        self._enqueue_fill(block, time)

    def _enqueue(self, request: DemandRequest) -> None:
        if request.op is Op.WRITE:
            result = self.tags.probe(request.block_addr, touch=False)
            if result.outcome.is_hit:
                # The LLC's presence bit answers the tag check for free.
                self._record_tag_result(request, self.sim.now, result.outcome)
                self.metrics.events.add("write_hit_bypass")
                self.tags.install(request.block_addr, dirty=True)
                channel, bank = self.route(request.block_addr)
                op = CacheOp(OpKind.DATA_WRITE, request.block_addr, bank,
                             self.sim.now)
                self.schedulers[channel].push_write(op, forced=True)
                return
        super()._enqueue(request)
