"""Demand request and access-outcome types shared by all cache designs."""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional


class Op(enum.Enum):
    """Demand type as seen by the DRAM cache (post-LLC)."""

    READ = "read"      #: LLC fetch (on-chip miss) — latency critical
    WRITE = "write"    #: LLC writeback of a full 64 B line — posted


class Outcome(enum.Enum):
    """Architectural outcome of a cache access (Table II rows)."""

    HIT_CLEAN = "hit_clean"
    HIT_DIRTY = "hit_dirty"
    MISS_INVALID = "miss_invalid"   #: frame empty
    MISS_CLEAN = "miss_clean"       #: conflicting clean line present
    MISS_DIRTY = "miss_dirty"       #: conflicting dirty line present

    @property
    def is_hit(self) -> bool:
        return self in (Outcome.HIT_CLEAN, Outcome.HIT_DIRTY)

    @property
    def is_dirty_miss(self) -> bool:
        return self is Outcome.MISS_DIRTY


_sequence = itertools.count()


class DemandRequest:
    """One 64 B demand travelling through the memory system.

    A ``__slots__`` class: one instance is allocated per demand on the
    simulation hot path, so the per-object ``__dict__`` is worth
    avoiding.
    """

    __slots__ = ("op", "block_addr", "core_id", "pc", "seq", "arrive_time",
                 "on_complete", "tag_result_time", "issue_time", "probed",
                 "outcome", "victim_block", "completed")

    def __init__(self, op: Op, block_addr: int, core_id: int = 0,
                 pc: int = 0,
                 on_complete: Optional[Callable[[int], None]] = None) -> None:
        self.op = op
        self.block_addr = block_addr
        self.core_id = core_id
        #: synthetic instruction address (region id) for MAP-I prediction
        self.pc = pc
        self.seq = next(_sequence)
        #: set by the controller when the demand enters its queues
        self.arrive_time = -1
        #: completion callback (front end wiring); receives finish time
        self.on_complete = on_complete
        # design bookkeeping
        self.tag_result_time = -1  #: when hit/miss became known at controller
        self.issue_time = -1       #: first DRAM-cache action for this demand
        self.probed = False        #: TDRAM early-probe already answered it
        self.outcome: Optional[Outcome] = None
        self.victim_block: Optional[int] = None
        self.completed = False

    @property
    def is_read(self) -> bool:
        return self.op is Op.READ

    def complete(self, time: int) -> None:
        """Deliver the response to the front end (idempotent)."""
        if self.completed:
            return
        self.completed = True
        if self.on_complete is not None:
            self.on_complete(time)

    def __repr__(self) -> str:
        return f"DemandRequest({self.op.value}, blk={self.block_addr:#x}, seq={self.seq})"
