"""Demand request and access-outcome types shared by all cache designs."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class Op(enum.Enum):
    """Demand type as seen by the DRAM cache (post-LLC)."""

    READ = "read"      #: LLC fetch (on-chip miss) — latency critical
    WRITE = "write"    #: LLC writeback of a full 64 B line — posted


class Outcome(enum.Enum):
    """Architectural outcome of a cache access (Table II rows)."""

    HIT_CLEAN = "hit_clean"
    HIT_DIRTY = "hit_dirty"
    MISS_INVALID = "miss_invalid"   #: frame empty
    MISS_CLEAN = "miss_clean"       #: conflicting clean line present
    MISS_DIRTY = "miss_dirty"       #: conflicting dirty line present

    @property
    def is_hit(self) -> bool:
        return self in (Outcome.HIT_CLEAN, Outcome.HIT_DIRTY)

    @property
    def is_dirty_miss(self) -> bool:
        return self is Outcome.MISS_DIRTY


_sequence = itertools.count()


@dataclass
class DemandRequest:
    """One 64 B demand travelling through the memory system."""

    op: Op
    block_addr: int
    core_id: int = 0
    #: synthetic instruction address (region id) for MAP-I prediction
    pc: int = 0
    seq: int = field(default_factory=lambda: next(_sequence))
    #: set by the controller when the demand enters its queues
    arrive_time: int = -1
    #: completion callback (front end wiring); receives finish time
    on_complete: Optional[Callable[[int], None]] = None
    #: design bookkeeping
    tag_result_time: int = -1      #: when hit/miss became known at controller
    issue_time: int = -1           #: first DRAM-cache action for this demand
    probed: bool = False           #: TDRAM early-probe already answered it
    outcome: Optional[Outcome] = None
    victim_block: Optional[int] = None
    completed: bool = False

    @property
    def is_read(self) -> bool:
        return self.op is Op.READ

    def complete(self, time: int) -> None:
        """Deliver the response to the front end (idempotent)."""
        if self.completed:
            return
        self.completed = True
        if self.on_complete is not None:
            self.on_complete(time)

    def __repr__(self) -> str:
        return f"DemandRequest({self.op.value}, blk={self.block_addr:#x}, seq={self.seq})"
