"""Per-run metrics collected by every DRAM-cache design.

One :class:`CacheMetrics` instance is owned by a controller; the
experiment runner calls :meth:`reset` at the end of the warm-up window
so reported statistics cover only the measured region (mirroring the
paper's warmed-checkpoint methodology, §IV-B).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.request import Op, Outcome
from repro.stats.bandwidth import BandwidthLedger
from repro.stats.counters import CounterSet, LatencyStat, OccupancyStat

#: Fig. 1 category labels, derived from (op, outcome).
BREAKDOWN_CATEGORIES = (
    "read_hit",
    "write_hit",
    "read_miss_clean",
    "read_miss_dirty",
    "write_miss_clean",
    "write_miss_dirty",
)


def breakdown_category(op: Op, outcome: Outcome) -> str:
    """Map an access to its Fig. 1 hit/miss category.

    Misses to invalid frames are grouped with clean misses (no victim
    data is at stake either way).
    """
    kind = "read" if op is Op.READ else "write"
    if outcome.is_hit:
        return f"{kind}_hit"
    if outcome is Outcome.MISS_DIRTY:
        return f"{kind}_miss_dirty"
    return f"{kind}_miss_clean"


class CacheMetrics:
    """All measured quantities for one (design, workload) run."""

    def __init__(self) -> None:
        self.outcomes = CounterSet()
        self.events = CounterSet()
        self.ledger = BandwidthLedger()
        self.tag_check = LatencyStat("tag_check")
        self.read_queue_delay = LatencyStat("read_queue_delay")
        self.read_latency = LatencyStat("read_latency")
        self.flush_occupancy = OccupancyStat("flush_buffer")

    # ------------------------------------------------------------------
    def record_outcome(self, op: Op, outcome: Outcome) -> None:
        self.outcomes.add(breakdown_category(op, outcome))
        self.outcomes.add("demands")
        if op is Op.READ:
            self.outcomes.add("reads")
        else:
            self.outcomes.add("writes")
        if outcome.is_hit:
            self.outcomes.add("hits")
        else:
            self.outcomes.add("misses")

    # ------------------------------------------------------------------
    @property
    def demands(self) -> int:
        return self.outcomes["demands"]

    @property
    def miss_ratio(self) -> float:
        if self.demands == 0:
            return 0.0
        return self.outcomes["misses"] / self.demands

    @property
    def read_miss_ratio(self) -> float:
        reads = self.outcomes["reads"]
        if reads == 0:
            return 0.0
        read_misses = self.outcomes["read_miss_clean"] + self.outcomes["read_miss_dirty"]
        return read_misses / reads

    def breakdown(self) -> Dict[str, float]:
        """Fig. 1: fraction of demands in each hit/miss category.

        An empty measured region reports 0.0 in every category — the
        same early-return convention as :attr:`miss_ratio` and
        :attr:`read_miss_ratio`, rather than dividing by a fake
        denominator of 1.
        """
        total = self.demands
        if total == 0:
            return {name: 0.0 for name in BREAKDOWN_CATEGORIES}
        return {
            name: self.outcomes[name] / total for name in BREAKDOWN_CATEGORIES
        }

    def reset(self) -> None:
        self.outcomes.reset()
        self.events.reset()
        self.ledger.reset()
        self.tag_check.reset()
        self.read_queue_delay.reset()
        self.read_latency.reset()
        self.flush_occupancy.reset()
