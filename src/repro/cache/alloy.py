"""Alloy cache [58]: tag-and-data (TAD) units streamed in one burst.

Alloy stores the tag alongside the line and streams both in a single
80 B access (64 B data + 8 B tag + 8 B ignored), which the paper models
as increased timing parameters (§IV-A). Behaviourally it follows the
same read-to-check-tags flow as Cascade Lake, so it shares that
implementation with a wider burst — which lengthens every DQ occupancy
and raises bandwidth bloat (Fig. 3, Table IV).
"""

from __future__ import annotations

from repro.cache.cascade_lake import CascadeLakeCache


class AlloyCache(CascadeLakeCache):
    """Alloy DRAM cache: direct-mapped TAD units, 80 B bursts."""

    design_name = "alloy"
    burst_bytes = 80
