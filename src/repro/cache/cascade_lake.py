"""Intel Cascade Lake style DRAM cache (the paper's baseline, §IV-A).

Block-granule, direct-mapped, insert-on-miss, with tags stored in the
spare ECC bits of the cache line's own DRAM row [37]. Consequences
modelled here (§II-B):

* **every** demand — read *or* write — begins with a DRAM read that
  retrieves tag+data together, so reads and writes compete in the same
  read buffer;
* the data fetched by that tag check is useful only on read hits and
  dirty-victim misses; everywhere else the controller discards it
  (bandwidth bloat);
* write demands then need a second, write-direction DRAM access,
  inserting DQ-bus turnarounds.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.controller import CacheOp, ChannelScheduler, DramCacheController, OpKind
from repro.cache.predictor import MapIPredictor
from repro.cache.request import DemandRequest, Op, Outcome
from repro.config.system import SystemConfig
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator


class CascadeLakeCache(DramCacheController):
    """Tags-in-ECC-bits commercial DRAM cache (64 B bursts)."""

    design_name = "cascade_lake"
    burst_bytes = 64
    has_tag_path = False

    def __init__(self, sim: Simulator, config: SystemConfig,
                 main_memory: MemoryBackend) -> None:
        super().__init__(sim, config, main_memory)
        self.predictor: Optional[MapIPredictor] = (
            MapIPredictor() if config.use_predictor else None
        )

    # ------------------------------------------------------------------
    def _can_accept_write(self, scheduler: ChannelScheduler) -> bool:
        # A write consumes a read-buffer slot (tag read) and later a
        # write-buffer slot (data write).
        return scheduler.read_space() > 0 and scheduler.write_space() > 0

    def _enqueue(self, request: DemandRequest) -> None:
        if (
            self.predictor is not None
            and request.op is Op.READ
            and self.predictor.predict_miss(request.pc)
        ):
            # Speculative main-memory fetch in parallel with the tag
            # check (§V-D); a wrong prediction wastes the fetch.
            self.metrics.events.add("speculative_fetch")
            self._fetch(request.block_addr, None)
        channel, bank = self.route(request.block_addr)
        op = CacheOp(OpKind.TAG_READ, request.block_addr, bank,
                     self.sim.now, demand=request)
        self.schedulers[channel].push_read(op)

    # ------------------------------------------------------------------
    def _earliest_op(self, channel_idx: int, op: CacheOp, now: int) -> int:
        is_write = op.kind is OpKind.DATA_WRITE
        return self.channels[channel_idx].earliest_issue(op.bank, now, is_write)

    def _commit_op(self, channel_idx: int, op: CacheOp, now: int) -> None:
        if op.kind is OpKind.TAG_READ:
            assert op.demand is not None
            self._record_queue_delay(op.demand, now)
            grant = self._access(channel_idx, op.bank, now, is_write=False,
                                 with_data=True)
            assert grant.data_end is not None
            self.sim.at(grant.data_end, self._on_tag_data,
                        channel_idx, op.demand, grant.data_end)
        elif op.kind is OpKind.DATA_WRITE:
            self._access(channel_idx, op.bank, now, is_write=True, with_data=True)
            if op.is_fill:
                # Fills are caching overhead, not demand-serving bytes.
                self.metrics.ledger.move("fill", self.burst_bytes, useful=False)
            else:
                self.metrics.ledger.move_split(
                    "demand_write", 64, self.burst_bytes - 64)
        else:  # pragma: no cover - CL uses only the two kinds above
            raise AssertionError(f"unexpected op kind {op.kind}")

    # ------------------------------------------------------------------
    def _on_tag_data(self, channel_idx: int, demand: DemandRequest,
                     time: int) -> None:
        """Tag+data arrived at the controller: compare and act."""
        overhead = self.burst_bytes - 64
        if demand.op is Op.READ:
            result = self.tags.probe(demand.block_addr, touch=True)
            self._record_tag_result(demand, time, result.outcome)
            if self.predictor is not None:
                self.predictor.update(demand.pc, result.outcome.is_hit)
            if result.outcome.is_hit:
                self.metrics.ledger.move_split("hit_data", 64, overhead)
                self._complete_read(demand, time)
                return
            if result.outcome is Outcome.MISS_DIRTY:
                assert result.victim_block is not None
                # The fetched data is the conflicting dirty line: it feeds
                # the writeback (necessary, but still caching overhead).
                self.metrics.ledger.move("victim_readout", self.burst_bytes,
                                         useful=False)
                self._writeback(result.victim_block)
                self.tags.invalidate(result.victim_block)
            else:
                self.metrics.ledger.move("tag_check_discard", self.burst_bytes,
                                         useful=False)
            self._fetch(demand.block_addr, demand)
            return
        # Write demand: the fetched data only matters for a dirty victim.
        result = self.tags.probe(demand.block_addr, touch=False)
        self._record_tag_result(demand, time, result.outcome)
        if result.outcome is Outcome.MISS_DIRTY:
            self.metrics.ledger.move("victim_readout", self.burst_bytes,
                                     useful=False)
        else:
            self.metrics.ledger.move("tag_check_discard", self.burst_bytes,
                                     useful=False)
        evicted = self.tags.install(demand.block_addr, dirty=True)
        if evicted is not None and evicted[1]:
            self._writeback(evicted[0])
        channel, bank = self.route(demand.block_addr)
        write_op = CacheOp(OpKind.DATA_WRITE, demand.block_addr, bank, time)
        self.schedulers[channel].push_write(write_op, forced=True)
