"""Reliability, availability, and serviceability (RAS) subsystem.

Threads runtime fault tolerance through the whole reproduction: live
SECDED codewords on every tag-store line, a deterministic seeded fault
injector, ECC-driven recovery with bounded retry, a patrol scrubber,
and graceful way/bank degradation. See ``docs/ras.md``.

Only :class:`RasConfig` is imported eagerly — ``config.system`` embeds
it, and the operational classes reach back into cache/core modules, so
loading them here would close an import cycle. They resolve lazily on
first attribute access instead.
"""

from repro.ras.config import RasConfig

__all__ = [
    "RasConfig",
    "RasManager",
    "FaultInjector",
    "PatrolScrubber",
    "DegradationManager",
    "TagEccEngine",
    "effective_capacity_fraction",
]

_LAZY = {
    "RasManager": "repro.ras.manager",
    "FaultInjector": "repro.ras.faults",
    "PatrolScrubber": "repro.ras.scrubber",
    "DegradationManager": "repro.ras.degrade",
    "effective_capacity_fraction": "repro.ras.degrade",
    "TagEccEngine": "repro.ras.tag_ecc",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
