"""Patrol scrubber for latent tag-store errors.

Single-bit faults are harmless individually — SECDED corrects them on
read — but a second, independent flip in the same codeword turns a
correctable error into an uncorrectable double. The scrubber bounds the
window in which that pairing can happen: every ``scrub_interval_ns`` it
decodes the next ``scrub_lines_per_pass`` resident tag words (sized so
one batch of tag-mat reads fits in an all-bank refresh window, when the
tag banks are idle anyway — the invariant ``tdram-repro selfcheck``
asserts) and rewrites any word that decodes CORRECTED.

Uncorrectable words found while scrubbing follow the same graceful
policy as the demand path: clean lines are invalidated (a later demand
refetches from main memory), dirty lines are a counted data-loss, and
either way the degradation manager hears about it.
"""

from __future__ import annotations

from typing import List

from repro.core.ecc import EccOutcome
from repro.ras.config import RasConfig
from repro.ras.degrade import DegradationManager
from repro.ras.tag_ecc import TagEccEngine
from repro.sim.kernel import Simulator, ns
from repro.stats.counters import RasCounters


class PatrolScrubber:
    """Walks resident tag lines and repairs latent single-bit errors."""

    def __init__(
        self,
        sim: Simulator,
        config: RasConfig,
        tags,                                   # TagStore (duck-typed)
        engine: TagEccEngine,
        counters: RasCounters,
        degrade: DegradationManager,
    ) -> None:
        self.sim = sim
        self.config = config
        self.tags = tags
        self.engine = engine
        self.counters = counters
        self.degrade = degrade
        self._interval = ns(config.scrub_interval_ns)
        self._cursor = 0
        self._set_keys: List[int] = []

    def start(self) -> None:
        """Schedule the first patrol pass on the simulation kernel."""
        self.sim.schedule(self._interval, self._pass)

    # ------------------------------------------------------------------
    def _pass(self) -> None:
        sets = self.tags._sets
        if len(self._set_keys) != len(sets):
            self._set_keys = list(sets.keys())
        if self._set_keys:
            self.counters.add("scrub_passes")
            budget = self.config.scrub_lines_per_pass
            for _ in range(len(self._set_keys)):
                if budget <= 0:
                    break
                key = self._set_keys[self._cursor % len(self._set_keys)]
                self._cursor += 1
                lines = sets.get(key)
                if not lines:
                    continue
                budget -= self._scrub_set(lines)
        self.sim.schedule(self._interval, self._pass)

    def _scrub_set(self, lines) -> int:
        """Scrub every line of one set; returns lines examined."""
        examined = 0
        for line in list(lines):
            examined += 1
            self.counters.add("scrub_scanned")
            result = self.engine.decode(line.codeword)
            if result.outcome is EccOutcome.CLEAN:
                if line.soft:
                    # Rewriting the word also clears read-disturb state.
                    line.soft = 0
                continue
            if result.outcome is EccOutcome.CORRECTED:
                line.codeword = self.engine.encode_line(line.block, line.dirty)
                line.soft = 0
                self.counters.add("scrub_repaired")
                continue
            # Uncorrectable: same policy as an exhausted demand retry.
            self.counters.add("scrub_uncorrectable")
            if line.dirty:
                self.counters.add("scrub_data_loss")
            lines.remove(line)
            # Surface the drop to the replacement policy so residency
            # mirrors (TicToc's tag cache / dirty list) stay exact. The
            # frozen reference store predates the seam and has none.
            policy = getattr(self.tags, "policy", None)
            if policy is not None:
                policy.on_evict(line)
            self.degrade.record_uncorrectable(line.block)
        return examined
