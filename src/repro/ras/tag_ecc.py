"""SECDED engine for live tag-store codewords.

Bridges the analytic :mod:`repro.core.ecc` model and the functional
:class:`~repro.cache.tagstore.TagStore`: every resident line carries the
codeword the tag mats would store for its 16-bit architectural word
(14-bit tag + valid + dirty, §III-C3), and every tag read decodes it.

Encode and decode are memoised — the word space is 16 bits and a run
only ever sees a handful of distinct corrupted codewords, so the live
ECC path adds dictionary lookups, not Hamming arithmetic, to the
simulator's hot loop.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ecc import EccResult, SecdedCode, tag_ecc_code

TAG_MASK = (1 << 14) - 1


class TagEccEngine:
    """Encodes/decodes the per-line tag words of one tag store."""

    def __init__(self, num_sets: int) -> None:
        self.code: SecdedCode = tag_ecc_code()
        self.num_sets = num_sets
        self._encode_memo: Dict[int, int] = {}
        self._decode_memo: Dict[int, EccResult] = {}

    def line_word(self, block: int, dirty: bool) -> int:
        """The 16-bit stored word: [tag(14) | valid | dirty]."""
        tag = (block // self.num_sets) & TAG_MASK
        return (tag << 2) | 0b10 | int(dirty)

    def encode_line(self, block: int, dirty: bool) -> int:
        """SECDED codeword for a (re)written line."""
        word = self.line_word(block, dirty)
        codeword = self._encode_memo.get(word)
        if codeword is None:
            codeword = self.code.encode(word)
            self._encode_memo[word] = codeword
        return codeword

    def decode(self, codeword: int) -> EccResult:
        """Decode a (possibly corrupted) stored codeword."""
        result = self._decode_memo.get(codeword)
        if result is None:
            result = self.code.decode(codeword)
            self._decode_memo[codeword] = result
        return result

    def is_clean(self, codeword: int) -> bool:
        """Whether a stored codeword decodes with no error at all."""
        from repro.core.ecc import EccOutcome

        return self.decode(codeword).outcome is EccOutcome.CLEAN
