"""Graceful capacity degradation after repeated uncorrectable errors.

Two fuse-off granularities, mirroring how a tag-enhanced DRAM would
respond to a failing tag mat (§III-C3's BIST finds them at boot; this
manager handles the ones that develop in the field):

* **way degradation** — uncorrectable errors spread across the store
  indicate marginal cells rather than one bad mat: every
  ``way_fault_threshold`` of them permanently disables one way of the
  set-associative tag store (never the last one), shrinking effective
  associativity while every set keeps serving traffic. The surviving
  configuration still uses TDRAM's in-DRAM comparators, so the latency
  overhead stays zero (:func:`repro.core.ways.in_dram_way_select`).
* **bank degradation** — errors concentrating in one (channel, bank)
  indicate a failing mat: past ``bank_fault_threshold`` the bank is
  fused off. Resident dirty lines are written back first (their data is
  still readable — only the *tag* mat is failing), then every demand
  routed there becomes a forced miss served from main memory and fills
  are dropped, i.e. the bank's share of capacity bypasses the cache.
"""

from __future__ import annotations

from typing import Callable, Dict, Set, Tuple

from repro.core.ways import WaySelectModel, in_dram_way_select
from repro.errors import RasError
from repro.stats.counters import RasCounters


def effective_capacity_fraction(ways: int, disabled_ways: int) -> float:
    """Capacity remaining after ``disabled_ways`` ways are fused off."""
    if ways < 1 or not 0 <= disabled_ways < ways:
        raise RasError(
            f"cannot disable {disabled_ways} of {ways} ways "
            "(at least one must survive)"
        )
    return (ways - disabled_ways) / ways


class DegradationManager:
    """Tracks uncorrectable-error pressure and fuses off ways/banks."""

    def __init__(
        self,
        tags,                                  # TagStore (duck-typed)
        counters: RasCounters,
        route: Callable[[int], Tuple[int, int]],
        way_fault_threshold: int,
        bank_fault_threshold: int,
        writeback: Callable[[int], None],
        total_banks: int = 1,
    ) -> None:
        self.tags = tags
        self.counters = counters
        self.route = route
        self.way_fault_threshold = way_fault_threshold
        self.bank_fault_threshold = bank_fault_threshold
        self.writeback = writeback
        self.total_banks = max(1, total_banks)
        self.dead_banks: Set[Tuple[int, int]] = set()
        self.bank_faults: Dict[Tuple[int, int], int] = {}
        self._store_faults = 0

    # ------------------------------------------------------------------
    def block_disabled(self, block: int) -> bool:
        """Whether ``block`` routes to a fused-off bank."""
        return bool(self.dead_banks) and self.route(block) in self.dead_banks

    def record_uncorrectable(self, block: int) -> None:
        """One post-retry uncorrectable error attributed to ``block``."""
        bank = self.route(block)
        if bank not in self.dead_banks:
            count = self.bank_faults.get(bank, 0) + 1
            self.bank_faults[bank] = count
            if count >= self.bank_fault_threshold:
                self._disable_bank(bank)
                return
        self._store_faults += 1
        if self._store_faults >= self.way_fault_threshold:
            self._store_faults = 0
            if self.tags.available_ways > 1:
                self._disable_way()
            elif bank not in self.dead_banks:
                # Direct-mapped (or fully degraded) stores cannot shed a
                # way; escalate to the offending bank instead.
                self._disable_bank(bank)

    # ------------------------------------------------------------------
    def _disable_way(self) -> None:
        evicted = self.tags.disable_way()
        self.counters.add("degraded_ways")
        for block, dirty in evicted:
            self.counters.add("degraded_evictions")
            if dirty:
                # Data mats are healthy; drain the victim cleanly.
                self.counters.add("degraded_writebacks")
                self.writeback(block)

    def _disable_bank(self, bank: Tuple[int, int]) -> None:
        self.dead_banks.add(bank)
        self.counters.add("degraded_banks")
        for block, dirty in self.tags.evict_matching(
                lambda b: self.route(b) == bank):
            self.counters.add("degraded_evictions")
            if dirty:
                self.counters.add("degraded_writebacks")
                self.writeback(block)

    # ------------------------------------------------------------------
    def capacity_fraction(self) -> float:
        """Surviving capacity: way shrink x healthy-bank fraction."""
        way_part = effective_capacity_fraction(self.tags.ways,
                                               self.tags.disabled_ways)
        bank_part = (self.total_banks - len(self.dead_banks)) / self.total_banks
        return way_part * bank_part

    def surviving_way_model(self) -> WaySelectModel:
        """§V-F model of the remaining in-DRAM comparators."""
        return in_dram_way_select(max(1, self.tags.available_ways))
