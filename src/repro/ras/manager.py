"""RAS manager: wires ECC, injection, scrubbing, and degradation into a
cache controller.

One :class:`RasManager` is owned by a
:class:`~repro.cache.controller.DramCacheController` when
``SystemConfig.ras.enabled`` is set. It is the tag store's ECC hook
(:meth:`encode_line` / :meth:`on_tag_read` / :meth:`block_disabled`),
the consumer of HM-bus packet faults, and the owner of the scheduled
:class:`~repro.ras.faults.FaultInjector` and
:class:`~repro.ras.scrubber.PatrolScrubber`.

Recovery policy for an uncorrectable tag word (§III-C3 extended to
runtime faults): re-read up to ``retry_limit`` times — transient
read-disturb faults clear, so retries genuinely succeed — then degrade:
a clean line is invalidated and the demand falls through to a normal
miss-and-refetch from main memory; a dirty line's only copy is gone, a
counted ``tag_data_loss`` (or, in strict mode, a raised
:class:`~repro.errors.RetryExhaustedError`). Either way the
degradation manager accumulates the event toward way/bank fuse-off and
the run continues at reduced capacity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ecc import EccOutcome
from repro.errors import RetryExhaustedError
from repro.ras.config import RasConfig
from repro.ras.degrade import DegradationManager
from repro.ras.faults import FaultInjector
from repro.ras.scrubber import PatrolScrubber
from repro.ras.tag_ecc import TagEccEngine
from repro.sim.kernel import ns
from repro.stats.counters import RasCounters


class RasManager:
    """Reliability subsystem of one DRAM-cache controller."""

    def __init__(self, controller) -> None:
        self.controller = controller
        self.config: RasConfig = controller.config.ras
        self.counters = RasCounters()
        tags = controller.tags
        self.engine = TagEccEngine(tags.num_sets)
        geometry = controller.config.cache_geometry()
        self.degrade = DegradationManager(
            tags,
            self.counters,
            controller.route,
            self.config.way_fault_threshold,
            self.config.bank_fault_threshold,
            controller._writeback,
            total_banks=geometry.channels * geometry.banks_per_channel,
        )
        self.injector = FaultInjector(
            controller.sim, self.config, tags, self.engine, self.counters,
            controller.route, self.arm_hm_fault,
        )
        self.scrubber = PatrolScrubber(
            controller.sim, self.config, tags, self.engine, self.counters,
            self.degrade,
        )
        self._pending_hm_faults = 0
        self._corrected_penalty = ns(self.config.corrected_penalty_ns)
        self._retry_penalty = ns(self.config.retry_penalty_ns)
        self._hm_retry_penalty = ns(self.config.hm_retry_penalty_ns)
        tags.ras = self
        self.injector.start()
        self.scrubber.start()

    # ------------------------------------------------------------------
    # Tag-store hook interface
    # ------------------------------------------------------------------
    def encode_line(self, block: int, dirty: bool) -> int:
        """SECDED-encode one tag line for storage in the tag mats."""
        return self.engine.encode_line(block, dirty)

    def block_disabled(self, block: int) -> bool:
        """Whether a block maps to a fused-off (degraded) bank."""
        return self.degrade.block_disabled(block)

    def on_tag_read(self, line, block: int) -> Optional[int]:
        """Decode one live tag read; returns added latency (ps).

        ``None`` means the word was uncorrectable after every retry and
        the caller must drop the line (the tag store converts that into
        a miss, which refetches the block from main memory).
        """
        self.counters.add("tag_reads_checked")
        self.injector.note_read(block)
        raw = line.codeword ^ line.soft
        line.soft = 0  # a read-disturb event is sampled exactly once
        result = self.engine.decode(raw)
        if result.outcome is EccOutcome.CLEAN:
            return 0
        if result.outcome is EccOutcome.CORRECTED:
            self.counters.add("tag_corrected")
            self.counters.add("corrected_penalty_ps", self._corrected_penalty)
            return self._corrected_penalty
        # DETECTED: bounded re-reads of the stored word.
        self.counters.add("tag_detected")
        penalty = 0
        for _attempt in range(self.config.retry_limit):
            self.counters.add("tag_retries")
            penalty += self._retry_penalty
            self.counters.add("retry_penalty_ps", self._retry_penalty)
            result = self.engine.decode(line.codeword)
            if result.outcome is not EccOutcome.DETECTED:
                self.counters.add("tag_retry_success")
                if result.outcome is EccOutcome.CORRECTED:
                    self.counters.add("tag_corrected")
                    penalty += self._corrected_penalty
                    self.counters.add("corrected_penalty_ps",
                                      self._corrected_penalty)
                return penalty
        # Exhausted: degrade gracefully (or crash loudly in strict mode).
        self.counters.add("tag_retry_exhausted")
        self.counters.add("tag_uncorrectable")
        if line.dirty:
            if self.config.strict:
                raise RetryExhaustedError(
                    f"uncorrectable tag word for dirty block {block:#x} "
                    f"after {self.config.retry_limit} retries"
                )
            self.counters.add("tag_data_loss")
        else:
            self.counters.add("tag_clean_refetch")
        self.degrade.record_uncorrectable(block)
        return None

    def note_rewrite(self, line) -> None:
        """A write is about to store a fresh codeword over ``line``.

        If the old word carried a latent fault, the rewrite silently
        cured it; count that so a campaign's books balance (injected =
        corrected + scrubbed + uncorrectable + rewrite-cleared +
        still-latent)."""
        if line.soft or not self.engine.is_clean(line.codeword):
            self.counters.add("tag_rewrite_cleared")

    def write_through(self, block: int) -> None:
        """A dirty install hit a fused-off bank: bypass to main memory."""
        self.counters.add("write_through_degraded")
        self.controller._writeback(block)

    def dropped_fill(self) -> None:
        """Count a fill dropped because its frame's bank is fused off."""
        self.counters.add("dropped_fill_degraded")

    # ------------------------------------------------------------------
    # HM-bus packet faults
    # ------------------------------------------------------------------
    def arm_hm_fault(self) -> None:
        """Queue one HM-bus packet fault for the next result read."""
        self._pending_hm_faults += 1

    def hm_result_read(self) -> int:
        """Called when a controller consumes one HM result packet.

        A corrupt packet is detected by its own ECC and retransferred;
        the recovered result is what the caller uses, delayed by the
        returned penalty.
        """
        if self._pending_hm_faults == 0:
            return 0
        self._pending_hm_faults -= 1
        self.counters.add("hm_packet_errors")
        self.counters.add("hm_retries")
        self.counters.add("retry_penalty_ps", self._hm_retry_penalty)
        return self._hm_retry_penalty

    # ------------------------------------------------------------------
    def attach_flush(self, flush) -> None:
        """Give the injector a flush buffer and route its ECC counters."""
        self.injector.flush = flush
        flush.ras_counters = self.counters

    def snapshot(self) -> Dict[str, int]:
        """All RAS counters plus derived capacity state (for dumps)."""
        data = self.counters.as_dict()
        data["effective_ways"] = self.controller.tags.available_ways
        data["dead_banks"] = len(self.degrade.dead_banks)
        data["capacity_fraction_pct"] = int(
            round(self.degrade.capacity_fraction() * 100))
        return data
