"""Deterministic, seeded in-path fault injector.

Every ``inject_interval_ns`` the injector wakes on the simulator and
draws one Bernoulli trial per configured target:

* **tag store** — flip bits in the stored (or, for transient
  read-disturb faults, the next-read-sampled) SECDED codeword of a
  random live line. ``single`` mode only targets currently-clean
  codewords so independent faults never pair into an artificial double;
  ``double`` mode flips two bits of a *clean* (non-dirty) line — the
  always-uncorrectable campaign of the acceptance tests.
* **HM bus** — arm a one-shot corruption of the next result packet the
  controller receives; packet ECC detects it and the retransfer costs a
  counted retry penalty (the result itself is recovered, never trusted
  corrupt).
* **flush buffer** — mark a buffered victim's entry; single-bit marks
  are corrected at unload, multi-bit marks destroy the entry (a counted
  data-loss, the writeback is dropped).

All randomness flows from one private ``random.Random(seed)``, so a
campaign is bit-for-bit reproducible for a fixed seed and workload.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.ras.config import RasConfig
from repro.ras.tag_ecc import TagEccEngine
from repro.sim.kernel import Simulator, ns
from repro.stats.counters import RasCounters

#: Bounded redraws when a target must satisfy a predicate (clean
#: codeword, non-dirty line, bank weighting); giving up just skips one
#: tick's injection.
_MAX_DRAWS = 8


class FaultInjector:
    """Seeded bit-flip campaign scheduled on the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        config: RasConfig,
        tags,                                   # TagStore (duck-typed)
        engine: TagEccEngine,
        counters: RasCounters,
        route: Callable[[int], Tuple[int, int]],
        arm_hm_fault: Callable[[], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.tags = tags
        self.engine = engine
        self.counters = counters
        self.route = route
        self.arm_hm_fault = arm_hm_fault
        self.flush = None          #: attached later for designs that have one
        self.rng = random.Random(config.seed)
        self._interval = ns(config.inject_interval_ns)
        self._set_keys: List[int] = []
        #: ring of recently tag-read blocks — the *targeted* single and
        #: double modes flip bits in lines that demand traffic is
        #: actually touching, so injected faults meet the ECC path
        #: within the campaign instead of rotting in cold sets.
        #: Duplicates are deliberate: hotter blocks are drawn more often.
        self.recent: deque = deque(maxlen=64)

    def note_read(self, block: int) -> None:
        """Record a demand tag read (fed by the RAS manager)."""
        self.recent.append(block)

    def start(self) -> None:
        """Schedule the first injection tick on the simulation kernel."""
        self.sim.schedule(self._interval, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        config = self.config
        if config.tag_fault_rate and self.rng.random() < config.tag_fault_rate:
            self._inject_tag()
        if config.hm_fault_rate and self.rng.random() < config.hm_fault_rate:
            self.counters.add("injected_hm")
            self.arm_hm_fault()
        if (config.flush_fault_rate and self.flush is not None
                and len(self.flush)
                and self.rng.random() < config.flush_fault_rate):
            self._inject_flush()
        self.sim.schedule(self._interval, self._tick)

    # ------------------------------------------------------------------
    def _pick_line(self, want_clean_word: bool, want_clean_line: bool,
                   targeted: bool = False):
        """Draw a live line, honouring mode/bank constraints.

        Targeted draws come from the recently-read ring first (hot
        lines get re-read, so the fault is observed); the random scan
        over materialised sets is the fallback.
        """
        if targeted and self.recent:
            for _ in range(_MAX_DRAWS):
                block = self.recent[self.rng.randrange(len(self.recent))]
                line = self.tags._locate(block)[2]
                if line is None:
                    continue
                if want_clean_line and line.dirty:
                    continue
                if want_clean_word and not self.engine.is_clean(line.codeword):
                    continue
                if not self._bank_accepts(line.block):
                    continue
                return line
        sets = self.tags._sets
        if len(self._set_keys) != len(sets):
            self._set_keys = list(sets.keys())
        if not self._set_keys:
            return None
        for _ in range(_MAX_DRAWS):
            key = self._set_keys[self.rng.randrange(len(self._set_keys))]
            lines = sets.get(key)
            if not lines:
                continue
            line = lines[self.rng.randrange(len(lines))]
            if want_clean_line and line.dirty:
                continue
            if want_clean_word and not self.engine.is_clean(line.codeword):
                continue
            if not self._bank_accepts(line.block):
                continue
            return line
        return None

    def _bank_accepts(self, block: int) -> bool:
        multipliers = self.config.bank_rate_multipliers
        if not multipliers:
            return True
        _channel, bank = self.route(block)
        weight = multipliers[bank % len(multipliers)]
        return self.rng.random() < min(1.0, weight)

    def _inject_tag(self) -> None:
        config = self.config
        mode = config.mode
        if mode == "single":
            flips, transient = 1, False
            line = self._pick_line(want_clean_word=True, want_clean_line=False,
                                   targeted=True)
        elif mode == "double":
            flips, transient = 2, False
            line = self._pick_line(want_clean_word=True, want_clean_line=True,
                                   targeted=True)
        else:
            burst = self.rng.random() < config.burst_probability
            flips = config.burst_length if burst else 1
            transient = (not burst
                         and self.rng.random() < config.transient_fraction)
            line = self._pick_line(want_clean_word=False,
                                   want_clean_line=False)
        if line is None:
            return
        mask = 0
        positions = self.rng.sample(range(self.engine.code.codeword_bits),
                                    min(flips, self.engine.code.codeword_bits))
        for bit in positions:
            mask |= 1 << bit
        if transient:
            line.soft ^= mask
            self.counters.add("injected_transient")
        else:
            line.codeword ^= mask
        self.counters.add("injected_tag")
        self.counters.add("injected_tag_bits", len(positions))

    def _inject_flush(self) -> None:
        assert self.flush is not None
        index = self.rng.randrange(len(self.flush))
        bits = 2 if self.config.mode == "double" else 1
        if self.config.mode == "random":
            bits = (self.config.burst_length
                    if self.rng.random() < self.config.burst_probability else 1)
        self.flush.inject_fault(index, bits)
        self.counters.add("injected_flush")
