"""RAS campaign configuration.

One frozen dataclass describes a full reliability campaign: how often
and where the :class:`~repro.ras.faults.FaultInjector` flips bits, how
the ECC-aware tag path retries and penalises corrections, how the
patrol scrubber paces itself, and when the
:class:`~repro.ras.degrade.DegradationManager` fuses off a way or a
bank. The defaults model a quiet system (``enabled=False``, all rates
zero); ``RasConfig.campaign()`` builds the aggressive configurations
the ``tdram-repro ras`` subcommand uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import ConfigError

#: Fault-injection targeting modes.
MODES = ("random", "single", "double")


@dataclass(frozen=True)
class RasConfig:
    """Reliability subsystem configuration (one fault campaign)."""

    enabled: bool = False
    #: seed for the injector's private RNG (campaigns are bit-for-bit
    #: reproducible for a fixed seed)
    seed: int = 1
    # -- fault injection --
    #: injector tick period; each tick draws one Bernoulli per target
    inject_interval_ns: float = 200.0
    tag_fault_rate: float = 0.0     #: per-tick P(flip bits in a live tag codeword)
    hm_fault_rate: float = 0.0      #: per-tick P(corrupt the next HM result packet)
    flush_fault_rate: float = 0.0   #: per-tick P(corrupt a flush-buffer entry)
    #: "single" flips exactly one codeword bit (always correctable),
    #: "double" flips two bits in a clean line (always uncorrectable),
    #: "random" mixes single flips, bursts, and transient faults
    mode: str = "random"
    burst_probability: float = 0.1  #: random mode: P(a fault is a burst)
    burst_length: int = 2           #: bits flipped by one burst fault
    #: random mode: fraction of tag faults that are read-disturb events
    #: (visible on one read, cured by the retry re-read)
    transient_fraction: float = 0.25
    #: optional per-bank rate weighting (index = bank id modulo length);
    #: empty = uniform
    bank_rate_multipliers: Tuple[float, ...] = ()
    # -- recovery --
    retry_limit: int = 2            #: bounded re-reads after DETECTED
    corrected_penalty_ns: float = 2.0   #: added latency per corrected read
    retry_penalty_ns: float = 15.0      #: added latency per re-read attempt
    hm_retry_penalty_ns: float = 8.25   #: HM packet retransfer (tHM + packet)
    #: raise RetryExhaustedError instead of degrading (debug aid)
    strict: bool = False
    # -- patrol scrubbing --
    scrub_interval_ns: float = 1950.0   #: one scrub batch per interval
    scrub_lines_per_pass: int = 16      #: tag lines decoded per batch
    # -- degradation --
    way_fault_threshold: int = 4    #: store-wide uncorrectables per disabled way
    bank_fault_threshold: int = 16  #: per-bank uncorrectables before fuse-off

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"ras mode {self.mode!r} not in {MODES}")
        for name in ("tag_fault_rate", "hm_fault_rate", "flush_fault_rate",
                     "burst_probability", "transient_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} must be in [0, 1]")
        if self.inject_interval_ns <= 0:
            raise ConfigError("inject_interval_ns must be positive")
        if self.retry_limit < 1:
            raise ConfigError("retry_limit must be >= 1")
        if self.burst_length < 1:
            raise ConfigError("burst_length must be >= 1")
        if self.scrub_interval_ns <= 0 or self.scrub_lines_per_pass < 1:
            raise ConfigError("scrub interval and batch must be positive")
        if self.way_fault_threshold < 1 or self.bank_fault_threshold < 1:
            raise ConfigError("degradation thresholds must be >= 1")
        if any(m < 0 for m in self.bank_rate_multipliers):
            raise ConfigError("bank_rate_multipliers must be non-negative")

    def with_(self, **changes) -> "RasConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)

    @classmethod
    def campaign(cls, seed: int, mode: str = "single",
                 rate: float = 0.5) -> "RasConfig":
        """An aggressive campaign for the ``tdram-repro ras`` command.

        ``single`` exercises the correction path (every fault must be
        corrected or scrubbed); ``double`` exercises retry exhaustion,
        refetch, and degradation, so its thresholds are lowered to make
        way/bank fuse-off observable in a short run.

        Campaign scrubbing is deliberately far more aggressive than the
        quiet-system default (which paces one refresh-window-sized batch
        per interval): a short accelerated run must sweep the entire
        resident set, so every injected fault meets either the demand
        ECC path or the scrubber before the simulation ends.
        """
        return cls(
            enabled=True,
            seed=seed,
            mode=mode,
            tag_fault_rate=rate,
            hm_fault_rate=rate / 4,
            flush_fault_rate=rate / 4,
            transient_fraction=0.25 if mode == "random" else 0.0,
            scrub_interval_ns=100.0,
            scrub_lines_per_pass=1024,
            way_fault_threshold=2 if mode == "double" else 4,
            bank_fault_threshold=8 if mode == "double" else 16,
        )
