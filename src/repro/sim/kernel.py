"""Event-driven simulation kernel.

Time is kept as an integer number of **picoseconds**. The paper's Table III
uses half-nanosecond granularity (e.g. ``tHM = 7.5 ns``), so picoseconds
keep every timing value exact while remaining hashable and overflow-free
for any realistic simulation length.

The kernel is deliberately minimal: a priority queue of ``(time, seq,
callback)`` entries. Components schedule callbacks; determinism is
guaranteed by the monotonically increasing sequence number used as a
tie-breaker for simultaneous events.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Picoseconds per nanosecond; all public timing parameters are in ns.
PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert a nanosecond quantity to integer picoseconds.

    Values are rounded to the nearest picosecond; Table III values are
    multiples of 0.5 ns so the conversion is always exact in practice.

    >>> ns(7.5)
    7500
    """
    return int(round(value * PS_PER_NS))


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return picoseconds / PS_PER_NS


class Simulator:
    """A deterministic event-driven simulator with integer time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(ns(5), lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5000]

    Clock semantics of the three ways a :meth:`run` can end
    ------------------------------------------------------
    * ``until=`` bound reached — ``now`` is advanced **to the bound**,
      even when future events remain queued, so chunked callers observe
      ``now == until`` after every chunk;
    * :meth:`stop` requested — ``now`` stays **at the last dispatched
      event** (the stopping callback's time);
    * ``max_events`` exhausted — ``now`` stays **at the last dispatched
      event**, like ``stop``.

    The asymmetry is deliberate: ``stop``/``max_events`` end a run
    *early* (before any bound), so advancing the clock would invent
    simulated time nothing observed; see :meth:`run` for why the bound
    case must advance.

    Profiling
    ---------
    :attr:`profiler` is ``None`` by default. Assign an object with a
    ``record(callback, wall_ns)`` method (e.g.
    :class:`repro.obs.KernelProfiler`) and the dispatch loop times
    every callback with the host clock; with ``None`` the loop takes an
    uninstrumented branch — no timestamps are read and dispatch order,
    event counts, and results are unchanged either way.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._running = False
        self._stop_requested = False
        #: optional profiler with ``record(callback, wall_ns)``; set by
        #: the observability layer (``SystemConfig.obs.profile``)
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return to_ns(self._now)

    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._queue)

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (picoseconds)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} ps, now is {self._now} ps"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} ps")
        self.at(self._now + delay, callback)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            Absolute time bound (picoseconds). Events scheduled later than
            ``until`` stay in the queue.
        max_events:
            Safety valve: stop after this many dispatches. Like
            :meth:`stop`, this ends the run *early*: the clock is left
            at the last dispatched event, **not** advanced to ``until``.

        Returns
        -------
        int
            The number of events dispatched.

        When ``until`` is given and the run ends because the bound was
        reached (rather than :meth:`stop` or ``max_events``), the clock
        is advanced to ``until`` even if later events remain queued, so
        chunked callers observe ``now == until`` after every chunk.
        Without that guarantee a chunked caller (the experiment
        runner's watchdog loop) whose next event lies beyond the chunk
        boundary would re-run the same window forever and mis-account
        stall time.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stop_requested = False
        dispatched = 0
        profiler = self.profiler
        try:
            while self._queue and not self._stop_requested:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if time < self._now:
                    raise SimulationError("event queue time went backwards")
                self._now = time
                if profiler is None:
                    callback()
                else:
                    # Host wall time feeds only the profiler digest,
                    # never simulated state; the profiler-off branch
                    # reads no clock at all (locked by tests).
                    begin = perf_counter_ns()  # tdram: noqa[SIM001] -- host-side profiling only, sim state untouched
                    callback()
                    profiler.record(callback, perf_counter_ns() - begin)  # tdram: noqa[SIM001] -- host-side profiling only, sim state untouched
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
        # Advance to the bound unconditionally on a bounded run: a
        # pending future event must not leave ``now`` lagging ``until``,
        # or chunked callers (the runner's watchdog loop) re-run the
        # same window forever and mis-account stalls. Stop requests and
        # the max_events valve end the run *before* the bound, so they
        # leave the clock at the last dispatched event.
        if (
            until is not None
            and self._now < until
            and not self._stop_requested
            and (max_events is None or dispatched < max_events)
        ):
            self._now = until
        return dispatched

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event.

        Useful when perpetual events (refresh) keep the queue non-empty
        and the caller's own completion condition ends the simulation.

        After a stop, :attr:`now` is the time of the last dispatched
        event — a stopped run never advances the clock to a pending
        ``until=`` bound (the run ended early; no simulated time beyond
        the stopping event was observed). ``max_events`` exhaustion
        behaves identically. Only a run that genuinely reaches its
        ``until`` bound snaps the clock forward to it; see :meth:`run`.
        """
        self._stop_requested = True
