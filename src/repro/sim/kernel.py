"""Event-driven simulation kernel.

Time is kept as an integer number of **picoseconds**. The paper's Table III
uses half-nanosecond granularity (e.g. ``tHM = 7.5 ns``), so picoseconds
keep every timing value exact while remaining hashable and overflow-free
for any realistic simulation length.

Scheduler design
----------------
The pending-event set is an **indexed bucket (calendar/ladder) queue**
exploiting the integer time base:

* events within a ~4.2 µs horizon land in one of :data:`_NBUCKETS` ring
  buckets of :data:`_BUCKET_PS` picoseconds each (``list.append``, O(1));
* the bucket currently being drained is a small binary heap (``_cur``),
  so exact ``(time, seq)`` order is preserved within a bucket and for
  same/past-bucket arrivals scheduled mid-drain;
* events beyond the horizon go to an overflow heap and migrate into the
  ring as the drain cursor advances (the "ladder" step).

Bucket width (1024 ps ≈ one command slot) and horizon (4096 buckets
≈ 4.2 µs, just past ``tREFI`` = 3.9 µs) are chosen so that the dense
near-future traffic — command retries, data bursts, HM results, bank
wakes — takes the O(1) append path while refresh reschedules still
avoid the overflow heap. Dispatch order is **exactly** the ``(time,
seq)`` order of a plain binary heap (locked by a randomized equivalence
test); determinism is guaranteed by the monotonically increasing
sequence number used as a tie-breaker for simultaneous events.

Events are small mutable handles, which buys **O(1) cancellation**
(:meth:`Simulator.cancel` tombstones the handle in place; the drain
loop skips dead entries) and argument passing without per-event closure
allocation: ``sim.at(t, self._writeback, block)`` instead of
``sim.at(t, lambda: self._writeback(block))``.

For A/B verification the classic heapq scheduler is still available:
``Simulator(queue="heap")`` routes every event through one binary heap.
Both modes dispatch bit-identically; the ladder is simply faster.

Batched stepping (``step_mode="batched"``)
------------------------------------------
``Simulator(step_mode="batched")`` swaps the fixed ring for a **sparse
calendar**: a dict of occupied bucket id -> pending handles plus a
min-heap of occupied bucket ids. Scheduling stays O(1) (append to the
bucket's list), but the drain side no longer walks empty buckets one
at a time — it pops the next *occupied* bucket id and installs the
whole bucket as one batch (one sort; a sorted list already satisfies
the binary-heap invariant, so the dispatch loop is unchanged). Long
inter-event gaps — refresh idles, drain tails, multi-µs reschedules —
cost O(log occupied) instead of O(gap/bucket_width), which is where
the event mode's ``mixed_horizon`` throughput goes.

Dispatch order is still **exactly** the ``(time, seq)`` heap order:
same/past-bucket arrivals scheduled mid-drain heap-push into the
current batch, so batched runs are bit-identical to the event mode
(locked by the randomized equivalence test and the whole-run A/B
suite in ``tests/test_sampling.py``). ``step_mode="event"`` (and
``queue="heap"``) remain byte-for-byte the reference implementation.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Picoseconds per nanosecond; all public timing parameters are in ns.
PS_PER_NS = 1000

#: log2 of the bucket width: 1024 ps buckets (≈ one CA command slot).
_BUCKET_SHIFT = 10
#: Ring size (power of two): horizon = 4096 · 1024 ps ≈ 4.2 µs > tREFI.
_NBUCKETS = 4096
_BUCKET_MASK = _NBUCKETS - 1

#: Sentinel bound larger than any simulated time or event count.
_UNBOUNDED = float("inf")

#: Handle slots: [time_ps, seq, callback, args]. ``callback`` becomes
#: ``None`` once dispatched or cancelled (the tombstone). Handles sort
#: by (time, seq) under list comparison because seq is unique.
_TIME, _SEQ, _CALLBACK, _ARGS = 0, 1, 2, 3


def ns(value: float) -> int:
    """Convert a nanosecond quantity to integer picoseconds.

    Values are rounded to the nearest picosecond; Table III values are
    multiples of 0.5 ns so the conversion is always exact in practice.

    >>> ns(7.5)
    7500
    """
    return int(round(value * PS_PER_NS))


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return picoseconds / PS_PER_NS


class Simulator:
    """A deterministic event-driven simulator with integer time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(ns(5), lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [5000]

    Clock semantics of the three ways a :meth:`run` can end
    ------------------------------------------------------
    * ``until=`` bound reached — ``now`` is advanced **to the bound**,
      even when future events remain queued, so chunked callers observe
      ``now == until`` after every chunk;
    * :meth:`stop` requested — ``now`` stays **at the last dispatched
      event** (the stopping callback's time);
    * ``max_events`` exhausted — ``now`` stays **at the last dispatched
      event**, like ``stop``.

    The asymmetry is deliberate: ``stop``/``max_events`` end a run
    *early* (before any bound), so advancing the clock would invent
    simulated time nothing observed; see :meth:`run` for why the bound
    case must advance.

    Profiling
    ---------
    :attr:`profiler` is ``None`` by default. Assign an object with a
    ``record(callback, wall_ns)`` method (e.g.
    :class:`repro.obs.KernelProfiler`) and the dispatch loop times
    every callback with the host clock; with ``None`` the loop takes an
    uninstrumented branch — the profiler check is hoisted out of the
    loop entirely, no timestamps are read, and dispatch order, event
    counts, and results are unchanged either way.
    """

    #: Queue implementation new simulators default to. The A/B
    #: equivalence tests flip this to ``"heap"`` to run whole
    #: experiments on the reference scheduler.
    DEFAULT_QUEUE = "ladder"

    def __init__(self, queue: Optional[str] = None,
                 step_mode: Optional[str] = None) -> None:
        queue = queue or self.DEFAULT_QUEUE
        if queue not in ("ladder", "heap"):
            raise SimulationError(f"unknown queue implementation {queue!r}")
        step_mode = step_mode or "event"
        if step_mode not in ("event", "batched"):
            raise SimulationError(f"unknown step mode {step_mode!r}")
        if step_mode == "batched" and queue == "heap":
            raise SimulationError(
                "batched step mode replaces the ladder's drain side; "
                'the reference queue="heap" only pairs with step_mode="event"')
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._stop_requested = False
        #: events scheduled but neither dispatched nor cancelled
        self._live = 0
        #: heap of handles for bucket ids <= the drain cursor (and, in
        #: "heap" mode, for every pending event)
        self._cur: List[list] = []
        #: bucket id currently being drained into ``_cur``
        self._cur_bid = 0
        #: ring of per-bucket appent-only lists for the near future
        self._ring: List[List[list]] = [[] for _ in range(_NBUCKETS)]
        #: total entries (incl. tombstones) currently in the ring
        self._ring_live = 0
        #: heap of handles beyond the ring horizon
        self._overflow: List[list] = []
        self._heap_mode = queue == "heap"
        self._batched = step_mode == "batched"
        #: batched mode's sparse calendar: occupied bucket id -> handles
        self._cal: Dict[int, List[list]] = {}
        #: min-heap of occupied calendar bucket ids (batched mode)
        self._occ: List[int] = []
        #: drain-side implementation chosen once at construction; the
        #: dispatch loop and :meth:`peek_time` bind through this
        self._front_impl: Callable[[], Optional[list]] = (
            self._front_batched if self._batched else self._front)
        #: optional profiler with ``record(callback, wall_ns)``; set by
        #: the observability layer (``SystemConfig.obs.profile``)
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return to_ns(self._now)

    def pending(self) -> int:
        """Number of events scheduled and still due to dispatch
        (cancelled events stop counting immediately)."""
        return self._live

    def at(self, time: int, callback: Callable, *args: object) -> list:
        """Schedule ``callback(*args)`` at absolute ``time`` (ps).

        Returns an opaque handle accepted by :meth:`cancel`. Extra
        positional arguments are stored on the handle, so hot paths can
        schedule bound methods directly instead of allocating a closure
        per event.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} ps, now is {self._now} ps"
            )
        handle = [time, self._seq, callback, args]
        self._seq += 1
        self._live += 1
        if self._heap_mode:
            heappush(self._cur, handle)
            return handle
        bid = time >> _BUCKET_SHIFT
        if self._batched:
            if bid <= self._cur_bid:
                # Into (or before) the batch being drained: keep exact
                # (time, seq) order via the current heap.
                heappush(self._cur, handle)
            else:
                slot = self._cal.get(bid)
                if slot is None:
                    self._cal[bid] = [handle]
                    heappush(self._occ, bid)
                else:
                    slot.append(handle)
            return handle
        offset = bid - self._cur_bid
        if offset <= 0:
            # Into (or before) the bucket being drained: keep exact
            # (time, seq) order via the current heap.
            heappush(self._cur, handle)
        elif offset < _NBUCKETS:
            self._ring[bid & _BUCKET_MASK].append(handle)
            self._ring_live += 1
        else:
            heappush(self._overflow, handle)
        return handle

    def schedule(self, delay: int, callback: Callable, *args: object) -> list:
        """Schedule ``callback(*args)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} ps")
        return self.at(self._now + delay, callback, *args)

    def cancel(self, handle: list) -> bool:
        """Cancel a scheduled event in O(1).

        ``handle`` is the value returned by :meth:`at`/:meth:`schedule`.
        Returns ``True`` if the event was still pending (it will now
        never fire); ``False`` if it already dispatched or was already
        cancelled. The handle is tombstoned in place and skipped by the
        drain loop, so cancellation never perturbs the order or timing
        of surviving events.
        """
        if handle[_CALLBACK] is None:
            return False
        handle[_CALLBACK] = None
        handle[_ARGS] = ()
        self._live -= 1
        return True

    def peek_time(self) -> Optional[int]:
        """Time (ps) of the next pending event, or ``None`` if idle.

        O(1) amortised: tombstones and empty buckets the cursor skips
        here are work the next :meth:`run` no longer has to do.
        """
        head = self._front_impl()
        return None if head is None else head[_TIME]

    # ------------------------------------------------------------------
    def _migrate(self) -> None:
        """Ladder step: pull overflow events now inside the horizon."""
        overflow = self._overflow
        horizon = self._cur_bid + _NBUCKETS
        while overflow and (overflow[0][_TIME] >> _BUCKET_SHIFT) < horizon:
            handle = heappop(overflow)
            if handle[_CALLBACK] is None:
                continue
            bid = handle[_TIME] >> _BUCKET_SHIFT
            if bid <= self._cur_bid:
                heappush(self._cur, handle)
            else:
                self._ring[bid & _BUCKET_MASK].append(handle)
                self._ring_live += 1

    def _front(self) -> Optional[list]:
        """The next live handle (left at ``_cur[0]``), or ``None``.

        Advances the drain cursor over empty buckets and discards
        tombstones. Safe to call outside :meth:`run`: a later ``at()``
        whose bucket the cursor already passed still lands in ``_cur``
        (the ``offset <= 0`` branch), so no event can be skipped.
        """
        cur = self._cur
        while True:
            while cur:
                head = cur[0]
                if head[_CALLBACK] is not None:
                    return head
                heappop(cur)
            if self._live == 0:
                return None
            if self._ring_live:
                # Walk to the next occupied bucket with plain locals —
                # long inter-event gaps (refresh idles, drain tails) can
                # skip hundreds of empty buckets per dispatch. The
                # overflow check stays inline so migration still runs
                # the moment the advancing horizon uncovers an event.
                ring = self._ring
                overflow = self._overflow
                bid = self._cur_bid
                while True:
                    bid += 1
                    if overflow and (
                            overflow[0][_TIME] >> _BUCKET_SHIFT
                    ) < bid + _NBUCKETS:
                        self._cur_bid = bid
                        self._migrate()
                    slot = ring[bid & _BUCKET_MASK]
                    if slot:
                        break
                self._cur_bid = bid
                self._ring_live -= len(slot)
                cur[:] = slot
                del slot[:]
                heapify(cur)
            elif self._overflow:
                overflow = self._overflow
                while overflow and overflow[0][_CALLBACK] is None:
                    heappop(overflow)
                if not overflow:
                    return None
                self._cur_bid = overflow[0][_TIME] >> _BUCKET_SHIFT
                self._migrate()
            else:
                return None

    def _front_batched(self) -> Optional[list]:
        """Batched-mode front: install whole calendar buckets at once.

        Pops the next *occupied* bucket id off the min-heap — empty
        buckets are never visited — and installs the bucket's surviving
        handles as the current batch with one sort (a sorted list is a
        valid binary heap, so the shared dispatch loop needs no
        ``heapify``). Same/past-bucket arrivals scheduled mid-drain
        heap-push into the batch (see :meth:`at`), so dispatch order is
        exactly the event mode's ``(time, seq)`` order. Safe to call
        outside :meth:`run`, like :meth:`_front`.
        """
        cur = self._cur
        cal = self._cal
        occ = self._occ
        while True:
            while cur:
                head = cur[0]
                if head[_CALLBACK] is not None:
                    return head
                heappop(cur)
            if self._live == 0:
                return None
            # live > 0 with an empty batch means some calendar slot
            # holds a live handle, so the occupied-bid heap is non-empty
            # (every calendar insert pushes its bid exactly once).
            bid = heappop(occ)
            batch = [h for h in cal.pop(bid) if h[_CALLBACK] is not None]
            if not batch:
                continue
            self._cur_bid = bid
            batch.sort()
            cur[:] = batch

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            Absolute time bound (picoseconds). Events scheduled later than
            ``until`` stay in the queue.
        max_events:
            Safety valve: stop after this many dispatches. Like
            :meth:`stop`, this ends the run *early*: the clock is left
            at the last dispatched event, **not** advanced to ``until``.

        Returns
        -------
        int
            The number of events dispatched.

        When ``until`` is given and the run ends because the bound was
        reached (rather than :meth:`stop` or ``max_events``), the clock
        is advanced to ``until`` even if later events remain queued, so
        chunked callers observe ``now == until`` after every chunk.
        Without that guarantee a chunked caller (the experiment
        runner's watchdog loop) whose next event lies beyond the chunk
        boundary would re-run the same window forever and mis-account
        stall time.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stop_requested = False
        dispatched = 0
        # Hot loop: every name it touches is a local; the profiler
        # branch is hoisted into two separate loops so the common
        # (profiler off) path reads no host clock and tests no flag.
        bound = _UNBOUNDED if until is None else until
        limit = _UNBOUNDED if max_events is None else max_events
        profiler = self.profiler
        front = self._front_impl
        cur = self._cur
        pop = heappop
        try:
            if profiler is None:
                while not self._stop_requested:
                    if cur:
                        head = cur[0]
                        if head[2] is None:
                            head = front()
                            if head is None:
                                break
                    else:
                        head = front()
                        if head is None:
                            break
                    time = head[0]
                    if time > bound:
                        break
                    pop(cur)
                    self._live -= 1
                    self._now = time
                    callback = head[2]
                    head[2] = None
                    callback(*head[3])
                    dispatched += 1
                    if dispatched >= limit:
                        break
            else:
                record = profiler.record
                while not self._stop_requested:
                    head = front()
                    if head is None:
                        break
                    time = head[0]
                    if time > bound:
                        break
                    pop(cur)
                    self._live -= 1
                    self._now = time
                    callback = head[2]
                    head[2] = None
                    # Host wall time feeds only the profiler digest,
                    # never simulated state; the profiler-off branch
                    # reads no clock at all (locked by tests).
                    begin = perf_counter_ns()  # tdram: noqa[SIM001] -- host-side profiling only, sim state untouched
                    callback(*head[3])
                    record(callback, perf_counter_ns() - begin)  # tdram: noqa[SIM001] -- host-side profiling only, sim state untouched
                    dispatched += 1
                    if dispatched >= limit:
                        break
        finally:
            self._running = False
        # Advance to the bound unconditionally on a bounded run: a
        # pending future event must not leave ``now`` lagging ``until``,
        # or chunked callers (the runner's watchdog loop) re-run the
        # same window forever and mis-account stalls. Stop requests and
        # the max_events valve end the run *before* the bound, so they
        # leave the clock at the last dispatched event.
        if (
            until is not None
            and self._now < until
            and not self._stop_requested
            and dispatched < limit
        ):
            self._now = until
        return dispatched

    def run_batched(self, until: Optional[int] = None,
                    max_events: Optional[int] = None) -> int:
        """Dispatch draining whole calendar buckets per scheduler step.

        The explicit entry point for the batched step mode: identical
        semantics (and return value) to :meth:`run` — the mode is fixed
        at construction because scheduling itself routes differently —
        but calling it documents intent and fails loudly when the
        simulator was built in the exact event mode.
        """
        if not self._batched:
            raise SimulationError(
                'run_batched() requires Simulator(step_mode="batched")')
        return self.run(until=until, max_events=max_events)

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event.

        Useful when perpetual events (refresh) keep the queue non-empty
        and the caller's own completion condition ends the simulation.

        After a stop, :attr:`now` is the time of the last dispatched
        event — a stopped run never advances the clock to a pending
        ``until=`` bound (the run ended early; no simulated time beyond
        the stopping event was observed). ``max_events`` exhaustion
        behaves identically. Only a run that genuinely reaches its
        ``until`` bound snaps the clock forward to it; see :meth:`run`.
        """
        self._stop_requested = True
