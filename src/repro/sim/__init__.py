"""Event-driven simulation kernel (integer-picosecond time)."""

from repro.sim.kernel import PS_PER_NS, Simulator, ns, to_ns

__all__ = ["PS_PER_NS", "Simulator", "ns", "to_ns"]
