"""SMARTS-style sampled simulation: windows, fast-forward, estimator.

Exact simulation prices every demand through the full controller/DRAM
timing model. Statistical sampling (SMARTS, Wunderlich et al., ISCA
2003) instead alternates short **detailed windows** — simulated
exactly, and measured — with long **functional fast-forward** phases
that keep the *architectural* state warm (tag store, dirty bits,
replacement recency) while skipping all timing: no DRAM commands, no
queueing, no simulated time. Per-window measurements then feed a
standard mean ± confidence-interval estimator, so a sampled run
reports not just an estimate but how much to trust it.

This module holds the pieces that are independent of the experiment
runner: the :class:`SamplingConfig` knob set (a ``SystemConfig`` field,
so every knob participates in the campaign cache key automatically —
the SIM014 prover checks that), the window :func:`plan`, the
:func:`functional_fastforward` architectural replay, and the
:func:`estimate` confidence-interval calculator (stdlib-only Student-t,
no scipy). Orchestration lives in
:func:`repro.experiments.runner.run_experiment`, which switches to the
sampled path when ``config.sampling.enabled`` is set; results land on
``RunResult.sampling`` (mean, half-width, coverage, window count per
tracked metric). Tier-1 figures keep running exact by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ConfigError

#: Two-sided Student-t critical values by confidence level; index
#: ``df-1`` for ``df <= 20``, the last entry (the normal z value) for
#: larger ``df``. Enumerated so the estimator stays stdlib-only.
_T_CRITICAL: Dict[float, Tuple[float, ...]] = {
    0.90: (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
           1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
           1.740, 1.734, 1.729, 1.725, 1.645),
    0.95: (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
           2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
           2.110, 2.101, 2.093, 2.086, 1.960),
    0.99: (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
           3.250, 3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
           2.898, 2.878, 2.861, 2.845, 2.576),
}


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of the sampled-simulation mode (``SystemConfig.sampling``).

    All fields participate in the campaign cache key (the key hashes
    the full ``SystemConfig``), so a sampled result can never be served
    from the cache for an exact request or for different knob values.
    """

    #: master switch; off = the exact reference path, untouched
    enabled: bool = False
    #: demands per core simulated in full detail per window
    detail_demands: int = 100
    #: demands per core replayed functionally between windows
    fastforward_demands: int = 400
    #: leading detailed windows discarded as cache/queue warm-up
    warmup_windows: int = 1
    #: two-sided confidence level of the reported intervals
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.detail_demands <= 0:
            raise ConfigError("sampling.detail_demands must be positive")
        if self.fastforward_demands <= 0:
            raise ConfigError(
                "sampling.fastforward_demands must be positive (use "
                "sampling.enabled=False for exact simulation)")
        if self.warmup_windows < 0:
            raise ConfigError("sampling.warmup_windows must be >= 0")
        if self.confidence not in _T_CRITICAL:
            raise ConfigError(
                f"sampling.confidence must be one of "
                f"{sorted(_T_CRITICAL)}, got {self.confidence!r}")


def plan(total_per_core: int, config: SamplingConfig) \
        -> List[Tuple[int, int]]:
    """Split one core's work quantum into (detail, fast-forward) pairs.

    Alternates ``detail_demands`` of exact simulation with
    ``fastforward_demands`` of functional replay until the quantum is
    consumed; the trailing pair is truncated so every demand is
    accounted exactly once. The same plan applies to every core (all
    cores advance through their streams in lockstep windows).
    """
    if total_per_core <= 0:
        raise ConfigError("total_per_core must be positive")
    windows: List[Tuple[int, int]] = []
    remaining = total_per_core
    while remaining > 0:
        detail = min(config.detail_demands, remaining)
        remaining -= detail
        fastforward = min(config.fastforward_demands, remaining)
        remaining -= fastforward
        windows.append((detail, fastforward))
    return windows


def functional_fastforward(sink: object, streams: Sequence[Iterator],
                           per_core: int) -> int:
    """Replay ``per_core`` records per stream architecturally.

    Updates only what future hit/miss outcomes depend on — residency,
    dirty bits, and replacement recency in the sink's tag store — via
    the same architectural transitions the detailed path performs
    (probe-touch on hits, fill on read misses, dirty install on
    writes), honouring the sink's ``cache_mode``. No simulated time
    passes and no metrics/energy are recorded: timing-model state
    (queues, banks, MSHRs) is deliberately untouched, which is the
    SMARTS functional-warming contract. Sinks without a tag store
    (``no_cache``) just consume their streams. Returns the number of
    records consumed (short streams may run dry early).
    """
    # Imported here: this module is imported by repro.config.system, so
    # a top-level import of the cache package would be circular.
    from repro.cache.request import Op

    tags = getattr(sink, "tags", None)
    cache_mode = getattr(sink, "cache_mode", "write_allocate")
    consumed = 0
    for stream in streams:
        for _ in range(per_core):
            record = next(stream, None)
            if record is None:
                break
            consumed += 1
            if tags is None:
                continue
            _gap, op, block, _pc = record
            if op is Op.READ:
                result = tags.probe(block, touch=True)
                if not result.outcome.is_hit and cache_mode != "write_only":
                    tags.fill(block)
            elif cache_mode == "write_around" and not tags.contains(block):
                # Write miss bypasses straight to the backend; the
                # cache is not allocated and recency is untouched.
                continue
            else:
                tags.install(block, dirty=True)
    return consumed


def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom."""
    if df <= 0:
        raise ConfigError("t_critical needs at least one degree of freedom")
    table = _T_CRITICAL.get(confidence)
    if table is None:
        raise ConfigError(
            f"confidence must be one of {sorted(_T_CRITICAL)}")
    return table[df - 1] if df <= len(table) - 1 else table[-1]


def estimate(samples: Dict[str, List[float]], confidence: float) \
        -> Dict[str, Dict[str, float]]:
    """Per-metric mean and CI half-width from per-window samples.

    For each metric with ``n`` window samples the half-width is
    ``t(confidence, n-1) * s / sqrt(n)`` (sample standard deviation
    ``s``); a single window reports an infinite half-width — one
    sample carries no dispersion information, and an honest estimator
    says so rather than reporting false certainty.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, values in samples.items():
        n = len(values)
        if n == 0:
            continue
        mean = sum(values) / n
        if n == 1:
            out[name] = {"mean": mean, "half_width": math.inf, "n": 1}
            continue
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = t_critical(confidence, n - 1) * math.sqrt(variance / n)
        out[name] = {"mean": mean, "half_width": half, "n": n}
    return out
