"""Bus models: command/address (CA), data (DQ), and hit-miss (HM) buses.

Buses are modelled as monotonic reservation resources: each grant starts
at or after the end of the previous grant (plus a direction-turnaround
gap on the bidirectional DQ bus). This is exact for an in-order
command stream with fixed data offsets, which is how close-page
FR-FCFS controllers drive DRAM.

The DQ model also records *idle read-direction gaps*: these are the
"unused DQ slots" TDRAM exploits for opportunistic flush-buffer unloads
(§III-D2) and that the probe engine uses on the CA/HM side (§III-E).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ProtocolError


class Direction(enum.Enum):
    """Transfer direction on the DQ bus, seen from the DRAM."""

    READ = "read"    # DRAM -> controller
    WRITE = "write"  # controller -> DRAM


class Bus:
    """A unidirectional bus (CA or HM): serial, no turnaround penalty."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._free_at = 0
        self.busy_time = 0
        self.grants = 0

    @property
    def free_at(self) -> int:
        """Earliest time a new grant may begin."""
        return self._free_at

    def earliest(self, start: int) -> int:
        """Earliest grant start at or after ``start``."""
        return max(start, self._free_at)

    def is_free(self, at: int) -> bool:
        """Whether a grant could begin exactly at ``at``."""
        return at >= self._free_at

    def reserve(self, start: int, duration: int) -> int:
        """Occupy the bus for ``[start, start + duration)``.

        Returns the end time. Grants must be non-overlapping and issued
        in nondecreasing start order (the controller guarantees this).
        """
        if duration < 0:
            raise ProtocolError(f"{self.name}: negative duration {duration}")
        if start < self._free_at:
            raise ProtocolError(
                f"{self.name}: grant at {start} overlaps previous (free at {self._free_at})"
            )
        self._free_at = start + duration
        self.busy_time += duration
        self.grants += 1
        return self._free_at


class DataBus(Bus):
    """The bidirectional DQ bus with read/write turnaround gaps.

    Switching direction inserts ``tRTW`` (read->write) or ``tWTR``
    (write->read) of dead time — the "costly turnaround bubbles"
    (§I, [17]) that TDRAM's flush buffer avoids for write-miss-dirty.
    """

    def __init__(self, name: str, t_rtw: int, t_wtr: int) -> None:
        super().__init__(name)
        self.t_rtw = t_rtw
        self.t_wtr = t_wtr
        self._last_direction: Optional[Direction] = None
        self.turnarounds = 0
        self.turnaround_time = 0

    def turnaround_gap(self, direction: Direction) -> int:
        """Dead time required before a grant in ``direction``."""
        if self._last_direction is None or self._last_direction is direction:
            return 0
        return self.t_rtw if direction is Direction.WRITE else self.t_wtr

    def earliest_dir(self, start: int, direction: Direction) -> int:
        """Earliest start for a grant in ``direction`` at/after ``start``."""
        return max(start, self._free_at + self.turnaround_gap(direction))

    def reserve_dir(self, start: int, duration: int, direction: Direction) -> int:
        """Occupy the bus in ``direction``; returns the end time."""
        gap = self.turnaround_gap(direction)
        if start < self._free_at + gap:
            raise ProtocolError(
                f"{self.name}: grant at {start} violates turnaround "
                f"(free at {self._free_at}, gap {gap})"
            )
        if gap:
            self.turnarounds += 1
            self.turnaround_time += gap
        self._last_direction = direction
        return super().reserve(start, duration)

    def reserve(self, start: int, duration: int) -> int:  # pragma: no cover
        raise ProtocolError("use reserve_dir() on the DQ bus")

    @property
    def last_direction(self) -> Optional[Direction]:
        return self._last_direction
