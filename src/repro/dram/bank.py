"""Bank and activation-window state machines.

With a close-page policy every access is activate + column + auto-
precharge, so a bank is fully described by the earliest time its next
activate may begin. Rolling activate constraints (tRRD between any two
activates, at most four activates per tXAW window — Table III) live in
:class:`ActivationWindow`, shared per channel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import ProtocolError


class Bank:
    """One (logical, pair-scheduled) DRAM bank.

    Under the close-page policy (the DRAM cache, Table III) only
    ``ready_at`` matters. Under the open-page policy (the DDR5 backing
    store) the bank additionally tracks its open row, when it was
    activated (tRAS gates the next precharge), and the write-recovery
    horizon (tWR gates precharge after a write burst).
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self._ready_at = 0
        self.accesses = 0
        self.busy_time = 0
        # Open-page state
        self.open_row: int = -1          #: -1 = precharged / no open row
        self.activated_at = 0            #: last ACT time (tRAS accounting)
        self.precharge_not_before = 0    #: max(act+tRAS, write_end+tWR)

    @property
    def ready_at(self) -> int:
        """Earliest time the next activate to this bank may issue."""
        return self._ready_at

    def earliest(self, at: int) -> int:
        """Earliest activate time at or after ``at``."""
        return max(at, self._ready_at)

    def is_ready(self, at: int) -> bool:
        return at >= self._ready_at

    def reserve(self, start: int, busy: int) -> int:
        """Occupy the bank for one access; returns when it frees."""
        if start < self._ready_at:
            raise ProtocolError(
                f"bank {self.index}: activate at {start} before ready ({self._ready_at})"
            )
        if busy <= 0:
            raise ProtocolError(f"bank {self.index}: non-positive busy time {busy}")
        self._ready_at = start + busy
        self.accesses += 1
        self.busy_time += busy
        return self._ready_at

    def block_until(self, time: int) -> None:
        """Push readiness out (used by the refresh engine)."""
        self._ready_at = max(self._ready_at, time)

    def close_row(self) -> None:
        """Precharge bookkeeping (refresh closes every row)."""
        self.open_row = -1

    def set_ready(self, time: int, accesses: int = 1) -> None:
        """Open-page bookkeeping: next command to this bank at ``time``."""
        if time > self._ready_at:
            self.busy_time += time - max(self._ready_at, self.activated_at)
            self._ready_at = time
        self.accesses += accesses


class ActivationWindow:
    """Rolling tRRD / tXAW (four-activate-window) constraint tracker."""

    def __init__(self, t_rrd: int, t_xaw: int, activates_per_window: int = 4) -> None:
        if activates_per_window < 1:
            raise ProtocolError("activates_per_window must be >= 1")
        self.t_rrd = t_rrd
        self.t_xaw = t_xaw
        self.activates_per_window = activates_per_window
        self._recent: Deque[int] = deque(maxlen=activates_per_window)

    def earliest(self, at: int) -> int:
        """Earliest activate time at or after ``at`` honouring tRRD/tXAW."""
        earliest = at
        if self._recent:
            earliest = max(earliest, self._recent[-1] + self.t_rrd)
            if len(self._recent) == self.activates_per_window:
                earliest = max(earliest, self._recent[0] + self.t_xaw)
        return earliest

    def record(self, at: int) -> None:
        """Record an activate issued at ``at``."""
        if self._recent and at < self._recent[-1]:
            raise ProtocolError("activates must be recorded in time order")
        if at < self.earliest(at):
            raise ProtocolError(f"activate at {at} violates tRRD/tXAW window")
        self._recent.append(at)
