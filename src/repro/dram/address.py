"""Address decomposition for DRAM devices and the DRAM cache.

The paper's controller uses the gem5 ``RoCoRaBaCh`` interleaving (Table
III): reading the physical block address from least- to most-significant
bits gives **Ch**annel, **Ba**nk, **Ra**nk, **Co**lumn, **Ro**w. With a
close-page policy this spreads consecutive cache lines across channels
and banks, maximising bank-level parallelism for streaming access.

All addresses handled here are *block* addresses (byte address divided by
the 64 B block size); the front end performs that division once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

BLOCK_BYTES = 64


@dataclass(frozen=True)
class DramGeometry:
    """Physical organisation of one DRAM device (all channels).

    ``banks_per_channel`` counts *logical* banks: TDRAM pairs physical
    banks across bank groups to serve 64 B at once (§III-C1), and the
    controller schedules the pair as a single resource.
    """

    channels: int
    banks_per_channel: int
    rows_per_bank: int
    columns_per_row: int  # 64-byte columns

    def __post_init__(self) -> None:
        for name in ("channels", "banks_per_channel", "rows_per_bank", "columns_per_row"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two, got {value}")

    @property
    def blocks_per_channel(self) -> int:
        return self.banks_per_channel * self.rows_per_bank * self.columns_per_row

    @property
    def total_blocks(self) -> int:
        return self.channels * self.blocks_per_channel

    @property
    def capacity_bytes(self) -> int:
        return self.total_blocks * BLOCK_BYTES

    @classmethod
    def for_capacity(
        cls,
        capacity_bytes: int,
        channels: int,
        banks_per_channel: int = 16,
        columns_per_row: int = 32,
    ) -> "DramGeometry":
        """Build a geometry with the given capacity, deriving row count.

        A 32-column row of 64 B blocks is a 2 KiB logical row (two paired
        1 KiB physical rows), matching HBM3-class devices.
        """
        blocks = capacity_bytes // BLOCK_BYTES
        denom = channels * banks_per_channel * columns_per_row
        if blocks % denom:
            raise ConfigError(
                f"capacity {capacity_bytes} not divisible across {denom} row-slots"
            )
        rows = blocks // denom
        return cls(channels, banks_per_channel, rows, columns_per_row)


@dataclass(frozen=True)
class DecodedAddress:
    """A block address decomposed for one device access."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Block-address decomposition over a :class:`DramGeometry`.

    Two interleaving schemes (gem5 names, fields listed most- to
    least-significant):

    * ``RoCoRaBaCh`` — channel then bank in the low bits: consecutive
      blocks fan out across channels/banks for maximum parallelism.
      The right choice for the close-page DRAM cache (Table III).
    * ``RoRaBaChCo`` — column in the low bits: a row's worth of
      consecutive blocks stays in one bank, giving streaming traffic
      row-buffer hits. The right choice for the open-page DDR5.

    Addresses beyond the device capacity wrap onto the same resources,
    which is exactly how a direct-mapped cache reuses its frames for
    competing blocks.
    """

    SCHEMES = ("RoCoRaBaCh", "RoRaBaChCo")

    def __init__(self, geometry: DramGeometry, scheme: str = "RoCoRaBaCh") -> None:
        if scheme not in self.SCHEMES:
            raise ConfigError(f"unknown interleaving scheme {scheme!r}")
        self.geometry = geometry
        self.scheme = scheme

    def decode(self, block_addr: int) -> DecodedAddress:
        """Map a block address to (channel, bank, row, column)."""
        if block_addr < 0:
            raise ConfigError(f"negative block address {block_addr}")
        geo = self.geometry
        rest = block_addr
        if self.scheme == "RoCoRaBaCh":
            channel = rest % geo.channels
            rest //= geo.channels
            bank = rest % geo.banks_per_channel
            rest //= geo.banks_per_channel
            column = rest % geo.columns_per_row
            rest //= geo.columns_per_row
        else:  # RoRaBaChCo
            column = rest % geo.columns_per_row
            rest //= geo.columns_per_row
            channel = rest % geo.channels
            rest //= geo.channels
            bank = rest % geo.banks_per_channel
            rest //= geo.banks_per_channel
        row = rest % geo.rows_per_bank
        return DecodedAddress(channel=channel, bank=bank, row=row, column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (for the canonical in-device block)."""
        geo = self.geometry
        value = decoded.row
        if self.scheme == "RoCoRaBaCh":
            value = value * geo.columns_per_row + decoded.column
            value = value * geo.banks_per_channel + decoded.bank
            value = value * geo.channels + decoded.channel
        else:
            value = value * geo.banks_per_channel + decoded.bank
            value = value * geo.channels + decoded.channel
            value = value * geo.columns_per_row + decoded.column
        return value

    def frame_index(self, block_addr: int) -> int:
        """The cache frame (set, for direct-mapped) a block lands in."""
        return block_addr % self.geometry.total_blocks
