"""A DRAM channel device: buses + banks + refresh, with issue planning.

One :class:`DramChannel` models a single independent channel (TDRAM
turns each HBM3 pseudo-channel into one, §III-B): an 8-bit CA bus, a
32-bit DQ bus, optionally a 4-bit HM bus plus tag banks (TDRAM/NDC),
sixteen logical (pair-scheduled) data banks, and an all-bank refresh
engine.

Issue planning uses a fixed-point search over monotonic resource
constraints: the earliest time every needed resource (CA slot, bank,
activation window, DQ slot at its fixed offset, tag bank, HM slot) is
simultaneously available. Controllers then commit the plan, which
reserves the resources and returns the grant times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.dram.bank import ActivationWindow, Bank
from repro.dram.bus import Bus, DataBus, Direction
from repro.dram.soa import BankStateArrays, SoaBank
from repro.dram.timing import DramTiming, TagTiming
from repro.errors import ProtocolError
from repro.sim.kernel import Simulator, ns

#: HM packet: 3 B of tag/metadata over a 4-bit bus at the data rate
#: ("e.g. 6 [beats] for 3B metadata", §III-B) -> 0.75 ns.
HM_PACKET_TIME = ns(0.75)


@dataclass(frozen=True)
class AccessGrant:
    """Committed resource grants for one DRAM access."""

    issue: int                 #: command slot start on the CA bus
    data_start: Optional[int]  #: first data beat on DQ (None if no transfer)
    data_end: Optional[int]    #: end of the DQ burst
    hm_at: Optional[int]       #: HM result arrival at the controller
    bank: int


class DramChannel:
    """One independent DRAM channel with optional tag path."""

    def __init__(
        self,
        sim: Simulator,
        timing: DramTiming,
        n_banks: int,
        name: str = "ch",
        tag_timing: Optional[TagTiming] = None,
        enable_refresh: bool = True,
        page_policy: str = "close",
        refresh_policy: str = "all_bank",
        soa: Optional[BankStateArrays] = None,
    ) -> None:
        if page_policy not in ("close", "open"):
            raise ProtocolError(f"unknown page policy {page_policy!r}")
        if refresh_policy not in ("all_bank", "per_bank"):
            raise ProtocolError(f"unknown refresh policy {refresh_policy!r}")
        self.sim = sim
        self.timing = timing
        self.tag_timing = tag_timing
        self.page_policy = page_policy
        self.refresh_policy = refresh_policy
        self._refresh_cursor = 0
        self.name = name
        self.ca = Bus(f"{name}.ca")
        self.dq = DataBus(f"{name}.dq", timing.tRTW, timing.tWTR)
        #: structure-of-arrays bank state (batched step mode) — None in
        #: the exact event mode, which keeps plain per-object banks
        self.soa = soa
        if soa is None:
            self.banks: List[Bank] = [Bank(i) for i in range(n_banks)]
        else:
            self.banks = [SoaBank(i, soa.ready_at, soa.open_row)
                          for i in range(n_banks)]
        self.act_window = ActivationWindow(
            timing.tRRD, timing.tXAW, timing.activates_per_window
        )
        self.hm: Optional[Bus] = None
        self.tag_banks: List[Bank] = []
        self.tag_act_window: Optional[ActivationWindow] = None
        if tag_timing is not None:
            self.hm = Bus(f"{name}.hm")
            if soa is None:
                self.tag_banks = [Bank(i) for i in range(n_banks)]
            else:
                self.tag_banks = [SoaBank(i, soa.tag_ready_at,
                                          soa.tag_open_row)
                                  for i in range(n_banks)]
            self.tag_act_window = ActivationWindow(tag_timing.tRRD_TAG, 0, 1)
        # Refresh bookkeeping.
        self.refresh_listeners: List[Callable[[int, int], None]] = []
        self.refreshes = 0
        #: attached command observers (logging / protocol checking)
        self.observers: List = []
        # Traffic counters (bytes over the DQ bus, by purpose).
        self.bytes_read = 0
        self.bytes_written = 0
        if enable_refresh and timing.tREFI > 0:
            first = timing.tREFI
            if refresh_policy == "per_bank":
                first = max(1, timing.tREFI // n_banks)
            self.sim.at(first, self._do_refresh)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _do_refresh(self) -> None:
        """Refresh per the configured policy; DQ stays free either way.

        * ``all_bank`` — every bank blocked for the full tRFC. The DQ
          bus is *not* blocked: TDRAM exploits these windows to stream
          flush-buffer entries to the controller (§III-D2), and in the
          baselines nothing can use DQ anyway since no column command
          can issue.
        * ``per_bank`` — one bank refreshed per tREFI tick in rotation
          (tRFC scaled down by the bank count): demand accesses to the
          other banks continue, so tail latency improves, but no
          channel-wide DQ-idle window exists for opportunistic unloads.
        """
        start = self.sim.now
        if self.refresh_policy == "all_bank":
            end = start + self.timing.tRFC
            if self.soa is not None:
                # Batched mode: the SoA columns are canonical, so the
                # whole bank group transitions in one vectorized pass
                # (bit-identical to the scalar loop below).
                self.soa.block_all_until(end)
            else:
                for bank in self.banks:
                    bank.block_until(end)
                    bank.close_row()
                for bank in self.tag_banks:
                    bank.block_until(end)
            self._notify("refresh", -1, start)
            for listener in self.refresh_listeners:
                listener(start, end)
        else:
            per_bank_rfc = max(1, self.timing.tRFC // len(self.banks))
            index = self._refresh_cursor % len(self.banks)
            self._refresh_cursor += 1
            end = start + per_bank_rfc
            self.banks[index].block_until(end)
            self.banks[index].close_row()
            if self.tag_banks:
                self.tag_banks[index].block_until(end)
            self._notify("refresh", index, start)
            # No refresh_listeners callback: there is no channel-wide
            # DQ-idle window to exploit.
        self.refreshes += 1
        interval = self.timing.tREFI
        if self.refresh_policy == "per_bank":
            interval = max(1, interval // len(self.banks))
        self.sim.at(start + interval, self._do_refresh)

    def _notify(self, command: str, bank: int, at: int,
                data_start: Optional[int] = None,
                data_end: Optional[int] = None) -> None:
        if not self.observers:
            return
        from repro.dram.monitor import CommandRecord

        record = CommandRecord(time_ps=at, command=command, bank=bank,
                               data_start=data_start, data_end=data_end)
        for observer in self.observers:
            observer.on_command(record)

    # ------------------------------------------------------------------
    # Issue planning
    # ------------------------------------------------------------------
    def earliest_issue(
        self,
        bank: int,
        at: int,
        is_write: bool,
        with_data: bool = True,
        with_tag: bool = False,
    ) -> int:
        """Earliest legal command-issue instant at or after ``at``.

        Every constraint has the form ``max(t, floor)`` where the floor
        (a bus free time, bank ready time, activation-window horizon,
        or data/HM slot at a fixed command offset) does not depend on
        ``t``, so the fixed point is a single max over the floors — no
        iterative search. This is the hottest function in the simulator
        (one call per scheduler wake per channel), hence the manual
        comparisons instead of one big ``max(...)`` call.
        """
        t = self.ca.earliest(at)
        v = self.banks[bank].earliest(at)
        if v > t:
            t = v
        v = self.act_window.earliest(at)
        if v > t:
            t = v
        if with_data:
            timing = self.timing
            if is_write:
                offset = timing.write_data_delay
                v = self.dq.earliest_dir(at + offset, Direction.WRITE) - offset
            else:
                offset = timing.read_data_delay
                v = self.dq.earliest_dir(at + offset, Direction.READ) - offset
            if v > t:
                t = v
        tag_timing = self.tag_timing
        if with_tag and tag_timing is not None:
            assert self.tag_act_window is not None and self.hm is not None
            v = self.tag_banks[bank].earliest(at)
            if v > t:
                t = v
            v = self.tag_act_window.earliest(at)
            if v > t:
                t = v
            delay = tag_timing.hm_result_delay
            v = self.hm.earliest(at + delay) - delay
            if v > t:
                t = v
        return t

    def issue_access(
        self,
        bank: int,
        at: int,
        is_write: bool,
        with_data: bool = True,
        with_tag: bool = False,
        data_bytes: int = 64,
        hm_result_delay: Optional[int] = None,
        transfer: bool = True,
    ) -> AccessGrant:
        """Commit one access starting its command at exactly ``at``.

        ``at`` must come from :meth:`earliest_issue` (or be otherwise
        legal); resources are reserved and the grant returned.

        Parameters
        ----------
        with_data:
            Reserve a DQ burst slot at the command's fixed data offset.
        with_tag:
            Also activate the tag mats and book an HM-bus slot.
        hm_result_delay:
            Override the issue->HM delay (NDC ties the result to the
            column operation instead of the activation).
        transfer:
            Whether data actually moves in the reserved slot. TDRAM's
            conditional column operation keeps the slot (command timing
            is fixed) but drives no data on a read-miss-clean (§III-D1),
            freeing the slot for a flush-buffer unload.
        """
        timing = self.timing
        self.ca.reserve(at, timing.tCMD)
        busy = timing.write_bank_busy if is_write else timing.read_bank_busy
        self.banks[bank].reserve(at, busy)
        self.act_window.record(at)
        data_start = data_end = None
        if with_data:
            offset = timing.write_data_delay if is_write else timing.read_data_delay
            direction = Direction.WRITE if is_write else Direction.READ
            burst = max(1, int(round(timing.tBURST * data_bytes / 64)))
            data_start = at + offset
            data_end = self.dq.reserve_dir(data_start, burst, direction)
            if transfer:
                if is_write:
                    self.bytes_written += data_bytes
                else:
                    self.bytes_read += data_bytes
        hm_at = None
        if with_tag and self.tag_timing is not None:
            assert self.tag_act_window is not None and self.hm is not None
            self.tag_banks[bank].reserve(at, self.tag_timing.tRC_TAG)
            self.tag_act_window.record(at)
            delay = hm_result_delay if hm_result_delay is not None else (
                self.tag_timing.hm_result_delay
            )
            hm_slot = self.hm.earliest(at + delay)
            self.hm.reserve(hm_slot, HM_PACKET_TIME)
            hm_at = hm_slot + HM_PACKET_TIME
        if self.observers:
            name = ("act_wr" if is_write else "act_rd") if with_tag else (
                "write" if is_write else "read")
            self._notify(name, bank, at, data_start, data_end)
        return AccessGrant(
            issue=at, data_start=data_start, data_end=data_end, hm_at=hm_at, bank=bank
        )

    # ------------------------------------------------------------------
    # Open-page accesses (the DDR5 backing store)
    # ------------------------------------------------------------------
    def is_row_hit(self, bank: int, row: int) -> bool:
        return self.banks[bank].open_row == row

    def _open_data_offset(self, bank: int, row: int, is_write: bool) -> int:
        """Command-to-data delay given the bank's current row state."""
        timing = self.timing
        cas = timing.tCWL if is_write else timing.tCL
        state = self.banks[bank].open_row
        if state == row:
            return cas                                  # row hit: CAS only
        if state < 0:
            return timing.tRCD + cas                    # closed: ACT + CAS
        return timing.tRP + timing.tRCD + cas           # conflict: PRE+ACT+CAS

    def earliest_issue_open(self, bank: int, at: int, row: int,
                            is_write: bool) -> int:
        """Open-page analogue of :meth:`earliest_issue`.

        Like :meth:`earliest_issue`, every constraint floor is
        ``t``-independent, so a single max pass gives the fixed point.
        """
        b = self.banks[bank]
        hit = b.open_row == row
        offset = self._open_data_offset(bank, row, is_write)
        direction = Direction.WRITE if is_write else Direction.READ
        t = max(at, self.ca.earliest(at), b.earliest(at))
        if not hit:
            t = max(t, self.act_window.earliest(at))
            if b.open_row >= 0:
                # The implicit precharge obeys tRAS and tWR.
                t = max(t, b.precharge_not_before)
        return max(t, self.dq.earliest_dir(at + offset, direction) - offset)

    def issue_access_open(self, bank: int, at: int, row: int, is_write: bool,
                          data_bytes: int = 64) -> AccessGrant:
        """Commit one open-page access (row left open afterwards).

        Returns the grant; ``data_start`` reflects the row-hit (CAS
        only), row-closed (ACT+CAS), or row-conflict (PRE+ACT+CAS) path.
        """
        timing = self.timing
        b = self.banks[bank]
        hit = b.open_row == row
        offset = self._open_data_offset(bank, row, is_write)
        self.ca.reserve(at, timing.tCMD)
        if not hit:
            act_at = at if b.open_row < 0 else at + timing.tRP
            self.act_window.record(at)
            b.activated_at = act_at
            b.open_row = row
        direction = Direction.WRITE if is_write else Direction.READ
        burst = max(1, int(round(timing.tBURST * data_bytes / 64)))
        data_start = at + offset
        data_end = self.dq.reserve_dir(data_start, burst, direction)
        # Next command to this bank: one column-to-column gap after our
        # CAS; a future row change additionally waits for tRAS/tWR.
        cas_time = data_start - (timing.tCWL if is_write else timing.tCL)
        b.set_ready(cas_time + timing.tCCD_L)
        recovery = data_end + (timing.tWR if is_write else 0)
        b.precharge_not_before = max(b.activated_at + timing.tRAS, recovery)
        if is_write:
            self.bytes_written += data_bytes
        else:
            self.bytes_read += data_bytes
        self._notify("write" if is_write else "read", bank, at,
                     data_start, data_end)
        return AccessGrant(issue=at, data_start=data_start, data_end=data_end,
                           hm_at=None, bank=bank)

    # ------------------------------------------------------------------
    # Tag-only probes (TDRAM early tag probing, §III-E)
    # ------------------------------------------------------------------
    def can_probe(self, bank: int, at: int) -> bool:
        """Whether a tag-only probe could issue exactly at ``at``.

        Probes only fill *otherwise unused* slots: the CA bus, the tag
        bank, the tag activation window, and the HM slot must all be
        immediately free, so a probe never delays a MAIN command.
        """
        if self.tag_timing is None:
            return False
        assert self.tag_act_window is not None and self.hm is not None
        return (
            self.ca.is_free(at)
            and self.tag_banks[bank].is_ready(at)
            and self.tag_act_window.earliest(at) <= at
            and self.hm.is_free(at + self.tag_timing.hm_result_delay)
        )

    def issue_probe(self, bank: int, at: int) -> AccessGrant:
        """Issue a tag-only probe; returns a grant with only ``hm_at``."""
        if self.tag_timing is None:
            raise ProtocolError(f"{self.name}: probes need a tag path")
        assert self.tag_act_window is not None and self.hm is not None
        self.ca.reserve(at, self.timing.tCMD)
        self.tag_banks[bank].reserve(at, self.tag_timing.tRC_TAG)
        self.tag_act_window.record(at)
        hm_slot = self.hm.earliest(at + self.tag_timing.hm_result_delay)
        self.hm.reserve(hm_slot, HM_PACKET_TIME)
        self._notify("probe", bank, at)
        return AccessGrant(
            issue=at, data_start=None, data_end=None,
            hm_at=hm_slot + HM_PACKET_TIME, bank=bank,
        )

    # ------------------------------------------------------------------
    # Raw DQ grants (flush-buffer unloads, NDC's RES command)
    # ------------------------------------------------------------------
    def transfer_raw(self, at: int, data_bytes: int, direction: Direction) -> int:
        """Move ``data_bytes`` on DQ without touching banks; returns end."""
        start = self.dq.earliest_dir(at, direction)
        burst = max(1, int(round(self.timing.tBURST * data_bytes / 64)))
        end = self.dq.reserve_dir(start, burst, direction)
        if direction is Direction.READ:
            self.bytes_read += data_bytes
        else:
            self.bytes_written += data_bytes
        self._notify(
            "raw_read" if direction is Direction.READ else "raw_write",
            -1, start, start, end,
        )
        return end
