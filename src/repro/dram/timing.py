"""DRAM timing parameter sets.

The values mirror Table III of the paper ("same for all evaluated DRAM
cache designs"), expressed in nanoseconds and converted once to integer
picoseconds. A second block carries the tag-bank timings used only by
TDRAM (and, with different values, NDC).

Parameters the table omits but a timing model needs (write recovery,
DQ-bus turnaround, refresh interval) are filled with JEDEC-typical
values and documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, TimingError
from repro.sim.kernel import ns


@dataclass(frozen=True)
class TagTiming:
    """Timings of TDRAM's small low-latency tag mats (§III-C4, Table III).

    All values are integer picoseconds.
    """

    tRCD_TAG: int = ns(7.5)   #: tag-mat activate-to-column delay
    tHM: int = ns(7.5)        #: tag compare + HM-bus transfer to controller
    tHM_int: int = ns(2.5)    #: internal tag-result-to-data-bank delay
    tRTP_TAG: int = ns(2.5)   #: tag read-to-precharge
    tRRD_TAG: int = ns(2)     #: tag-mat activate-to-activate
    tWR_TAG: int = ns(1)      #: tag write recovery
    tRTW_TAG: int = ns(1)     #: tag-mat read-to-write turnaround
    tRC_TAG: int = ns(12)     #: tag-mat row cycle (bank busy per probe)

    @property
    def hm_result_delay(self) -> int:
        """Command issue to HM result available at the controller.

        §III-C4: ``tRCD_TAG + tHM = 15 ns`` matches RLDRAM's read latency.
        """
        return self.tRCD_TAG + self.tHM

    def validate(self) -> None:
        """Check tag-mat timing consistency; raises :class:`TimingError`.

        Called by :class:`~repro.config.system.SystemConfig` at
        construction so a sweep over tag timings cannot silently produce
        a mat that finishes a probe before it started.
        """
        positive = ("tRCD_TAG", "tHM", "tHM_int", "tRTP_TAG", "tRRD_TAG",
                    "tWR_TAG", "tRTW_TAG", "tRC_TAG")
        for name in positive:
            if getattr(self, name) <= 0:
                raise TimingError(
                    f"tag timing {name} must be positive, got "
                    f"{getattr(self, name)} ps")
        if self.tRC_TAG < self.tRCD_TAG:
            raise TimingError(
                f"tag row cycle tRC_TAG ({self.tRC_TAG} ps) cannot be "
                f"shorter than its activate delay tRCD_TAG "
                f"({self.tRCD_TAG} ps)")
        if self.tRC_TAG < self.tRCD_TAG + self.tRTP_TAG:
            raise TimingError(
                f"tag row cycle tRC_TAG ({self.tRC_TAG} ps) cannot be "
                f"shorter than tRCD_TAG + tRTP_TAG "
                f"({self.tRCD_TAG + self.tRTP_TAG} ps)")


@dataclass(frozen=True)
class DramTiming:
    """Data-bank timing parameters (Table III), integer picoseconds.

    The defaults model the HBM3-derived DRAM-cache device; use
    :func:`ddr5_timing` for the DDR5 backing store and
    :meth:`scaled_burst` for Alloy/BEAR's 80-byte accesses.
    """

    clock_ghz: float = 2.0
    data_rate_gbps: float = 8.0
    tBURST: int = ns(2)       #: 64 B on a 32-bit channel at 8 Gb/s
    tRCD: int = ns(12)        #: activate-to-read column delay
    tRCD_WR: int = ns(6)      #: activate-to-write column delay
    tCCD_L: int = ns(2)       #: column-to-column, same bank group
    tRP: int = ns(14)         #: precharge period
    tRAS: int = ns(28)        #: row active time
    tCL: int = ns(18)         #: read CAS latency
    tCWL: int = ns(7)         #: write CAS latency
    tRRD: int = ns(2)         #: activate-to-activate, different banks
    tXAW: int = ns(16)        #: rolling activation window (4 activates)
    tRL_core: int = ns(2)     #: internal read latency for flush-buffer moves
    tRTW_int: int = ns(1)     #: internal read-to-write turnaround
    activates_per_window: int = 8
    # -- values not in Table III (JEDEC-typical, documented choices) --
    tWR: int = ns(14)         #: write recovery before precharge
    tRTW: int = ns(4)         #: DQ bus read-to-write turnaround gap
    tWTR: int = ns(8)         #: DQ bus write-to-read turnaround gap
    tCMD: int = ns(1)         #: one command slot on the CA bus
    tREFI: int = ns(3900)     #: refresh interval
    tRFC: int = ns(195)       #: refresh cycle (channel blocked)

    def __post_init__(self) -> None:
        if self.tRAS <= 0 or self.tRP <= 0:
            raise ConfigError("tRAS and tRP must be positive")
        if self.tBURST <= 0:
            raise ConfigError("tBURST must be positive")

    def validate(self) -> None:
        """Check data-bank timing consistency; raises :class:`TimingError`.

        ``__post_init__`` keeps only the cheap always-on positivity
        checks (tests construct partial tables freely);
        :class:`~repro.config.system.SystemConfig` calls this full
        validation once per constructed system, so a bad sweep config
        fails fast with the violated constraint named.
        """
        if self.clock_ghz <= 0 or self.data_rate_gbps <= 0:
            raise TimingError(
                f"bus rates must be positive: clock_ghz={self.clock_ghz}, "
                f"data_rate_gbps={self.data_rate_gbps}")
        positive = ("tBURST", "tRCD", "tRCD_WR", "tCCD_L", "tRP", "tRAS",
                    "tCL", "tCWL", "tRRD", "tXAW", "tRL_core", "tRTW_int",
                    "tWR", "tRTW", "tWTR", "tCMD", "tREFI", "tRFC")
        for name in positive:
            if getattr(self, name) <= 0:
                raise TimingError(
                    f"timing {name} must be positive, got "
                    f"{getattr(self, name)} ps")
        if self.activates_per_window < 1:
            raise TimingError(
                f"activates_per_window must be >= 1, got "
                f"{self.activates_per_window}")
        if self.tRCD > self.tRAS:
            raise TimingError(
                f"tRCD ({self.tRCD} ps) cannot exceed tRAS "
                f"({self.tRAS} ps): a row must stay open at least until "
                "its column access is allowed")
        if self.tRCD_WR > self.tRAS:
            raise TimingError(
                f"tRCD_WR ({self.tRCD_WR} ps) cannot exceed tRAS "
                f"({self.tRAS} ps)")
        if self.tXAW < self.tRRD:
            raise TimingError(
                f"rolling activation window tXAW ({self.tXAW} ps) cannot "
                f"be shorter than one activate gap tRRD ({self.tRRD} ps)")
        if self.tRFC >= self.tREFI:
            raise TimingError(
                f"refresh cycle tRFC ({self.tRFC} ps) must fit inside "
                f"the refresh interval tREFI ({self.tREFI} ps), or the "
                "device never leaves refresh")

    @property
    def tRC(self) -> int:
        """Row cycle: minimum time between activates to one bank."""
        return self.tRAS + self.tRP

    @property
    def read_data_delay(self) -> int:
        """Fused-activate read command to first data beat on DQ."""
        return self.tRCD + self.tCL

    @property
    def write_data_delay(self) -> int:
        """Fused-activate write command to first data beat on DQ."""
        return self.tRCD_WR + self.tCWL

    @property
    def read_bank_busy(self) -> int:
        """Bank occupancy of one close-page read access."""
        return self.tRC

    @property
    def write_bank_busy(self) -> int:
        """Bank occupancy of one close-page write access (with tWR)."""
        return max(self.tRC, self.tRCD_WR + self.tCWL + self.tBURST + self.tWR + self.tRP)

    def scaled_burst(self, bytes_per_access: int, base_bytes: int = 64) -> "DramTiming":
        """Return a copy with ``tBURST`` scaled for a larger access.

        Alloy and BEAR move 80 B per 64 B demand ("Alloy's 80 B burst size
        is modeled with increased timing parameters", §IV-A).
        """
        if bytes_per_access <= 0 or base_bytes <= 0:
            raise ConfigError("access sizes must be positive")
        factor = bytes_per_access / base_bytes
        return replace(self, tBURST=int(round(self.tBURST * factor)))


def hbm3_cache_timing() -> DramTiming:
    """Table III timing for the DRAM-cache device (all designs)."""
    return DramTiming()


def ddr5_timing() -> DramTiming:
    """Timing for the DDR5 backing store (Table III: 2 ch x 32 GiB/s).

    DDR5-ish absolute latencies; the 64 B burst occupies 2 ns at the
    32 GiB/s channel rate used in the paper's configuration.
    """
    return DramTiming(
        clock_ghz=2.0,
        data_rate_gbps=8.0,
        tBURST=ns(2),
        tRCD=ns(16),
        tRCD_WR=ns(16),
        tCCD_L=ns(4),
        tRP=ns(16),
        tRAS=ns(32),
        tCL=ns(16),
        tCWL=ns(14),
        tRRD=ns(2),
        tXAW=ns(16),
        tWR=ns(24),
        tRTW=ns(6),
        tWTR=ns(10),
        tREFI=ns(3900),
        tRFC=ns(295),
    )


def rldram_like_tag_timing() -> TagTiming:
    """Tag-mat timings validated against RLDRAM3 (§III-C4)."""
    return TagTiming()


def separate_die_tag_timing(tsv_delay_ns: float = 1.0) -> TagTiming:
    """Tag mats on a separate die in the stack (§III-C2 alternative).

    The paper keeps tags on the same die so tag storage scales with
    data storage; the alternative adds a TSV hop each way between the
    tag die and the data die / HM PHY. Modelled as added activate and
    result latency; the area trade (no same-die mat overhead) lives in
    :mod:`repro.core.area`.
    """
    base = TagTiming()
    tsv = ns(tsv_delay_ns)
    return replace(
        base,
        tRCD_TAG=base.tRCD_TAG + tsv,
        tHM=base.tHM + tsv,
        tHM_int=base.tHM_int + 2 * tsv,  # result crosses back to the data die
    )


def ndc_tag_timing() -> TagTiming:
    """Tag timings for NDC's CAM-like tag structure.

    NDC's tags are larger mats than TDRAM's (§V-C) and its hit/miss
    result is produced during the *column* operation rather than during
    activation, which the NDC controller models separately; the raw mat
    timings are kept identical for the fair-comparison rule of §IV-A.
    """
    return TagTiming()
