"""Channel observers: command logging and protocol checking.

A :class:`ChannelObserver` attached to a :class:`~repro.dram.device.
DramChannel` sees every committed command. Two implementations ship:

* :class:`CommandLog` — a bounded in-memory log of (time, command,
  bank, data window) records with per-command counters; the basis for
  waveform-style debugging (`render_timeline`) and utilisation reports.
* :class:`ProtocolChecker` — revalidates invariants the resource model
  should already guarantee (monotonic CA grants, per-bank activate
  spacing, non-overlapping same-direction DQ windows); used by the
  stress tests to catch modelling regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.sim.kernel import to_ns
from repro.stats.counters import CounterSet


@dataclass(frozen=True)
class CommandRecord:
    """One committed channel command."""

    time_ps: int
    command: str           #: "act_rd" | "act_wr" | "read" | "write" |
    #: "probe" | "refresh" | "raw_read" | "raw_write"
    bank: int              #: -1 for channel-wide events (refresh, raw)
    data_start: Optional[int] = None
    data_end: Optional[int] = None

    @property
    def time_ns(self) -> float:
        return to_ns(self.time_ps)


class ChannelObserver:
    """Interface: override :meth:`on_command`."""

    def on_command(self, record: CommandRecord) -> None:
        raise NotImplementedError


class CommandLog(ChannelObserver):
    """Bounded command log with per-command counters."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ProtocolError("log capacity must be positive")
        self.capacity = capacity
        self.records: List[CommandRecord] = []
        self.dropped = 0
        self.counts = CounterSet()

    def on_command(self, record: CommandRecord) -> None:
        self.counts.add(record.command)
        if len(self.records) < self.capacity:
            self.records.append(record)
        else:
            self.dropped += 1

    def between(self, start_ps: int, end_ps: int) -> List[CommandRecord]:
        return [r for r in self.records if start_ps <= r.time_ps < end_ps]

    def render_timeline(self, start_ps: int, end_ps: int,
                        resolution_ps: int = 1000) -> str:
        """A text timeline: one row per bank, one column per time slot."""
        if resolution_ps <= 0 or end_ps <= start_ps:
            raise ProtocolError("bad timeline window")
        window = self.between(start_ps, end_ps)
        banks = sorted({r.bank for r in window})
        slots = (end_ps - start_ps + resolution_ps - 1) // resolution_ps
        symbol = {"act_rd": "R", "act_wr": "W", "read": "r", "write": "w",
                  "probe": "p", "refresh": "F", "raw_read": "u",
                  "raw_write": "v"}
        lines = []
        for bank in banks:
            row = ["."] * slots
            for record in window:
                if record.bank != bank:
                    continue
                slot = (record.time_ps - start_ps) // resolution_ps
                row[slot] = symbol.get(record.command, "?")
            label = f"bank {bank:>3}" if bank >= 0 else "channel "
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines)


class ProtocolChecker(ChannelObserver):
    """Re-validates command-stream invariants as commands commit.

    Intended for **close-page** channels (the DRAM cache), where every
    column command implies an activate, so per-bank command spacing
    must respect tRC. Attach to open-page channels only with ``t_rc=0``.
    """

    def __init__(self, t_rc: int, t_cmd: int) -> None:
        self.t_rc = t_rc
        self.t_cmd = t_cmd
        self._last_cmd_time: Optional[int] = None
        self._last_activate: Dict[int, int] = {}
        self.commands_checked = 0

    def on_command(self, record: CommandRecord) -> None:
        self.commands_checked += 1
        if record.command in ("act_rd", "act_wr", "read", "write", "probe"):
            if (self._last_cmd_time is not None
                    and record.time_ps < self._last_cmd_time):
                raise ProtocolError(
                    f"CA command at {record.time_ps} before previous "
                    f"{self._last_cmd_time}"
                )
            self._last_cmd_time = record.time_ps
        if record.command in ("act_rd", "act_wr", "read", "write") \
                and record.bank >= 0 and self.t_rc > 0:
            last = self._last_activate.get(record.bank)
            if last is not None and record.time_ps - last < self.t_rc:
                raise ProtocolError(
                    f"bank {record.bank}: activates {to_ns(record.time_ps - last)} ns "
                    f"apart (tRC {to_ns(self.t_rc)} ns)"
                )
            self._last_activate[record.bank] = record.time_ps
        if record.data_start is not None and record.data_end is not None:
            if record.data_end <= record.data_start:
                raise ProtocolError("empty or inverted data window")
