"""Structure-of-arrays bank state for the batched step mode.

``SystemConfig(step_mode="batched")`` reshapes the per-bank hot state
of each cache channel from one Python object per bank into shared
numpy columns (:class:`BankStateArrays`): data-bank busy-until,
open-row, per-bank queued-op depth, and the tag-bank busy-until the
early-probe machinery consults. :class:`SoaBank` keeps the exact
:class:`~repro.dram.bank.Bank` protocol — every scalar transition
(reserve, block_until, set_ready) lands directly in the column — so
group transitions and group queries become single vectorized passes
instead of per-bank Python loops:

* all-bank refresh blocks every data and tag bank with one
  ``np.maximum`` pass (:meth:`BankStateArrays.block_all_until`);
* FR-FCFS selection over a deep queue asks for the first queued op
  whose bank is ready with one gather + compare
  (:meth:`BankStateArrays.first_ready`) instead of a per-op loop.

Both passes compute exactly what the scalar loops compute (integer
picosecond state, first-match semantics), so batched runs remain
bit-identical to the event mode — locked by the whole-run A/B suite.
The event mode never constructs these arrays and is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.dram.bank import Bank
from repro.errors import ConfigError


class BankStateArrays:
    """Shared per-bank state columns for one channel (int64, ps).

    ``ready_at``/``tag_ready_at`` are the canonical busy-until times of
    the attached :class:`SoaBank` views; ``open_row`` mirrors open-page
    state (−1 = precharged); ``queue_depth`` counts queued cache ops
    per bank (maintained by the channel scheduler) for introspection
    and diagnostics.
    """

    def __init__(self, n_banks: int) -> None:
        if n_banks <= 0:
            raise ConfigError("n_banks must be positive")
        self.n_banks = n_banks
        self.ready_at = np.zeros(n_banks, dtype=np.int64)
        self.tag_ready_at = np.zeros(n_banks, dtype=np.int64)
        self.open_row = np.full(n_banks, -1, dtype=np.int64)
        self.tag_open_row = np.full(n_banks, -1, dtype=np.int64)
        self.queue_depth = np.zeros(n_banks, dtype=np.int64)

    # ------------------------------------------------------------------
    # Vectorized group transitions
    # ------------------------------------------------------------------
    def block_all_until(self, time: int) -> None:
        """All-bank refresh as one array pass: push every data and tag
        bank out to ``time`` (``ready = max(ready, time)`` per bank)
        and precharge every data row — exactly the per-bank
        ``block_until`` + ``close_row`` loop, vectorized."""
        np.maximum(self.ready_at, time, out=self.ready_at)
        np.maximum(self.tag_ready_at, time, out=self.tag_ready_at)
        self.open_row.fill(-1)

    # ------------------------------------------------------------------
    # Vectorized group queries
    # ------------------------------------------------------------------
    def first_ready(self, bank_ids: np.ndarray, at: int) -> int:
        """Index of the first entry whose bank is ready at ``at``.

        ``bank_ids`` is the queue's per-op bank column (queue order =
        age order, so "first" = FR-FCFS's oldest-ready). Returns −1
        when no listed bank is ready — the caller falls back to the
        oldest op, as the scalar loop does.
        """
        mask = self.ready_at[bank_ids] <= at
        index = int(mask.argmax())  # first True (argmax on bool)
        return index if bool(mask[index]) else -1

    def ready_mask(self, at: int) -> np.ndarray:
        """Boolean per-bank readiness at ``at`` (data banks)."""
        return self.ready_at <= at

    def depths(self) -> list:
        """Per-bank queued-op depths as a plain list (introspection)."""
        return self.queue_depth.tolist()


class SoaBank(Bank):
    """A :class:`Bank` whose hot state lives in shared columns.

    The columns (a ``ready_at``/``tag_ready_at`` pair plus an open-row
    column from one :class:`BankStateArrays`) are canonical: every
    read and write of the bank's ``_ready_at``/``open_row`` routes
    through the properties below, so scalar transitions and vectorized
    passes observe the same state with no mirror to keep in sync. The
    remaining bookkeeping (access counts, busy time, tRAS/tWR
    horizons) stays on the instance.
    """

    def __init__(self, index: int, ready_column: np.ndarray,
                 open_column: np.ndarray) -> None:
        self._ready_column = ready_column
        self._open_column = open_column
        super().__init__(index)

    # The settable properties below intentionally shadow plain instance
    # attributes of Bank with column-backed storage; mypy rejects the
    # attribute->property override pattern wholesale (python/mypy#4125)
    # even though every access site type-checks as int.
    @property
    def _ready_at(self) -> int:  # type: ignore[override]
        return int(self._ready_column[self.index])

    @_ready_at.setter
    def _ready_at(self, value: int) -> None:
        self._ready_column[self.index] = value

    @property
    def open_row(self) -> int:  # type: ignore[override]
        return int(self._open_column[self.index])

    @open_row.setter
    def open_row(self, value: int) -> None:
        self._open_column[self.index] = value
