"""DRAM device substrate: timing, addressing, buses, banks, channels."""

from repro.dram.address import BLOCK_BYTES, AddressMapper, DecodedAddress, DramGeometry
from repro.dram.bank import ActivationWindow, Bank
from repro.dram.bus import Bus, DataBus, Direction
from repro.dram.device import HM_PACKET_TIME, AccessGrant, DramChannel
from repro.dram.timing import (
    DramTiming,
    TagTiming,
    ddr5_timing,
    hbm3_cache_timing,
    ndc_tag_timing,
    rldram_like_tag_timing,
)

__all__ = [
    "BLOCK_BYTES",
    "AddressMapper",
    "DecodedAddress",
    "DramGeometry",
    "ActivationWindow",
    "Bank",
    "Bus",
    "DataBus",
    "Direction",
    "HM_PACKET_TIME",
    "AccessGrant",
    "DramChannel",
    "DramTiming",
    "TagTiming",
    "ddr5_timing",
    "hbm3_cache_timing",
    "ndc_tag_timing",
    "rldram_like_tag_timing",
]
