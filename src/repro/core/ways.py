"""Set-associative tag-path models (§V-F and Table I).

§V-F: "if pairs of bank groups form two ways of a set, tag comparisons
can be performed in parallel if each way has its own comparator. …
Implementations without in-DRAM tag comparators send all tags in the
set to the controller, and the controller subsequently sends a request
for the proper column to the DRAM, incurring extra latency and energy."

Two models:

* **in-DRAM** (TDRAM's choice): one comparator per way operates in
  parallel during activation; the HM bus carries one result packet and
  the matching way's column is selected internally. Zero extra latency
  over direct-mapped; energy grows only with the per-way comparators.
* **controller-side**: the DRAM streams all W tags to the controller
  (W HM packets), the controller compares and issues a follow-up
  column command — adding bus-transfer, compare, and command latency
  to every access, scaling with associativity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import HM_PACKET_TIME
from repro.dram.timing import DramTiming, TagTiming
from repro.errors import ConfigError
from repro.sim.kernel import ns

#: Controller-side tag compare latency (one controller clock).
CONTROLLER_COMPARE_TIME = ns(1)


@dataclass(frozen=True)
class WaySelectModel:
    """Per-access overhead of one way-selection implementation."""

    name: str                 #: "in_dram" or "controller"
    ways: int
    extra_hm_time: int        #: additional HM-bus occupancy (ps)
    extra_result_delay: int   #: added to the hit/miss-known instant (ps)
    extra_data_delay: int     #: added before data can stream (ps)
    extra_energy_pj: float    #: per access

    @property
    def total_latency_overhead(self) -> int:
        return self.extra_result_delay + self.extra_data_delay


def in_dram_way_select(ways: int, comparator_pj: float = 2.0) -> WaySelectModel:
    """TDRAM's parallel per-way comparators (§V-F).

    The HM packet and the column gating are unchanged from the
    direct-mapped case; only the comparator energy scales with ways.
    """
    if ways < 1:
        raise ConfigError("ways must be >= 1")
    return WaySelectModel(
        name="in_dram",
        ways=ways,
        extra_hm_time=0,
        extra_result_delay=0,
        extra_data_delay=0,
        extra_energy_pj=comparator_pj * (ways - 1),
    )


def controller_way_select(
    ways: int,
    timing: DramTiming,
    tag: TagTiming,
    hm_packet_time: int = HM_PACKET_TIME,
    hm_transfer_pj_per_packet: float = 144.0,
) -> WaySelectModel:
    """Tags shipped to the controller, compared there, column re-issued.

    Latency added per access:

    * ``(ways - 1)`` extra HM packets to stream every way's tag;
    * the controller compare;
    * a follow-up column command (one CA slot) whose column access can
      no longer overlap the activation — the data path waits for the
      round trip instead of being gated internally at ``tHM_int``.
    """
    if ways < 1:
        raise ConfigError("ways must be >= 1")
    extra_hm = (ways - 1) * hm_packet_time
    result_delay = extra_hm + CONTROLLER_COMPARE_TIME
    # The internal gating at tRCD_TAG + tHM_int is replaced by waiting
    # for the controller's follow-up command: result delay + command.
    internal_gate = tag.tRCD_TAG + tag.tHM_int
    round_trip = tag.hm_result_delay + result_delay + timing.tCMD
    data_delay = max(0, round_trip - internal_gate)
    return WaySelectModel(
        name="controller",
        ways=ways,
        extra_hm_time=extra_hm,
        extra_result_delay=result_delay,
        extra_data_delay=data_delay,
        extra_energy_pj=hm_transfer_pj_per_packet * (ways - 1),
    )


def way_select_comparison(timing: DramTiming, tag: TagTiming,
                          ways_list=(1, 2, 4, 8, 16)):
    """Rows for the §V-F comparison of the two implementations."""
    rows = []
    for ways in ways_list:
        internal = in_dram_way_select(ways)
        external = controller_way_select(ways, timing, tag)
        rows.append({
            "ways": ways,
            "in_dram_latency_ns": internal.total_latency_overhead / 1000,
            "controller_latency_ns": external.total_latency_overhead / 1000,
            "in_dram_energy_pj": internal.extra_energy_pj,
            "controller_energy_pj": external.extra_energy_pj,
        })
    return rows
