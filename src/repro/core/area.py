"""Die-area and signal-count overhead model (§III-C5 and Fig. 4A).

The paper's arithmetic, reproduced as executable functions:

* tag mats scaled by 1/2 in each dimension cost +24.3 % area in the
  banks that carry them; tags live only in the even bank group of each
  pair, and banks occupy 66 % of the HBM3 die, so the die grows by
  ``0.243 x 0.5 x 0.66 = 8.02 %``, plus ~0.22 % of routing = 8.24 %;
* each 32-bit channel adds 2 CA + 4 HM = 6 signals; over 32 channels
  that is 192 signals, a ~9.7-10 % increase over HBM3's pin budget,
  fitting in the 320 unused bump sites of the HBM3 package.
"""

from __future__ import annotations

from dataclasses import dataclass

#: HBM3 reference signal counts (Fig. 4A table).
HBM3_DQ_SIGNALS = 1024
HBM3_CA_SIGNALS = 288
HBM3_OTHER_SIGNALS = 660
HBM3_TOTAL_SIGNALS = HBM3_DQ_SIGNALS + HBM3_CA_SIGNALS + HBM3_OTHER_SIGNALS
HBM3_UNUSED_BUMP_SITES = 320


@dataclass(frozen=True)
class AreaReport:
    """Computed die-area overhead of TDRAM vs baseline HBM3."""

    tag_mat_area_overhead: float   #: extra area within tag-carrying banks
    bank_area_fraction: float      #: share of die occupied by banks
    tag_bank_fraction: float       #: share of banks that carry tags
    routing_overhead: float        #: hit/miss routing to the odd banks
    total_die_overhead: float      #: headline number (8.24 %)


@dataclass(frozen=True)
class SignalReport:
    """Computed per-stack signal overhead of TDRAM vs HBM3."""

    channels: int
    extra_per_channel: int
    extra_channel_signals: int     #: CA+HM additions across channels
    extra_global_signals: int      #: clocks/strobes/ECC/reset/IEEE1500
    total_signals: int
    overhead_fraction: float
    fits_in_unused_bumps: bool


def tag_area_overhead(scale_per_dimension: float = 0.5,
                      measured_overhead: float = 0.243) -> float:
    """Area penalty of shrinking mats by ``scale_per_dimension``.

    Son et al. [65] report 19 % for an aspect-ratio change of 4x; the
    paper uses a more pessimistic 24.3 % for 1/2-per-dimension scaling
    (from discussions with DRAM designers). The measured value wins
    when provided; the scale parameter documents the design choice.
    """
    if not 0 < scale_per_dimension <= 1:
        raise ValueError("scale_per_dimension must be in (0, 1]")
    return measured_overhead


def die_area_report(
    mat_overhead: float = 0.243,
    bank_area_fraction: float = 0.66,
    tag_bank_fraction: float = 0.5,
    routing_overhead: float = 0.0022,
) -> AreaReport:
    """§III-C5: total die impact = mat x tag-banks x bank-share + routing."""
    total = mat_overhead * tag_bank_fraction * bank_area_fraction + routing_overhead
    return AreaReport(
        tag_mat_area_overhead=mat_overhead,
        bank_area_fraction=bank_area_fraction,
        tag_bank_fraction=tag_bank_fraction,
        routing_overhead=routing_overhead,
        total_die_overhead=total,
    )


def signal_report(
    channels: int = 32,
    extra_ca_per_channel: int = 2,
    hm_bits_per_channel: int = 4,
) -> SignalReport:
    """Fig. 4A: TDRAM's pin budget relative to HBM3.

    §III-B: 6 new signals per 32-bit channel (2 CA + 4 HM), 192 across
    the 32 channels of a stack, bringing the 1972-signal HBM3 budget to
    2164 — a 9.7 % increase that fits in the package's 320 unused bump
    sites. (The 22 per-channel and 52 global support signals the paper
    mentions are part of that budget accounting, not additional pins.)
    """
    extra_per_channel = extra_ca_per_channel + hm_bits_per_channel
    new_bus_signals = extra_per_channel * channels
    total = HBM3_TOTAL_SIGNALS + new_bus_signals
    overhead = new_bus_signals / HBM3_TOTAL_SIGNALS
    return SignalReport(
        channels=channels,
        extra_per_channel=extra_per_channel,
        extra_channel_signals=new_bus_signals,
        extra_global_signals=total - HBM3_TOTAL_SIGNALS - new_bus_signals,
        total_signals=total,
        overhead_fraction=overhead,
        fits_in_unused_bumps=new_bus_signals <= HBM3_UNUSED_BUMP_SITES,
    )
