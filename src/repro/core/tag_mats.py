"""Tag-mat microarchitecture model (§III-C2, §III-C4).

TDRAM stores 3 B of tag+metadata+ECC per 64 B line in small mats at
the edge of each (even) bank. The mats are scaled by 1/2 in each
dimension relative to data mats, shortening wordlines and bitlines;
with four tag mats per data mat, the tag array cycles in
``tRC_TAG = 12 ns`` against the data banks' 42 ns and produces its
result before the data banks finish sensing.

This module derives the mat counts and storage arithmetic from a
geometry, and checks the latency-hiding inequalities the paper states:

* ``tRCD_TAG + tHM_int <= tRCD``  — the internal result reaches the
  column decoders before a column command could legally execute;
* ``tRL_core <= t_intRD + tWR_data_delay + tBURST/2`` — a dirty line
  can be pulled into the flush buffer before the new write data lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import DramGeometry
from repro.dram.timing import DramTiming, TagTiming

TAG_BYTES_PER_LINE = 3
LINE_BYTES = 64
TAG_MATS_PER_DATA_MAT = 4
MAT_SCALE_PER_DIMENSION = 0.5


@dataclass(frozen=True)
class TagMatLayout:
    """Derived tag-storage organisation for one device."""

    data_blocks: int
    tag_bytes: int
    tag_banks: int            #: tag mats sit only in even bank groups
    rows_per_tag_bank: int    #: logical rows match the data banks
    tag_mats_per_bank: int
    storage_overhead: float   #: tag bytes / data bytes


def layout_for(geometry: DramGeometry, data_mats_per_bank: int = 16) -> TagMatLayout:
    """Compute the tag-mat layout for a device geometry."""
    data_blocks = geometry.total_blocks
    tag_bytes = data_blocks * TAG_BYTES_PER_LINE
    tag_banks = (geometry.channels * geometry.banks_per_channel) // 2
    return TagMatLayout(
        data_blocks=data_blocks,
        tag_bytes=tag_bytes,
        tag_banks=max(1, tag_banks),
        rows_per_tag_bank=geometry.rows_per_bank,
        tag_mats_per_bank=data_mats_per_bank * TAG_MATS_PER_DATA_MAT,
        storage_overhead=TAG_BYTES_PER_LINE / LINE_BYTES,
    )


def internal_result_hidden(timing: DramTiming, tag: TagTiming) -> bool:
    """§III-C4: tag access + internal compare hide under ``tRCD``."""
    return tag.tRCD_TAG + tag.tHM_int <= timing.tRCD


def flush_move_safe(timing: DramTiming, tag: TagTiming,
                    t_int_rd: int = 4000, wr_data_delay: int = 4000) -> bool:
    """§III-C4: the internal dirty-line read beats the incoming write.

    ``tRL_core`` must not exceed ``t_intRD + tWR_data_delay + tBURST/2``
    (= 9 ns with the paper's defaults against ``tRL_core = 2 ns``).
    """
    bound = t_int_rd + wr_data_delay + timing.tBURST // 2
    return timing.tRL_core <= bound


def tag_check_speed_ratio(timing: DramTiming, tag: TagTiming) -> float:
    """Raw device-level tag-result speedup vs a tags-in-data read.

    A tags-in-data design learns the outcome at ``tRCD + tCL + tBURST``;
    TDRAM at ``tRCD_TAG + tHM``. (System-level Fig. 9 ratios are larger
    because queue occupancy multiplies the device advantage.)
    """
    baseline = timing.tRCD + timing.tCL + timing.tBURST
    return baseline / tag.hm_result_delay
