"""HM-bus packet model (§III-B).

The Hit-Miss bus is a 4-bit unidirectional bus per channel running at
the full data rate. A packet carries the tag-comparison result, status
bits, and — on a dirty miss — the victim's tag so the controller can
form the writeback address. 3 B of tag+metadata take 6 beats; at 4 bits
per beat x 8 Gb/s that is 0.75 ns of bus occupancy, far shorter than a
64 B DQ burst, which is why probe traffic fits in leftover slots.

For a 1 PB address space a direct-mapped 64 GiB TDRAM needs a 14-bit
tag + valid + dirty = 16 bits, leaving 8 bits of ECC within 3 B
(§III-C3); :func:`tag_bits_for` generalises that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

HM_BUS_WIDTH_BITS = 4
HM_PACKET_BYTES = 3


@dataclass(frozen=True)
class HmPacket:
    """One decoded HM-bus message."""

    hit: bool
    valid: bool
    dirty: bool
    tag: int  #: resident line's tag (meaningful on a dirty miss)

    def encode(self, tag_bits: int) -> int:
        """Pack into an integer: [tag | dirty | valid | hit]."""
        if self.tag < 0 or self.tag >= (1 << tag_bits):
            raise ConfigError(f"tag {self.tag} does not fit in {tag_bits} bits")
        value = self.tag
        value = (value << 1) | int(self.dirty)
        value = (value << 1) | int(self.valid)
        value = (value << 1) | int(self.hit)
        return value

    @classmethod
    def decode(cls, value: int, tag_bits: int) -> "HmPacket":
        hit = bool(value & 1)
        valid = bool((value >> 1) & 1)
        dirty = bool((value >> 2) & 1)
        tag = (value >> 3) & ((1 << tag_bits) - 1)
        return cls(hit=hit, valid=valid, dirty=dirty, tag=tag)


def tag_bits_for(address_space_bytes: int, cache_bytes: int) -> int:
    """Tag width for a direct-mapped cache of ``cache_bytes``.

    >>> tag_bits_for(2**50, 64 * 2**30)   # 1 PB space, 64 GiB cache
    14
    """
    if address_space_bytes <= 0 or cache_bytes <= 0:
        raise ConfigError("sizes must be positive")
    if address_space_bytes <= cache_bytes:
        return 0
    ratio = address_space_bytes // cache_bytes
    return max(0, ratio - 1).bit_length()


def packet_beats(payload_bytes: int = HM_PACKET_BYTES,
                 bus_width_bits: int = HM_BUS_WIDTH_BITS) -> int:
    """Number of HM-bus beats for a payload ("6 for 3 B metadata")."""
    if payload_bytes <= 0 or bus_width_bits <= 0:
        raise ConfigError("payload and width must be positive")
    bits = payload_bytes * 8
    return -(-bits // bus_width_bits)
