"""Early tag probing policy (§III-E).

A probe is a tag-only access issued into *otherwise unused* CA and HM
bus slots while the data-side resources are busy. The selection policy
(§III-E2) picks, among queued reads whose tag bank is currently free,
the **youngest** request — minimising average queue occupancy, because
older requests will reach their MAIN slot soon anyway.

Probing is focused on reads; writes resolve their outcome with their
own ActWr, and probing them would add tag-bank conflicts for no miss-
latency benefit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.controller import CacheOp, OpKind
from repro.dram.device import DramChannel
from repro.stats.counters import CounterSet


class ProbeEngine:
    """Chooses and accounts early tag probes for one controller."""

    def __init__(self) -> None:
        self.stats = CounterSet()

    def select(self, channel: DramChannel, read_q: List[CacheOp],
               now: int) -> Optional[CacheOp]:
        """Pick the youngest probe-eligible queued read, if any.

        Eligible: a READ demand not yet probed whose tag bank, the CA
        bus, and the HM result slot are all free right now — so the
        probe never steals a MAIN command slot — and which is not about
        to issue anyway: either its data bank is busy, or older requests
        sit ahead of it in the queue. Probing the imminent-issue head
        would only create tag-bank conflicts with its own MAIN command
        (the paper measures such conflicts below 1 %, §III-E2).
        """
        if channel.tag_timing is None:
            return None
        hold = channel.tag_timing.tRC_TAG
        oldest_for_bank = {}
        for op in read_q:  # queue order = age order
            if op.bank not in oldest_for_bank:
                oldest_for_bank[op.bank] = op
        for op in reversed(read_q):  # youngest first
            demand = op.demand
            if demand is None or not demand.is_read or demand.probed:
                continue
            bank_frees_soon = channel.banks[op.bank].ready_at < now + hold
            if bank_frees_soon and oldest_for_bank.get(op.bank) is op:
                # This demand is next in line for a bank that frees
                # inside the probe's tag-bank hold: probing it would
                # collide with its own MAIN command.
                continue
            if channel.can_probe(op.bank, now):
                return op
            self.stats.add("blocked_slots")
        return None

    def record_issue(self) -> None:
        self.stats.add("probes")

    def record_bank_conflict(self) -> None:
        """A MAIN command wanted the tag bank a probe was using."""
        self.stats.add("bank_conflicts")

    @property
    def probes(self) -> int:
        return self.stats["probes"]

    @property
    def bank_conflicts(self) -> int:
        return self.stats["bank_conflicts"]
