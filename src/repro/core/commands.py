"""TDRAM command set and timing-transaction walks (Figs. 5-7).

TDRAM adds two fused commands to HBM3 — ``ActRd`` and ``ActWr`` — that
carry row + column + tag address and drive the tag and data banks in
lockstep with auto-precharge (§III-D), plus the tag-only ``Probe``
(§III-E) and an explicit ``FlushRd`` to drain the flush buffer.

:func:`walk_read`, :func:`walk_write` and :func:`walk_probe` reproduce
the papers' timing diagrams as event lists, and are what the timing
unit tests pin down (e.g. HM precedes data by ``tRCD + tCL - tRCD_TAG
- tHM`` on a read).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.dram.timing import DramTiming, TagTiming
from repro.sim.kernel import to_ns


class Command(enum.Enum):
    """TDRAM CA-bus command encodings (beyond the HBM3 base set)."""

    ACT_RD = "ActRd"      #: fused activate + conditional column read
    ACT_WR = "ActWr"      #: fused activate + column write
    PROBE = "Probe"       #: tag-only access; result on the HM bus
    FLUSH_RD = "FlushRd"  #: explicit read-from-flush-buffer


@dataclass(frozen=True)
class TimingEvent:
    """One labelled instant in a command's timing transaction."""

    label: str
    time_ps: int

    @property
    def time_ns(self) -> float:
        return to_ns(self.time_ps)


def walk_read(timing: DramTiming, tag: TagTiming, hit: bool) -> List[TimingEvent]:
    """Fig. 5: the timing transaction of an ``ActRd``.

    Returns the labelled instants relative to command issue at t=0.
    On a miss to a clean line the data burst does not occur.
    """
    events = [
        TimingEvent("ActRd issued (CA bus)", 0),
        TimingEvent("tag mats sensed", tag.tRCD_TAG),
        TimingEvent("HM result at data-bank column decoders",
                    tag.tRCD_TAG + tag.tHM_int),
        TimingEvent("HM result at controller", tag.tRCD_TAG + tag.tHM),
        TimingEvent("data banks sensed (tRCD)", timing.tRCD),
    ]
    if hit:
        start = timing.tRCD + timing.tCL
        events.append(TimingEvent("data burst starts (DQ)", start))
        events.append(TimingEvent("data burst ends", start + timing.tBURST))
    else:
        events.append(TimingEvent("column decode gated off (no DQ data)",
                                  timing.tRCD))
    return sorted(events, key=lambda e: e.time_ps)


def walk_write(timing: DramTiming, tag: TagTiming, miss_dirty: bool) -> List[TimingEvent]:
    """Fig. 6: the timing transaction of an ``ActWr``.

    On a write-miss-dirty an internal read (``tRL_core``) moves the
    conflicting dirty line into the flush buffer before the internal
    write command commits the new data.
    """
    events = [
        TimingEvent("ActWr issued (CA bus)", 0),
        TimingEvent("tag mats sensed", tag.tRCD_TAG),
        TimingEvent("HM result at data banks", tag.tRCD_TAG + tag.tHM_int),
        TimingEvent("HM result at controller", tag.tRCD_TAG + tag.tHM),
        TimingEvent("write data on DQ", timing.tRCD_WR + timing.tCWL),
    ]
    internal_write = timing.tRCD_WR + timing.tCWL + timing.tBURST
    if miss_dirty:
        internal_read = tag.tRCD_TAG + tag.tHM_int
        events.append(TimingEvent("internal read of dirty line (to flush buffer)",
                                  internal_read + timing.tRL_core))
        internal_write = max(
            internal_write,
            internal_read + timing.tRL_core + timing.tRTW_int,
        )
    events.append(TimingEvent("internal write commits new data", internal_write))
    return sorted(events, key=lambda e: e.time_ps)


def walk_probe(tag: TagTiming) -> List[TimingEvent]:
    """Fig. 7: a tag-only probe in an unused CA/HM slot."""
    return [
        TimingEvent("Probe issued (CA bus)", 0),
        TimingEvent("tag mats sensed", tag.tRCD_TAG),
        TimingEvent("HM result at controller", tag.tRCD_TAG + tag.tHM),
        TimingEvent("tag bank precharged", tag.tRC_TAG),
    ]


def hm_precedes_data_by(timing: DramTiming, tag: TagTiming) -> int:
    """How far the HM result precedes the first read-data beat (ps).

    Positive by design: Table III gives ``tRCD_TAG + tHM = 15 ns``
    against ``tRCD + tCL = 30 ns``, enabling the conditional response.
    """
    return (timing.tRCD + timing.tCL) - (tag.tRCD_TAG + tag.tHM)
