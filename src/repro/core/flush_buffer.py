"""TDRAM's on-die flush buffer (§III-D2).

On a write-miss-dirty, the conflicting dirty line is read into this
buffer *inside the DRAM* (a small internal read-to-write turnaround)
instead of being streamed to the controller, which would force a full
DQ-bus write->read->write turnaround in the middle of a write burst.

Entries leave the buffer opportunistically:

* ``read_miss_clean`` — a read miss to a clean line leaves its DQ slot
  unused; one entry rides out in it;
* ``refresh`` — the DQ bus idles while banks refresh;
* ``forced`` — the buffer filled up and the controller issued explicit
  read-from-flush-buffer commands (counted as a stall).

The controller mirrors the buffer's addresses (the paper's "global
knowledge"), so demands to buffered lines are serviced coherently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.stats.counters import CounterSet, OccupancyStat


class FlushBuffer:
    """Bounded FIFO of dirty victim blocks awaiting writeback."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("flush buffer capacity must be positive")
        self.capacity = capacity
        self._entries: List[int] = []
        self.events = CounterSet()
        self.occupancy = OccupancyStat("flush_buffer")
        self.stalls = 0
        #: block -> flipped-bit count from a fault campaign (repro.ras);
        #: entries are SECDED-protected like any SRAM queue, so one bit
        #: corrects on the way out and two or more drop the writeback.
        self._faults: Dict[int, int] = {}
        #: RAS counter sink (a CounterSet), attached by RasManager
        self.ras_counters: Optional[CounterSet] = None
        #: observability sink called with the occupancy after every
        #: mutation (attached by ObsSession when tracing is on)
        self.obs_sink = None

    def _notify_obs(self) -> None:
        if self.obs_sink is not None:
            self.obs_sink(len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def contains(self, block: int) -> bool:
        return block in self._entries

    def add(self, block: int) -> bool:
        """Insert a dirty victim; returns False when full (stall).

        The caller must drain before retrying on a False return; the
        paper sizes the buffer (16) so this "virtually never" happens
        (§V-E counts 13 stalls in the worst workload at size 8).
        """
        self.occupancy.sample(len(self._entries))
        if self.is_full:
            self.stalls += 1
            self.events.add("stall_full")
            return False
        self._entries.append(block)
        self._faults.pop(block, None)
        self.events.add("insert")
        self._notify_obs()
        return True

    def pop(self) -> Optional[int]:
        """Remove the oldest *intact* entry (None when empty).

        Entries carrying an injected double-bit fault are detected on
        readout and dropped — the writeback is lost (counted as RAS
        data loss) and the next entry is tried. A single-bit fault is
        corrected in flight and the entry leaves normally.
        """
        while self._entries:
            block = self._entries.pop(0)
            self._notify_obs()
            bits = self._faults.pop(block, 0)
            if bits == 0:
                return block
            if bits == 1:
                self.events.add("ecc_corrected")
                if self.ras_counters is not None:
                    self.ras_counters.add("flush_corrected")
                return block
            # >= 2 flipped bits: detected, uncorrectable — the dirty
            # data never reaches main memory.
            self.events.add("ecc_dropped")
            if self.ras_counters is not None:
                self.ras_counters.add("flush_uncorrectable")
                self.ras_counters.add("flush_data_loss")
        return None

    def remove(self, block: int) -> bool:
        """Drop a superseded entry (a newer write to the same block)."""
        if block in self._entries:
            self._entries.remove(block)
            self._faults.pop(block, None)
            self.events.add("superseded")
            self._notify_obs()
            return True
        return False

    def inject_fault(self, index: int, bits: int) -> None:
        """Flip ``bits`` bits in the entry at ``index`` (fault campaign)."""
        block = self._entries[index]
        self._faults[block] = self._faults.get(block, 0) + bits

    def note_unload(self, reason: str) -> None:
        """Account an entry leaving over DQ (`read_miss_clean`,
        `refresh`, or `forced`)."""
        self.events.add(f"unload_{reason}")
