"""TDRAM device internals — the paper's primary contribution.

Tag mats, HM-bus packets, the fused command set, the flush buffer,
early-tag-probing policy, and the area/pin overhead models.
"""

from repro.core.area import AreaReport, SignalReport, die_area_report, signal_report
from repro.core.commands import (
    Command,
    TimingEvent,
    hm_precedes_data_by,
    walk_probe,
    walk_read,
    walk_write,
)
from repro.core.ecc import EccOutcome, EccResult, SecdedCode, tag_ecc_code
from repro.core.flush_buffer import FlushBuffer
from repro.core.hm_bus import HmPacket, packet_beats, tag_bits_for
from repro.core.probe import ProbeEngine
from repro.core.ways import (
    WaySelectModel,
    controller_way_select,
    in_dram_way_select,
    way_select_comparison,
)
from repro.core.tag_mats import (
    TagMatLayout,
    flush_move_safe,
    internal_result_hidden,
    layout_for,
    tag_check_speed_ratio,
)

__all__ = [
    "AreaReport",
    "SignalReport",
    "die_area_report",
    "signal_report",
    "Command",
    "TimingEvent",
    "hm_precedes_data_by",
    "walk_probe",
    "walk_read",
    "walk_write",
    "EccOutcome",
    "EccResult",
    "SecdedCode",
    "tag_ecc_code",
    "FlushBuffer",
    "HmPacket",
    "packet_beats",
    "tag_bits_for",
    "ProbeEngine",
    "WaySelectModel",
    "controller_way_select",
    "in_dram_way_select",
    "way_select_comparison",
    "TagMatLayout",
    "flush_move_safe",
    "internal_result_hidden",
    "layout_for",
    "tag_check_speed_ratio",
]
