"""On-die ECC for TDRAM's tag/metadata words (§III-C3).

The paper: "TDRAM has separate ECCs for tag and data. ECCs for tags are
analyzed and corrected if needed by on-DRAM-die circuitry … For a 1 PB
address space, a direct-mapped TDRAM has 14-bit tag + Valid + Dirty =
16 bits which leaves 8 bits ECC to cover the 16 bits."

This module implements a SECDED (single-error-correct, double-error-
detect) Hamming code for arbitrary word widths. A 16-bit word needs
5 parity bits + 1 overall-parity bit = 6; the paper's 8-bit budget
leaves two spare bits (or room for the stronger symbol-based
Reed-Solomon code the paper suggests). The code here is the functional
model the tag-mat datapath would implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError


class EccOutcome(enum.Enum):
    """Result of decoding a protected word."""

    CLEAN = "clean"                  #: no error detected
    CORRECTED = "corrected"          #: single bit error fixed
    DETECTED = "detected"            #: uncorrectable (double) error


@dataclass(frozen=True)
class EccResult:
    """Decoded word plus what the checker observed."""

    data: int
    outcome: EccOutcome


def _parity_bit_count(data_bits: int) -> int:
    """Number of Hamming parity bits for ``data_bits`` of payload."""
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class SecdedCode:
    """SECDED Hamming code over a fixed-width data word.

    Codeword layout: Hamming positions 1..n with parity bits at powers
    of two, plus an overall parity bit appended at the top.

    >>> code = SecdedCode(16)
    >>> code.parity_bits
    6
    >>> word = code.encode(0xBEEF & 0xFFFF)
    >>> code.decode(word).outcome
    <EccOutcome.CLEAN: 'clean'>
    """

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ConfigError("data_bits must be positive")
        self.data_bits = data_bits
        self.hamming_bits = _parity_bit_count(data_bits)
        #: including the extra overall-parity (SECDED) bit
        self.parity_bits = self.hamming_bits + 1
        self.codeword_bits = data_bits + self.parity_bits
        # Codeword positions (1-based) that hold data: everything that
        # is not a power of two (those hold Hamming parity).
        self._data_positions = [
            pos for pos in range(1, data_bits + self.hamming_bits + 1)
            if not _is_power_of_two(pos)
        ]

    # ------------------------------------------------------------------
    def encode(self, data: int) -> int:
        """Encode ``data`` into a SECDED codeword."""
        if data < 0 or data >= (1 << self.data_bits):
            raise ConfigError(
                f"data {data:#x} does not fit in {self.data_bits} bits"
            )
        n = self.data_bits + self.hamming_bits
        bits = [0] * (n + 1)  # 1-based
        for i, pos in enumerate(self._data_positions):
            bits[pos] = (data >> i) & 1
        for p in range(self.hamming_bits):
            parity_pos = 1 << p
            parity = 0
            for pos in range(1, n + 1):
                if pos & parity_pos and pos != parity_pos:
                    parity ^= bits[pos]
            bits[parity_pos] = parity
        codeword = 0
        for pos in range(1, n + 1):
            codeword |= bits[pos] << (pos - 1)
        overall = bin(codeword).count("1") & 1
        return codeword | (overall << n)

    # ------------------------------------------------------------------
    def decode(self, codeword: int) -> EccResult:
        """Decode, correcting a single-bit error if present."""
        n = self.data_bits + self.hamming_bits
        if codeword < 0 or codeword >= (1 << self.codeword_bits):
            raise ConfigError("codeword out of range")
        overall_stored = (codeword >> n) & 1
        body = codeword & ((1 << n) - 1)
        syndrome = 0
        for p in range(self.hamming_bits):
            parity_pos = 1 << p
            parity = 0
            for pos in range(1, n + 1):
                if pos & parity_pos:
                    parity ^= (body >> (pos - 1)) & 1
            if parity:
                syndrome |= parity_pos
        overall_computed = (bin(body).count("1") & 1) ^ overall_stored
        if syndrome == 0 and overall_computed == 0:
            return EccResult(self._extract(body), EccOutcome.CLEAN)
        if overall_computed == 1:
            # Odd number of flipped bits: a single error, correctable.
            if syndrome == 0:
                # The overall parity bit itself flipped.
                return EccResult(self._extract(body), EccOutcome.CORRECTED)
            if syndrome <= n:
                body ^= 1 << (syndrome - 1)
                return EccResult(self._extract(body), EccOutcome.CORRECTED)
            return EccResult(self._extract(body), EccOutcome.DETECTED)
        # Even parity but non-zero syndrome: double error, uncorrectable.
        return EccResult(self._extract(body), EccOutcome.DETECTED)

    def _extract(self, body: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            data |= ((body >> (pos - 1)) & 1) << i
        return data

    # ------------------------------------------------------------------
    def inject(self, codeword: int, bit_positions: Tuple[int, ...]) -> int:
        """Flip the given 0-based codeword bits (fault injection)."""
        for bit in bit_positions:
            if not 0 <= bit < self.codeword_bits:
                raise ConfigError(f"bit {bit} outside codeword")
            codeword ^= 1 << bit
        return codeword


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def tag_ecc_code() -> SecdedCode:
    """The paper's tag word: 14-bit tag + valid + dirty = 16 bits.

    SECDED needs 6 check bits; the 8-bit budget of §III-C3 covers it
    with margin.
    """
    return SecdedCode(16)


def tag_ecc_fits_budget(budget_bits: int = 8) -> bool:
    """Whether SECDED over the 16-bit tag word fits the stated budget."""
    return tag_ecc_code().parity_bits <= budget_bits
