"""CXL-like backing store — a flat link latency plus bandwidth credits.

The ``cxl_like`` backend models memory behind a serialized expansion
link rather than a parallel DRAM bus: every 64 B transfer occupies the
link for ``64 B / cxl_bandwidth_gbps`` (one transfer at a time — the
serialization the link protocol imposes), then pays a flat
``cxl_latency_ns`` of one-way link + device + controller latency. A
fixed pool of ``cxl_credits`` request credits bounds how many accesses
may be in flight at once (the latency-overlap bound of a credited
protocol); arrivals that find no free credit wait in a FIFO and are
counted as ``credit_stalls``. Each granted transfer counts one
``link_grant``.

There is no bank or row state: the device side is abstracted into the
flat latency, which is the standard first-order CXL memory model.
Knobs and counters are documented in ``docs/backends.md``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.config.system import SystemConfig
from repro.energy.power_model import EnergyMeter
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator, ns
from repro.stats.counters import LatencyStat


class _CxlOp:
    """One queued or in-flight link transaction."""

    __slots__ = ("block", "is_write", "arrive", "callback")

    def __init__(self, block: int, is_write: bool, arrive: int,
                 callback: Optional[Callable[[int], None]]) -> None:
        self.block = block
        self.is_write = is_write
        self.arrive = arrive
        self.callback = callback


class CxlBackend(MemoryBackend):
    """Serialized-link backend with a bounded credit pool."""

    backend_name = "cxl_like"

    def __init__(self, sim: Simulator, config: SystemConfig,
                 meter: Optional[EnergyMeter] = None) -> None:
        super().__init__(sim, meter)
        self._latency_ps = ns(config.cxl_latency_ns)
        #: link occupancy of one 64 B transfer: 512 bits / (gbps * 1e9) s
        self._occupancy_ps = max(1, int(round(512_000.0
                                              / config.cxl_bandwidth_gbps)))
        self._credits = config.cxl_credits
        self._queue: Deque[_CxlOp] = deque()
        self._link_free = 0
        self._inflight = 0
        self._inflight_writes = 0
        self._queued_writes = 0
        self._queue_delay = LatencyStat("cxl_read_queue")
        self._latency = LatencyStat("cxl_read_latency")

    # ------------------------------------------------------------------
    def read(self, block_addr: int,
             callback: Optional[Callable[[int], None]],
             order: Optional[int] = None) -> None:
        """Fetch one block over the link; ``order`` is ignored (FIFO)."""
        self.reads_issued += 1
        self._enqueue(_CxlOp(block_addr, False, self.sim.now, callback))

    def write(self, block_addr: int) -> None:
        """Posted write: occupies the link and a credit like a read."""
        self.writes_issued += 1
        self._queued_writes += 1
        self._enqueue(_CxlOp(block_addr, True, self.sim.now, None))

    def _enqueue(self, op: _CxlOp) -> None:
        if self._credits == 0:
            self.counters.add("credit_stalls")
        self._queue.append(op)
        self._sample_occupancy()
        self._pump()

    def _pump(self) -> None:
        """Grant queued transactions while credits and the link allow."""
        now = self.sim.now
        while self._queue and self._credits > 0:
            op = self._queue.popleft()
            self._credits -= 1
            self._inflight += 1
            start = max(now, self._link_free)
            self._link_free = start + self._occupancy_ps
            self.counters.add("link_grants")
            finish = start + self._occupancy_ps + self._latency_ps
            if op.is_write:
                self._queued_writes -= 1
                self._inflight_writes += 1
            else:
                self._queue_delay.record(start - op.arrive)
                self._latency.record(finish - op.arrive)
            if self.meter is not None:
                self.meter.record("cmd")
                self.meter.add_dq_bytes(64)
            self.sim.at(finish, self._finish, op, finish)

    def _finish(self, op: _CxlOp, finish: int) -> None:
        """Transaction completed: return the credit, fire the callback."""
        self._credits += 1
        self._inflight -= 1
        if op.is_write:
            self._inflight_writes -= 1
        elif op.callback is not None:
            op.callback(finish)
        self._pump()

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Transactions waiting for a credit plus those in flight."""
        return len(self._queue) + self._inflight

    def pending_writes(self) -> int:
        """Writes waiting or in flight (back-pressure signal)."""
        return self._queued_writes + self._inflight_writes

    def write_queue_len(self) -> int:
        """Writes still waiting for a link grant."""
        return self._queued_writes

    @property
    def mean_read_latency_ns(self) -> float:
        """Mean read latency (arrival to data), nanoseconds."""
        return self._latency.mean_ns

    @property
    def read_queue_delay_ns(self) -> float:
        """Mean read wait for a credit + link slot, nanoseconds."""
        return self._queue_delay.mean_ns

    def reset_measurement(self) -> None:
        """Drop warm-up statistics at the measurement boundary."""
        super().reset_measurement()
        self._queue_delay.reset()
        self._latency.reset()
