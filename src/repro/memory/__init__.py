"""Backing-store (main memory) models."""

from repro.memory.main_memory import MainMemory

__all__ = ["MainMemory"]
