"""Backing-store (main memory) models: the pluggable backend tier.

``MainMemory`` is the default DDR5 model; ``build_backend`` constructs
whichever backend ``SystemConfig.memory_backend`` selects ("ddr5",
"ddr5_reference", "pcm_like", "cxl_like"). See ``docs/backends.md``.
"""

from repro.memory.backend import (
    BACKEND_COUNTERS,
    MEMORY_BACKENDS,
    MemoryBackend,
    build_backend,
)
from repro.memory.main_memory import MainMemory

__all__ = [
    "BACKEND_COUNTERS",
    "MEMORY_BACKENDS",
    "MainMemory",
    "MemoryBackend",
    "build_backend",
]
