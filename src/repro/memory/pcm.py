"""PCM-like backing store — slow, asymmetric, endurance-limited media.

The ``pcm_like`` backend models the hybrid-memory setting the eDRAM-
over-PCM controllers target: array reads are slow (``pcm_read_ns``)
and array writes are several times slower still (``pcm_write_ns``),
so the controller front-ends the medium with

* a **bounded MSHR file** for reads: concurrent reads to the same
  block coalesce into one array access (``mshr_coalesced``), and reads
  arriving with the file full wait in an overflow queue
  (``mshr_stalls``) until an entry frees;
* a **deferred write queue** drained by a periodic tick event
  (``pcm_drain_tick_ns``): writes are posted into the queue
  (``wq_inserts``; arrivals past ``pcm_write_queue_entries`` are
  counted as ``wq_stalls``) and only issued to a bank the tick finds
  idle — reads therefore always win bank conflicts, which is the
  read-priority policy write-asymmetric media need;
* **store-to-load forwarding**: a read that hits a queued write is
  served from the queue SRAM (``wq_read_forwards``) without touching
  the array;
* per-bank **wear counters**: every array write increments the bank's
  lifetime wear (``wear_writes`` for the measured region;
  ``wear_total``/``wear_max`` lifetime, exported by
  :meth:`PcmBackend.wear_summary`).

Banking is flat: ``mm_channels * mm_banks_per_channel`` independent
banks, block-interleaved. There is no row-buffer model — PCM reads are
nondestructive and the devices this imitates close the row — so a
bank is simply busy for the access time. Knobs and counters are
documented in ``docs/backends.md``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.config.system import SystemConfig
from repro.energy.power_model import EnergyMeter
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator, ns
from repro.stats.counters import LatencyStat

#: Service time of a read forwarded from the deferred write queue
#: (an SRAM lookup, not an array access).
_FORWARD_NS = 10.0


class _PcmRead:
    """One in-flight (or overflow-queued) read with its coalesced waiters."""

    __slots__ = ("block", "bank", "arrive", "callbacks")

    def __init__(self, block: int, bank: int, arrive: int,
                 callback: Optional[Callable[[int], None]]) -> None:
        self.block = block
        self.bank = bank
        self.arrive = arrive
        self.callbacks = [callback]


class PcmBackend(MemoryBackend):
    """Asymmetric-timing backend with bounded MSHRs and deferred writes."""

    backend_name = "pcm_like"

    def __init__(self, sim: Simulator, config: SystemConfig,
                 meter: Optional[EnergyMeter] = None) -> None:
        super().__init__(sim, meter)
        self._read_ps = ns(config.pcm_read_ns)
        self._write_ps = ns(config.pcm_write_ns)
        self._forward_ps = ns(_FORWARD_NS)
        self._tick_ps = ns(config.pcm_drain_tick_ns)
        self._mshr_entries = config.pcm_mshr_entries
        self._wq_entries = config.pcm_write_queue_entries
        self._banks = config.mm_channels * config.mm_banks_per_channel
        #: next instant each bank's array is free
        self._bank_free = [0] * self._banks
        #: lifetime array writes per bank (endurance; never reset)
        self.wear = [0] * self._banks
        #: block -> in-flight read (the MSHR file)
        self._mshrs: Dict[int, _PcmRead] = {}
        #: reads waiting for a free MSHR, FIFO
        self._overflow: Deque[_PcmRead] = deque()
        self._overflow_index: Dict[int, _PcmRead] = {}
        #: deferred writes, FIFO of (block, bank)
        self._wq: Deque[Tuple[int, int]] = deque()
        #: block -> queued-write count (store-to-load forwarding index)
        self._wq_blocks: Dict[int, int] = {}
        self._drain_pending = False
        self._queue_delay = LatencyStat("pcm_read_queue")
        self._latency = LatencyStat("pcm_read_latency")

    # ------------------------------------------------------------------
    def _bank_of(self, block_addr: int) -> int:
        return block_addr % self._banks

    def read(self, block_addr: int,
             callback: Optional[Callable[[int], None]],
             order: Optional[int] = None) -> None:
        """Fetch one block: coalesce, forward, or access the array.

        ``order`` is ignored — the MSHR file admits in arrival order.
        """
        now = self.sim.now
        self.reads_issued += 1
        entry = self._mshrs.get(block_addr)
        if entry is not None:
            entry.callbacks.append(callback)
            self.counters.add("mshr_coalesced")
            return
        waiting = self._overflow_index.get(block_addr)
        if waiting is not None:
            waiting.callbacks.append(callback)
            self.counters.add("mshr_coalesced")
            return
        if self._wq_blocks.get(block_addr, 0) > 0:
            # Store-to-load forward from the deferred write queue: the
            # freshest copy lives in queue SRAM, not the array.
            self.counters.add("wq_read_forwards")
            finish = now + self._forward_ps
            self._queue_delay.record(0)
            self._latency.record(finish - now)
            if callback is not None:
                self.sim.at(finish, callback, finish)
            return
        entry = _PcmRead(block_addr, self._bank_of(block_addr), now, callback)
        if len(self._mshrs) >= self._mshr_entries:
            self.counters.add("mshr_stalls")
            self._overflow.append(entry)
            self._overflow_index[block_addr] = entry
        else:
            self._admit(entry)
        self._sample_occupancy()

    def _admit(self, entry: _PcmRead) -> None:
        """Allocate an MSHR and reserve the bank for the array read."""
        self.counters.add("mshr_inserts")
        self._mshrs[entry.block] = entry
        start = max(self.sim.now, self._bank_free[entry.bank])
        finish = start + self._read_ps
        self._bank_free[entry.bank] = finish
        self._queue_delay.record(start - entry.arrive)
        self._latency.record(finish - entry.arrive)
        if self.meter is not None:
            self.meter.record("cmd")
            self.meter.record("col_op")
            self.meter.add_dq_bytes(64)
        self.sim.at(finish, self._finish_read, entry.block, finish)

    def _finish_read(self, block_addr: int, finish: int) -> None:
        """Data returned: complete all coalesced waiters, refill MSHRs."""
        entry = self._mshrs.pop(block_addr)
        for callback in entry.callbacks:
            if callback is not None:
                callback(finish)
        while self._overflow and len(self._mshrs) < self._mshr_entries:
            waiting = self._overflow.popleft()
            del self._overflow_index[waiting.block]
            self._admit(waiting)

    def write(self, block_addr: int) -> None:
        """Post a write into the deferred queue (drained by the tick)."""
        self.writes_issued += 1
        self.counters.add("wq_inserts")
        if len(self._wq) >= self._wq_entries:
            self.counters.add("wq_stalls")
        self._wq.append((block_addr, self._bank_of(block_addr)))
        self._wq_blocks[block_addr] = self._wq_blocks.get(block_addr, 0) + 1
        self._schedule_drain()
        self._sample_occupancy()

    def _schedule_drain(self) -> None:
        if not self._drain_pending:
            self._drain_pending = True
            self.sim.schedule(self._tick_ps, self._drain_tick)

    def _drain_tick(self) -> None:
        """Issue queued writes to banks the tick finds idle.

        A bank busy with (or reserved by) a read is skipped, so reads
        always pre-empt deferred writes; at most one write per bank
        issues per tick.
        """
        self._drain_pending = False
        now = self.sim.now
        issued_banks = set()
        remaining: Deque[Tuple[int, int]] = deque()
        while self._wq:
            block, bank = self._wq.popleft()
            if bank in issued_banks or self._bank_free[bank] > now:
                remaining.append((block, bank))
                continue
            issued_banks.add(bank)
            self._bank_free[bank] = now + self._write_ps
            self.wear[bank] += 1
            self.counters.add("wq_drains")
            self.counters.add("wear_writes")
            count = self._wq_blocks[block] - 1
            if count:
                self._wq_blocks[block] = count
            else:
                del self._wq_blocks[block]
            if self.meter is not None:
                self.meter.record("cmd")
                self.meter.record("col_op")
                self.meter.add_dq_bytes(64)
        self._wq = remaining
        if self._wq:
            self._schedule_drain()

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """In-flight MSHRs + overflow reads + deferred writes."""
        return len(self._mshrs) + len(self._overflow) + len(self._wq)

    def pending_writes(self) -> int:
        """Depth of the deferred write queue (back-pressure signal)."""
        return len(self._wq)

    def mshr_occupancy(self) -> int:
        """Allocated MSHR entries (in-flight array reads)."""
        return len(self._mshrs)

    @property
    def mean_read_latency_ns(self) -> float:
        """Mean read latency (arrival to data), nanoseconds."""
        return self._latency.mean_ns

    @property
    def read_queue_delay_ns(self) -> float:
        """Mean read queueing delay (arrival to array issue), ns."""
        return self._queue_delay.mean_ns

    def wear_summary(self) -> Dict[str, int]:
        """Lifetime endurance counters across all banks."""
        return {"wear_total": sum(self.wear), "wear_max": max(self.wear)}

    def reset_measurement(self) -> None:
        """Drop warm-up statistics; lifetime wear survives."""
        super().reset_measurement()
        self._queue_delay.reset()
        self._latency.reset()
