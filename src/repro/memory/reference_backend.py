"""Frozen pre-seam DDR5 model — the ``ddr5_reference`` backend.

A verbatim copy of the DDR5 scheduler logic as it stood before the
backend seam was introduced, kept **only** so the bit-identity tests
can A/B the seamed default against it: for every design,
``memory_backend="ddr5"`` and ``memory_backend="ddr5_reference"`` must
produce ``dataclasses.asdict``-identical ``RunResult``s. Mirrors the
``cache_organization="reference"`` pattern of the design zoo
(:mod:`repro.cache.reference_tagstore`).

Do not extend or "fix" this module: behavioural changes belong in
:mod:`repro.memory.main_memory`, and a divergence between the two is
exactly what the A/B tests exist to catch.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dram.address import AddressMapper, DramGeometry
from repro.dram.device import DramChannel
from repro.dram.timing import DramTiming
from repro.energy.power_model import EnergyMeter
from repro.memory.backend import MemoryBackend
from repro.sim.kernel import Simulator
from repro.stats.counters import LatencyStat


class _RefPendingRead:
    __slots__ = ("block", "bank", "row", "arrive", "order", "callback")

    def __init__(self, block: int, bank: int, row: int, arrive: int,
                 order: int, callback: Optional[Callable[[int], None]]) -> None:
        self.block = block
        self.bank = bank
        self.row = row
        self.arrive = arrive
        self.order = order
        self.callback = callback


class _RefPendingWrite:
    __slots__ = ("block", "bank", "row", "arrive")

    def __init__(self, block: int, bank: int, row: int, arrive: int) -> None:
        self.block = block
        self.bank = bank
        self.row = row
        self.arrive = arrive


class _RefChannelScheduler:
    """Frozen copy of the pre-seam FR-FCFS + write-drain scheduler."""

    HIGH_WATERMARK = 32
    LOW_WATERMARK = 8

    def __init__(self, sim: Simulator, channel: DramChannel,
                 meter: Optional[EnergyMeter]) -> None:
        self.sim = sim
        self.channel = channel
        self.meter = meter
        self.reads: List[_RefPendingRead] = []
        self.writes: List[_RefPendingWrite] = []
        self.draining = False
        self._wake_at: Optional[int] = None
        self.read_queue_delay = LatencyStat("mm_read_queue")
        self.read_latency = LatencyStat("mm_read_latency")

    def add_read(self, request: _RefPendingRead) -> None:
        """Enqueue a read and try to issue immediately."""
        self.reads.append(request)
        self._kick()

    def add_write(self, request: _RefPendingWrite) -> None:
        """Enqueue a posted write (drained by watermark policy)."""
        self.writes.append(request)
        self._kick()

    def _select(self, queue, at: int):
        banks = self.channel.banks
        ready_hit = None
        ready = None
        for request in queue:
            if banks[request.bank].is_ready(at):
                key = getattr(request, "order", request.arrive)
                if self.channel.is_row_hit(request.bank, request.row):
                    if ready_hit is None or key < getattr(
                            ready_hit, "order", ready_hit.arrive):
                        ready_hit = request
                elif ready is None or key < getattr(ready, "order",
                                                    ready.arrive):
                    ready = request
        if ready_hit is not None:
            return ready_hit
        if ready is not None:
            return ready
        if not queue:
            return None
        return min(queue, key=lambda r: getattr(r, "order", r.arrive))

    def _update_drain_mode(self) -> None:
        if len(self.writes) >= self.HIGH_WATERMARK:
            self.draining = True
        elif len(self.writes) <= self.LOW_WATERMARK or not self.writes:
            if self.draining and (self.reads or not self.writes):
                self.draining = False

    def _kick(self) -> None:
        now = self.sim.now
        if self._wake_at is not None and self._wake_at <= now:
            self._wake_at = None
        if self._wake_at is not None:
            return
        self._try_issue()

    def _schedule_wake(self, at: int) -> None:
        at = max(at, self.sim.now + 1)
        self._wake_at = at
        self.sim.at(at, self._on_wake)

    def _on_wake(self) -> None:
        self._wake_at = None
        self._try_issue()

    def _try_issue(self) -> None:
        now = self.sim.now
        self._update_drain_mode()
        do_write = self.writes and (self.draining or not self.reads)
        queue = self.writes if do_write else self.reads
        request = self._select(queue, now)
        if request is None:
            return
        is_write = do_write
        earliest = self.channel.earliest_issue_open(
            request.bank, now, request.row, is_write)
        if earliest > now:
            self._schedule_wake(earliest)
            return
        queue.remove(request)
        row_hit = self.channel.is_row_hit(request.bank, request.row)
        grant = self.channel.issue_access_open(
            request.bank, now, request.row, is_write)
        if self.meter is not None:
            self.meter.record("cmd")
            if not row_hit:
                self.meter.record("act_data")
            self.meter.record("col_op")
            self.meter.add_dq_bytes(64)
        if not is_write:
            read = request  # type: _RefPendingRead
            self.read_queue_delay.record(now - read.arrive)
            assert grant.data_end is not None
            self.read_latency.record(grant.data_end - read.arrive)
            if read.callback is not None:
                finish = grant.data_end
                callback = read.callback
                self.sim.at(finish, callback, finish)
        if self.reads or self.writes:
            self._schedule_wake(self.channel.ca.free_at)


class ReferenceMainMemory(MemoryBackend):
    """Frozen pre-seam DDR5 backing store (bit-identity A/B only)."""

    backend_name = "ddr5_reference"

    def __init__(
        self,
        sim: Simulator,
        timing: DramTiming,
        geometry: DramGeometry,
        meter: Optional[EnergyMeter] = None,
        name: str = "mm",
    ) -> None:
        super().__init__(sim, meter)
        self.mapper = AddressMapper(geometry, scheme="RoRaBaChCo")
        self.channels = [
            DramChannel(sim, timing, geometry.banks_per_channel, f"{name}{i}",
                        page_policy="open")
            for i in range(geometry.channels)
        ]
        self._schedulers = [
            _RefChannelScheduler(sim, channel, meter)
            for channel in self.channels
        ]

    def read(self, block_addr: int,
             callback: Optional[Callable[[int], None]],
             order: Optional[int] = None) -> None:
        """Fetch one 64 B block; ``callback(finish_time)`` fires on data."""
        decoded = self.mapper.decode(block_addr)
        scheduler = self._schedulers[decoded.channel]
        scheduler.add_read(
            _RefPendingRead(block_addr, decoded.bank, decoded.row,
                            self.sim.now,
                            self.sim.now if order is None else order,
                            callback)
        )
        self.reads_issued += 1
        self._sample_occupancy()

    def write(self, block_addr: int) -> None:
        """Posted 64 B write (cache writeback or write-through demand)."""
        decoded = self.mapper.decode(block_addr)
        scheduler = self._schedulers[decoded.channel]
        scheduler.add_write(
            _RefPendingWrite(block_addr, decoded.bank, decoded.row,
                             self.sim.now))
        self.writes_issued += 1
        self._sample_occupancy()

    @property
    def mean_read_latency_ns(self) -> float:
        """Mean read latency (arrival to data) across channels, ns."""
        stats = [s.read_latency for s in self._schedulers if s.read_latency.count]
        total = sum(s.total_ps for s in stats)
        count = sum(s.count for s in stats)
        return total / count / 1000.0 if count else 0.0

    @property
    def read_queue_delay_ns(self) -> float:
        """Mean read queueing delay (arrival to issue) across channels, ns."""
        stats = [s.read_queue_delay for s in self._schedulers]
        total = sum(s.total_ps for s in stats)
        count = sum(s.count for s in stats)
        return total / count / 1000.0 if count else 0.0

    def pending(self) -> int:
        """Requests waiting in any channel's read or write queue."""
        return sum(len(s.reads) + len(s.writes) for s in self._schedulers)

    def pending_writes(self) -> int:
        """Writes waiting in any channel's write queue (back-pressure)."""
        return sum(len(s.writes) for s in self._schedulers)

    def reset_measurement(self) -> None:
        """Drop warm-up latency statistics at the measurement boundary."""
        super().reset_measurement()
        for scheduler in self._schedulers:
            scheduler.read_queue_delay.reset()
            scheduler.read_latency.reset()
