"""DDR5 backing-store model (Table III: 128 GiB, 2 channels, FR-FCFS).

The backing store serves read-miss fetches and dirty writebacks from the
DRAM cache (or all demands in the no-cache baseline). Each channel runs
an independent **open-page** FR-FCFS scheduler (row hits first) with a
write-drain watermark policy — the page policy gem5 defaults to for
DDR5, which gives streaming writebacks realistic row-buffer locality
(the DRAM cache itself is close-page, per Table III).

The paper bounds its main-memory buffers at 64 entries; here the queues
are unbounded and occupancy is tracked instead — the DRAM-cache
controller's own bounded buffers (where the paper locates the
contention effects, §II-B) provide the system back-pressure.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dram.address import AddressMapper, DramGeometry
from repro.dram.device import DramChannel
from repro.dram.timing import DramTiming
from repro.energy.power_model import EnergyMeter
from repro.sim.kernel import Simulator
from repro.stats.counters import LatencyStat, OccupancyStat


class _PendingRead:
    __slots__ = ("block", "bank", "row", "arrive", "order", "callback")

    def __init__(self, block: int, bank: int, row: int, arrive: int,
                 order: int, callback: Optional[Callable[[int], None]]) -> None:
        self.block = block
        self.bank = bank
        self.row = row
        self.arrive = arrive
        #: demand age (sequence number): FR-FCFS breaks ties by age so a
        #: fetch launched early (e.g. by TDRAM's probing) never overtakes
        #: an older demand's fetch at the backing store
        self.order = order
        self.callback = callback


class _PendingWrite:
    __slots__ = ("block", "bank", "row", "arrive")

    def __init__(self, block: int, bank: int, row: int, arrive: int) -> None:
        self.block = block
        self.bank = bank
        self.row = row
        self.arrive = arrive


class _ChannelScheduler:
    """FR-FCFS with write-drain hysteresis for one DDR5 channel."""

    HIGH_WATERMARK = 32
    LOW_WATERMARK = 8

    def __init__(self, sim: Simulator, channel: DramChannel,
                 meter: Optional[EnergyMeter]) -> None:
        self.sim = sim
        self.channel = channel
        self.meter = meter
        self.reads: List[_PendingRead] = []
        self.writes: List[_PendingWrite] = []
        self.draining = False
        self._wake_at: Optional[int] = None
        self.read_queue_delay = LatencyStat("mm_read_queue")
        self.read_latency = LatencyStat("mm_read_latency")

    def add_read(self, request: _PendingRead) -> None:
        self.reads.append(request)
        self._kick()

    def add_write(self, request: _PendingWrite) -> None:
        self.writes.append(request)
        self._kick()

    def _select(self, queue, at: int):
        """FR-FCFS: row hits first, then bank-ready, then the oldest.

        Age is the demand sequence number where provided (reads), so
        requests issued early out of demand order (probing) do not
        overtake older demands.
        """
        banks = self.channel.banks
        ready_hit = None
        ready = None
        for request in queue:
            if banks[request.bank].is_ready(at):
                key = getattr(request, "order", request.arrive)
                if self.channel.is_row_hit(request.bank, request.row):
                    if ready_hit is None or key < getattr(
                            ready_hit, "order", ready_hit.arrive):
                        ready_hit = request
                elif ready is None or key < getattr(ready, "order",
                                                    ready.arrive):
                    ready = request
        if ready_hit is not None:
            return ready_hit
        if ready is not None:
            return ready
        if not queue:
            return None
        return min(queue, key=lambda r: getattr(r, "order", r.arrive))

    def _update_drain_mode(self) -> None:
        if len(self.writes) >= self.HIGH_WATERMARK:
            self.draining = True
        elif len(self.writes) <= self.LOW_WATERMARK or not self.writes:
            if self.draining and (self.reads or not self.writes):
                self.draining = False

    def _kick(self) -> None:
        now = self.sim.now
        if self._wake_at is not None and self._wake_at <= now:
            self._wake_at = None
        if self._wake_at is not None:
            return
        self._try_issue()

    def _schedule_wake(self, at: int) -> None:
        at = max(at, self.sim.now + 1)
        self._wake_at = at
        self.sim.at(at, self._on_wake)

    def _on_wake(self) -> None:
        self._wake_at = None
        self._try_issue()

    def _try_issue(self) -> None:
        now = self.sim.now
        self._update_drain_mode()
        do_write = self.writes and (self.draining or not self.reads)
        queue = self.writes if do_write else self.reads
        request = self._select(queue, now)
        if request is None:
            return
        is_write = do_write
        earliest = self.channel.earliest_issue_open(
            request.bank, now, request.row, is_write)
        if earliest > now:
            self._schedule_wake(earliest)
            return
        queue.remove(request)
        row_hit = self.channel.is_row_hit(request.bank, request.row)
        grant = self.channel.issue_access_open(
            request.bank, now, request.row, is_write)
        if self.meter is not None:
            self.meter.record("cmd")
            if not row_hit:
                self.meter.record("act_data")
            self.meter.record("col_op")
            self.meter.add_dq_bytes(64)
        if not is_write:
            read = request  # type: _PendingRead
            self.read_queue_delay.record(now - read.arrive)
            assert grant.data_end is not None
            self.read_latency.record(grant.data_end - read.arrive)
            if read.callback is not None:
                finish = grant.data_end
                callback = read.callback
                self.sim.at(finish, callback, finish)
        # More work may be issuable immediately after this command slot.
        if self.reads or self.writes:
            self._schedule_wake(self.channel.ca.free_at)


class MainMemory:
    """The DDR5 backing store: address-interleaved independent channels."""

    def __init__(
        self,
        sim: Simulator,
        timing: DramTiming,
        geometry: DramGeometry,
        meter: Optional[EnergyMeter] = None,
        name: str = "mm",
    ) -> None:
        self.sim = sim
        self.mapper = AddressMapper(geometry, scheme="RoRaBaChCo")
        self.channels = [
            DramChannel(sim, timing, geometry.banks_per_channel, f"{name}{i}",
                        page_policy="open")
            for i in range(geometry.channels)
        ]
        self.meter = meter
        self._schedulers = [
            _ChannelScheduler(sim, channel, meter) for channel in self.channels
        ]
        self.reads_issued = 0
        self.writes_issued = 0
        self.queue_occupancy = OccupancyStat("mm_queues")

    def read(self, block_addr: int,
             callback: Optional[Callable[[int], None]],
             order: Optional[int] = None) -> None:
        """Fetch one 64 B block; ``callback(finish_time)`` fires on data.

        ``order`` carries the originating demand's age for age-aware
        scheduling; it defaults to the arrival time.
        """
        decoded = self.mapper.decode(block_addr)
        scheduler = self._schedulers[decoded.channel]
        scheduler.add_read(
            _PendingRead(block_addr, decoded.bank, decoded.row,
                         self.sim.now,
                         self.sim.now if order is None else order,
                         callback)
        )
        self.reads_issued += 1
        self._sample_occupancy()

    def write(self, block_addr: int) -> None:
        """Posted 64 B write (cache writeback or write-through demand)."""
        decoded = self.mapper.decode(block_addr)
        scheduler = self._schedulers[decoded.channel]
        scheduler.add_write(
            _PendingWrite(block_addr, decoded.bank, decoded.row, self.sim.now))
        self.writes_issued += 1
        self._sample_occupancy()

    def _sample_occupancy(self) -> None:
        level = sum(len(s.reads) + len(s.writes) for s in self._schedulers)
        self.queue_occupancy.sample(level)

    @property
    def mean_read_latency_ns(self) -> float:
        stats = [s.read_latency for s in self._schedulers if s.read_latency.count]
        total = sum(s.total_ps for s in stats)
        count = sum(s.count for s in stats)
        return total / count / 1000.0 if count else 0.0

    def pending(self) -> int:
        return sum(len(s.reads) + len(s.writes) for s in self._schedulers)
