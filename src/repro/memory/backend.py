"""Pluggable backing-store backend tier behind the DRAM cache.

The paper evaluates TDRAM over a DDR5 backing store only; the backend
tier generalizes that single choice into a seam so the same cache
designs can be rerun over hybrid-memory media. A backend is anything
the cache controller can ``read``/``write`` 64 B blocks against; the
contract is :class:`MemoryBackend` and the implementations are:

* ``ddr5`` — the default open-page FR-FCFS DDR5 model
  (:mod:`repro.memory.main_memory`), bit-identical to the pre-seam
  code;
* ``ddr5_reference`` — a frozen copy of the pre-seam DDR5 model
  (:mod:`repro.memory.reference_backend`) kept only for bit-identity
  A/B runs, mirroring the ``cache_organization="reference"`` pattern;
* ``pcm_like`` — asymmetric read/write timing, bounded MSHRs with read
  coalescing, a deferred write queue with tick-driven drain, and
  per-bank endurance/wear counters (:mod:`repro.memory.pcm`);
* ``cxl_like`` — a flat serialized link latency plus bandwidth credits
  (:mod:`repro.memory.cxl`).

Select one with ``SystemConfig(memory_backend=...)``; the knob (and
every per-backend timing knob) is a ``SystemConfig`` field, so it
participates in the campaign result-cache key automatically. The
contract, knob tables, and counters are documented in
``docs/backends.md``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import ConfigError
from repro.stats.counters import CounterSet, OccupancyStat

if TYPE_CHECKING:
    from repro.config.system import SystemConfig
    from repro.energy.power_model import EnergyMeter
    from repro.sim.kernel import Simulator

#: Valid ``SystemConfig.memory_backend`` values (checked at config
#: construction; :func:`build_backend` dispatches on the same names).
MEMORY_BACKENDS = ("ddr5", "ddr5_reference", "pcm_like", "cxl_like")

#: Every counter/snapshot key a backend may expose through
#: :meth:`MemoryBackend.snapshot` (-> ``RunResult.backend`` and the
#: ``mm.backend.*`` rows of ``dump_stats``). The ``_COUNTERS`` suffix
#: makes this the SIM006 declaration registry for these names, and
#: ``tools/check.py --only metrics`` requires a ``docs/metrics.md`` row
#: for each one.
BACKEND_COUNTERS = (
    "mshr_inserts",      # pcm: new MSHR allocated for a read
    "mshr_coalesced",    # pcm: read merged into an in-flight MSHR
    "mshr_stalls",       # pcm: read deferred because the MSHR file was full
    "wq_inserts",        # pcm: write accepted into the deferred write queue
    "wq_stalls",         # pcm: write arrived with the queue at capacity
    "wq_drains",         # pcm: deferred write issued to a bank
    "wq_read_forwards",  # pcm: read served from the deferred write queue
    "wear_writes",       # pcm: bank array writes (measured region)
    "wear_total",        # pcm: lifetime array writes, all banks (snapshot)
    "wear_max",          # pcm: lifetime array writes, hottest bank (snapshot)
    "link_grants",       # cxl: 64 B transfers granted on the serialized link
    "credit_stalls",     # cxl: arrivals that found no free request credit
)


class MemoryBackend(abc.ABC):
    """Contract every backing-store model implements.

    The cache controller (and the no-cache shim) only ever call
    :meth:`read`, :meth:`write`, and the introspection methods below —
    nothing else — so a backend is free to model its medium however it
    likes as long as reads invoke ``callback(finish_time)`` through the
    simulator and writes are posted. All times are integer picoseconds
    on the shared :class:`~repro.sim.kernel.Simulator`.
    """

    #: registry name (``SystemConfig.memory_backend`` value)
    backend_name = "abstract"

    def __init__(self, sim: "Simulator",
                 meter: Optional["EnergyMeter"] = None) -> None:
        self.sim = sim
        self.meter = meter
        #: backend event counters (names drawn from BACKEND_COUNTERS);
        #: reset at the warm-up boundary by :meth:`reset_measurement`
        self.counters = CounterSet()
        #: read()/write() calls over the whole run (never reset)
        self.reads_issued = 0
        self.writes_issued = 0
        #: queue-depth samples taken at each arrival
        self.queue_occupancy = OccupancyStat("mm_queues")

    # ------------------------------------------------------------------
    # The data path
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def read(self, block_addr: int,
             callback: Optional[Callable[[int], None]],
             order: Optional[int] = None) -> None:
        """Fetch one 64 B block; ``callback(finish_time)`` fires on data.

        ``order`` carries the originating demand's age (sequence
        number) for age-aware scheduling; backends without an age-aware
        scheduler may ignore it.
        """

    @abc.abstractmethod
    def write(self, block_addr: int) -> None:
        """Posted 64 B write (cache writeback or write-through demand)."""

    # ------------------------------------------------------------------
    # Introspection (runner / dump / epochs / no-cache shim)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pending(self) -> int:
        """Requests queued or in flight anywhere in the backend."""

    @abc.abstractmethod
    def pending_writes(self) -> int:
        """Writes not yet issued to the medium (back-pressure signal)."""

    @property
    @abc.abstractmethod
    def mean_read_latency_ns(self) -> float:
        """Mean read latency (arrival to data), nanoseconds."""

    @property
    @abc.abstractmethod
    def read_queue_delay_ns(self) -> float:
        """Mean read queueing delay (arrival to issue), nanoseconds."""

    def reset_measurement(self) -> None:
        """Drop warm-up statistics at the measurement boundary.

        Called by the experiment runner in the same kernel callback
        that resets the cache metrics. Lifetime state (wear, issue
        totals) survives; subclasses extend this to reset their
        latency accumulators.
        """
        self.counters.reset()

    def mshr_occupancy(self) -> int:
        """In-flight coalescing entries (0 for backends without MSHRs)."""
        return 0

    def write_queue_len(self) -> int:
        """Depth of the deferred/pending write queue."""
        return self.pending_writes()

    def wear_summary(self) -> Dict[str, int]:
        """Lifetime endurance counters (empty for wear-free media)."""
        return {}

    def snapshot(self) -> Dict[str, int]:
        """Counter dict exported as ``RunResult.backend``.

        Combines the measured-region event counters with the lifetime
        wear summary; empty for the DDR5 backends, which keeps the
        seam's ``dataclasses.asdict`` bit-identity A/B trivially clean.
        """
        snap = self.counters.as_dict()
        snap.update(self.wear_summary())
        return snap

    def _sample_occupancy(self) -> None:
        """Record the current queue depth (call on each arrival)."""
        self.queue_occupancy.sample(self.pending())


def build_backend(sim: "Simulator", config: "SystemConfig",
                  meter: Optional["EnergyMeter"] = None) -> MemoryBackend:
    """Construct the backend ``config.memory_backend`` selects.

    The experiment runner calls this instead of instantiating
    :class:`~repro.memory.main_memory.MainMemory` directly; imports are
    lazy so the registry module stays import-cycle-free (the config
    package validates against :data:`MEMORY_BACKENDS` at construction).
    """
    name = config.memory_backend
    if name == "ddr5":
        from repro.memory.main_memory import MainMemory

        return MainMemory(sim, config.mm_timing, config.mm_geometry(),
                          meter=meter)
    if name == "ddr5_reference":
        from repro.memory.reference_backend import ReferenceMainMemory

        return ReferenceMainMemory(sim, config.mm_timing,
                                   config.mm_geometry(), meter=meter)
    if name == "pcm_like":
        from repro.memory.pcm import PcmBackend

        return PcmBackend(sim, config, meter=meter)
    if name == "cxl_like":
        from repro.memory.cxl import CxlBackend

        return CxlBackend(sim, config, meter=meter)
    raise ConfigError(
        f"unknown memory_backend {name!r}; choose from {MEMORY_BACKENDS}")
