"""Request-lifecycle tracing with Chrome/Perfetto ``trace_event`` export.

A :class:`TraceSession` subscribes to a controller's channels (as a
:class:`~repro.dram.monitor.ChannelObserver`) and to the lifecycle
hooks the controller calls when observability is on. It records two
kinds of material:

* **request spans** — one span per demand from controller arrival to
  retirement, with child spans for the queue wait, the tag resolution
  (probe or MAIN command to HM result), the DQ data window, and the
  main-memory fetch of a miss;
* **resource slices** — CA command slots, DQ burst windows, and HM
  result packets per channel, flush-buffer drains, and a flush-buffer
  occupancy counter track.

Export is the Chrome ``trace_event`` JSON object format (a dict with a
``traceEvents`` list), which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly. Timestamps are microseconds
(floats), converted from the kernel's integer picoseconds. The track
layout and span taxonomy are specified in ``docs/tracing.md``.

Memory is bounded: at most ``limit`` records are retained; further
ones increment :attr:`TraceSession.dropped` (mirroring
:class:`~repro.dram.monitor.CommandLog`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.device import HM_PACKET_TIME
from repro.dram.monitor import ChannelObserver, CommandRecord

#: Synthetic "process" ids structuring the trace: one for request
#: lanes, one for the flush buffer, then one per cache channel.
PID_REQUESTS = 1
PID_FLUSH = 2
PID_CHANNEL_BASE = 10

#: Thread ids within a channel process (one per bus track).
TID_CA = 0
TID_DQ = 1
TID_HM = 2

#: Request child-span names, in canonical order.
CHILD_SPANS = ("queue", "tag", "mm_fetch", "dq")


def _us(picoseconds: int) -> float:
    """Picoseconds -> trace-event microseconds."""
    return picoseconds / 1e6


@dataclass
class _RequestTrace:
    """Mutable per-demand record, finalized into span events at export."""

    seq: int
    op: str
    block: int
    core: int
    arrive: int
    issue: int = -1
    probe_issue: int = -1
    tag_result: int = -1
    outcome: str = ""
    dq: Optional[Tuple[int, int]] = None
    mm: List[int] = field(default_factory=lambda: [-1, -1])
    end: int = -1


class _ChannelTap(ChannelObserver):
    """Adapter forwarding one channel's command stream to the session."""

    def __init__(self, session: "TraceSession", index: int, channel) -> None:
        self.session = session
        self.index = index
        self.channel = channel

    def on_command(self, record: CommandRecord) -> None:
        """Forward a committed command to the owning session."""
        self.session.on_channel_command(self.index, self.channel, record)


class TraceSession:
    """Collects lifecycle spans and bus slices; exports Chrome JSON."""

    def __init__(self, controller, limit: int = 200_000) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.limit = limit
        self.dropped = 0
        #: committed bus-slice / instant / counter events (chrome dicts)
        self._events: List[dict] = []
        #: in-flight demands by sequence number
        self._live: Dict[int, _RequestTrace] = {}
        #: retired demands awaiting export
        self._done: List[_RequestTrace] = []
        self.unfinished = 0
        for index, channel in enumerate(controller.channels):
            channel.observers.append(_ChannelTap(self, index, channel))

    # ------------------------------------------------------------------
    # Lifecycle hooks (called via ObsSession from the controller)
    # ------------------------------------------------------------------
    def on_enqueue(self, demand) -> None:
        """A demand entered the controller (span start)."""
        if len(self._live) + len(self._done) >= self.limit:
            self.dropped += 1
            return
        self._live[demand.seq] = _RequestTrace(
            seq=demand.seq,
            op=demand.op.value,
            block=demand.block_addr,
            core=demand.core_id,
            arrive=self.sim.now,
        )

    def on_issue(self, demand, time: int) -> None:
        """The demand's first DRAM command (or probe) issued."""
        trace = self._live.get(demand.seq)
        if trace is not None and trace.issue < 0:
            trace.issue = time

    def on_probe(self, demand, issue: int, hm_at: int) -> None:
        """An early tag probe was fired for the demand (§III-E)."""
        trace = self._live.get(demand.seq)
        if trace is not None:
            trace.probe_issue = issue
            if trace.issue < 0:
                trace.issue = issue

    def on_tag_result(self, demand, time: int, outcome) -> None:
        """The hit/miss outcome reached the controller (HM result)."""
        trace = self._live.get(demand.seq)
        if trace is None:
            return
        trace.tag_result = time
        trace.outcome = outcome.value
        if trace.op == "write":
            # Writes are posted: their lifecycle ends when the tag
            # outcome resolves with their own ActWr/write operation.
            self._finish(trace, time)

    def on_dq_window(self, demand, start: int, end: int) -> None:
        """The demand's data moved on the cache DQ bus in [start, end)."""
        trace = self._live.get(demand.seq)
        if trace is not None:
            trace.dq = (start, end)

    def on_fetch_start(self, demand, time: int) -> None:
        """A main-memory fetch for the demand's block began (miss)."""
        trace = self._live.get(demand.seq)
        if trace is not None:
            trace.mm[0] = time

    def on_fetch_return(self, demand, time: int) -> None:
        """The main-memory fetch returned (fill data available)."""
        trace = self._live.get(demand.seq)
        if trace is not None:
            trace.mm[1] = time

    def on_read_complete(self, demand, time: int) -> None:
        """The read response was delivered to the front end (span end)."""
        trace = self._live.get(demand.seq)
        if trace is not None:
            self._finish(trace, time)

    def _finish(self, trace: _RequestTrace, end: int) -> None:
        trace.end = end
        self._live.pop(trace.seq, None)
        self._done.append(trace)

    # ------------------------------------------------------------------
    # Resource hooks
    # ------------------------------------------------------------------
    def on_channel_command(self, index: int, channel,
                           record: CommandRecord) -> None:
        """One committed channel command -> CA and/or DQ slices."""
        pid = PID_CHANNEL_BASE + index
        timing = channel.timing
        if record.command == "refresh":
            self._emit_slice(pid, TID_CA, "refresh", record.time_ps,
                             record.time_ps + timing.tRFC,
                             {"bank": record.bank})
        elif record.command not in ("raw_read", "raw_write"):
            self._emit_slice(pid, TID_CA, record.command, record.time_ps,
                             record.time_ps + timing.tCMD,
                             {"bank": record.bank})
        if record.data_start is not None and record.data_end is not None:
            self._emit_slice(pid, TID_DQ, record.command,
                             record.data_start, record.data_end,
                             {"bank": record.bank})

    def on_hm_result(self, channel_idx: int, hm_at: int) -> None:
        """An HM result packet occupied the HM bus ending at ``hm_at``."""
        self._emit_slice(PID_CHANNEL_BASE + channel_idx, TID_HM, "hm",
                         hm_at - HM_PACKET_TIME, hm_at)

    def on_flush_drain(self, reason: str, block: int, start: int,
                       end: int) -> None:
        """A flush-buffer entry streamed out over DQ (§III-D2)."""
        self._emit_slice(PID_FLUSH, 1, f"drain:{reason}", start, end,
                         {"block": hex(block)})

    def on_flush_level(self, level: int) -> None:
        """The flush-buffer occupancy changed (counter track)."""
        self._emit({
            "name": "flush_occupancy", "ph": "C", "ts": _us(self.sim.now),
            "pid": PID_FLUSH, "tid": 0, "args": {"entries": level},
        })

    # ------------------------------------------------------------------
    # Event assembly
    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        if len(self._events) >= self.limit:
            self.dropped += 1
            return
        self._events.append(event)

    def _emit_slice(self, pid: int, tid: int, name: str, start: int,
                    end: int, args: Optional[dict] = None) -> None:
        event = {
            "name": name, "ph": "X", "ts": _us(start),
            "dur": _us(max(0, end - start)), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._emit(event)

    @staticmethod
    def _metadata(pid: int, tid: Optional[int], key: str, value: str) -> dict:
        event = {
            "name": key, "ph": "M", "pid": pid,
            "args": {key.split("_", 1)[-1]: value},
        }
        if tid is not None:
            event["tid"] = tid
        return event

    def _request_events(self) -> List[dict]:
        """Lay retired requests out on non-overlapping lanes and emit
        one parent span plus contained child spans per request."""
        events: List[dict] = []
        lanes: List[int] = []
        for trace in sorted(self._done, key=lambda t: (t.arrive, t.seq)):
            start, end = trace.arrive, max(trace.end, trace.arrive)
            for tid, free_at in enumerate(lanes):
                if free_at <= start:
                    break
            else:
                tid = len(lanes)
                lanes.append(0)
            lanes[tid] = end
            args = {
                "block": hex(trace.block), "seq": trace.seq,
                "core": trace.core, "outcome": trace.outcome,
                "probed": trace.probe_issue >= 0,
            }
            name = f"{trace.op} {trace.outcome}" if trace.outcome else trace.op
            events.append({
                "name": name, "ph": "X", "ts": _us(start),
                "dur": _us(end - start), "pid": PID_REQUESTS, "tid": tid,
                "args": args,
            })
            for child, span in self._child_spans(trace):
                lo = min(max(span[0], start), end)
                hi = min(max(span[1], lo), end)
                events.append({
                    "name": child, "ph": "X", "ts": _us(lo),
                    "dur": _us(hi - lo), "pid": PID_REQUESTS, "tid": tid,
                })
        return events

    @staticmethod
    def _child_spans(trace: _RequestTrace):
        """Yield (name, (start, end)) child spans in canonical order."""
        if trace.issue >= 0:
            yield "queue", (trace.arrive, trace.issue)
            if trace.tag_result >= trace.issue:
                yield "tag", (trace.issue, trace.tag_result)
        if trace.mm[0] >= 0:
            yield "mm_fetch", (trace.mm[0],
                               trace.mm[1] if trace.mm[1] >= 0 else trace.mm[0])
        if trace.dq is not None:
            yield "dq", trace.dq

    def to_chrome(self) -> dict:
        """The full trace as a Chrome ``trace_event`` JSON object."""
        self.unfinished = len(self._live)
        events: List[dict] = [
            self._metadata(PID_REQUESTS, None, "process_name", "requests"),
            self._metadata(PID_FLUSH, None, "process_name", "flush buffer"),
            self._metadata(PID_FLUSH, 0, "thread_name", "occupancy"),
            self._metadata(PID_FLUSH, 1, "thread_name", "drains"),
        ]
        for index in range(len(self.controller.channels)):
            pid = PID_CHANNEL_BASE + index
            events.append(self._metadata(pid, None, "process_name",
                                         f"channel {index}"))
            events.append(self._metadata(pid, TID_CA, "thread_name", "CA bus"))
            events.append(self._metadata(pid, TID_DQ, "thread_name", "DQ bus"))
            events.append(self._metadata(pid, TID_HM, "thread_name", "HM bus"))
        body = self._request_events() + self._events
        body.sort(key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))
        events.extend(body)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "design": self.controller.design_name,
                "requests": len(self._done),
                "unfinished": self.unfinished,
                "dropped": self.dropped,
            },
        }

    def write(self, path) -> int:
        """Serialise :meth:`to_chrome` to ``path``; returns the event
        count written."""
        payload = self.to_chrome()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])
