"""Epoch metric streams: a columnar time series of one run.

An :class:`EpochRecorder` wakes every ``epoch_ps`` of *simulated* time
and appends one row to a column-oriented series (plain ``dict`` of
lists — ``pandas.DataFrame(result.epochs)`` away from analysis). Two
kinds of columns exist:

* **delta columns** — per-epoch increments of cumulative counters
  (demands, hits, bytes moved, writebacks, RAS events). Their sums
  reconcile exactly with the run's final aggregates, which a tier-1
  test asserts;
* **level columns** — instantaneous occupancies sampled at the epoch
  boundary (read/write queues, MSHRs, flush buffer).

The experiment runner resets the recorder at the warm-up boundary (in
the same kernel callback that resets the metrics) and takes one final
partial-epoch sample before harvesting, so the series covers exactly
the measured region. The schema is documented in ``docs/tracing.md``.
"""

from __future__ import annotations

from typing import Dict, List

#: Cumulative counters recorded as per-epoch deltas.
DELTA_COLUMNS = (
    "demands", "hits", "misses", "reads", "writes",
    "useful_bytes", "total_bytes", "bytes_read", "bytes_written",
    "writebacks", "ras_corrected", "ras_uncorrectable",
    "backend_coalesced", "backend_wq_stalls", "backend_wear",
)

#: Instantaneous occupancies sampled at each epoch boundary.
LEVEL_COLUMNS = ("read_q", "write_q", "mshr", "flush_occupancy",
                 "backend_mshr", "backend_wq")

#: Every column of the series, in export order.
COLUMNS = ("t_us",) + DELTA_COLUMNS + LEVEL_COLUMNS


class EpochRecorder:
    """Samples controller state every ``epoch_ps`` into columnar lists."""

    def __init__(self, controller, epoch_ps: int) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.epoch_ps = max(1, epoch_ps)
        self.series: Dict[str, List[float]] = {name: [] for name in COLUMNS}
        self._last = self._snapshot()
        self._finalized = False
        self.sim.schedule(self.epoch_ps, self._tick)

    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, int]:
        """Current values of every cumulative (delta) counter."""
        controller = self.controller
        outcomes = controller.metrics.outcomes
        ledger = controller.metrics.ledger
        snap = {
            "demands": outcomes["demands"],
            "hits": outcomes["hits"],
            "misses": outcomes["misses"],
            "reads": outcomes["reads"],
            "writes": outcomes["writes"],
            "useful_bytes": ledger.useful_bytes,
            "total_bytes": ledger.total_bytes,
            "bytes_read": sum(ch.bytes_read for ch in controller.channels),
            "bytes_written": sum(ch.bytes_written for ch in controller.channels),
            "writebacks": controller.writebacks,
            "ras_corrected": 0,
            "ras_uncorrectable": 0,
        }
        ras = getattr(controller, "ras", None)
        if ras is not None:
            snap["ras_corrected"] = ras.counters.corrected
            snap["ras_uncorrectable"] = ras.counters.uncorrectable
        backend = controller.main_memory.counters
        snap["backend_coalesced"] = backend["mshr_coalesced"]
        snap["backend_wq_stalls"] = backend["wq_stalls"]
        snap["backend_wear"] = backend["wear_writes"]
        return snap

    def _levels(self) -> Dict[str, int]:
        """Current values of every occupancy (level) column."""
        controller = self.controller
        flush = getattr(controller, "flush", None)
        backend = controller.main_memory
        return {
            "read_q": sum(len(s.read_q) for s in controller.schedulers),
            "write_q": sum(len(s.write_q) for s in controller.schedulers),
            "mshr": len(controller._mshrs),
            "flush_occupancy": len(flush) if flush is not None else 0,
            "backend_mshr": backend.mshr_occupancy(),
            "backend_wq": backend.write_queue_len(),
        }

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        """Periodic sampling callback (self-rescheduling)."""
        if self._finalized:
            return
        self._sample()
        self.sim.schedule(self.epoch_ps, self._tick)

    def _sample(self) -> None:
        current = self._snapshot()
        self.series["t_us"].append(self.sim.now / 1e6)
        for name in DELTA_COLUMNS:
            self.series[name].append(current[name] - self._last[name])
        levels = self._levels()
        for name in LEVEL_COLUMNS:
            self.series[name].append(levels[name])
        self._last = current

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop recorded epochs and re-baseline the cumulative counters.

        Called by the runner at the warm-up boundary, in the same
        kernel callback that resets the metrics, so delta sums over the
        remaining epochs equal the final measured-region aggregates.
        """
        for column in self.series.values():
            column.clear()
        self._last = self._snapshot()

    def finalize(self) -> None:
        """Take one last (partial-epoch) sample and stop ticking.

        Without this, counts accumulated after the final whole epoch
        would be missing and the delta sums would undershoot the final
        aggregates.
        """
        if not self._finalized:
            self._sample()
            self._finalized = True

    @property
    def epochs(self) -> int:
        """Number of recorded epoch rows."""
        return len(self.series["t_us"])
