"""Kernel profiling hooks: events/sec and per-handler dispatch cost.

The :class:`~repro.sim.kernel.Simulator` carries a ``profiler``
attribute (``None`` by default). When set, the dispatch loop wraps
every callback in a host wall-clock measurement and reports it here;
when unset, the loop takes the unsinstrumented branch — no timestamp
reads, no dictionary traffic, zero extra kernel events.

Numbers are **host wall time**, so they are useful for finding hot
handlers and comparing simulator throughput, but they are *not*
deterministic and never feed back into simulated behaviour.
"""

from __future__ import annotations

from typing import Dict, List


def handler_name(callback) -> str:
    """A stable, human-readable name for a scheduled callback.

    Bound methods and functions report their qualified name (e.g.
    ``ChannelScheduler._on_wake``); lambdas report the enclosing
    qualified name (``TdramCache._commit_act_rd.<locals>.<lambda>``);
    ``functools.partial`` unwraps to its target; anything else falls
    back to its type name.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    func = getattr(callback, "func", None)
    if func is not None:
        return handler_name(func)
    return type(callback).__name__


class KernelProfiler:
    """Accumulates dispatch counts and wall time per handler type.

    >>> profiler = KernelProfiler()
    >>> profiler.record(print, 1500)
    >>> profiler.events, profiler.by_handler["print"][0]
    (1, 1)
    """

    def __init__(self) -> None:
        #: total callbacks dispatched while attached
        self.events = 0
        #: total host wall time spent inside callbacks (ns)
        self.wall_ns = 0
        #: handler name -> [dispatch count, wall ns]
        self.by_handler: Dict[str, List[int]] = {}

    def record(self, callback, wall_ns: int) -> None:
        """Account one dispatched callback (called by the kernel loop)."""
        self.events += 1
        self.wall_ns += wall_ns
        name = handler_name(callback)
        entry = self.by_handler.get(name)
        if entry is None:
            self.by_handler[name] = [1, wall_ns]
        else:
            entry[0] += 1
            entry[1] += wall_ns

    def summary(self) -> Dict[str, object]:
        """A JSON-able digest: totals, events/sec, and the per-handler
        table sorted by wall time (descending)."""
        wall_s = self.wall_ns / 1e9
        handlers = [
            {
                "handler": name,
                "count": count,
                "wall_ms": round(ns / 1e6, 3),
            }
            for name, (count, ns) in sorted(
                self.by_handler.items(), key=lambda item: -item[1][1]
            )
        ]
        return {
            "events": self.events,
            "wall_s": round(wall_s, 6),
            "events_per_sec": round(self.events / wall_s, 1) if wall_s > 0 else 0.0,
            "handlers": handlers,
        }

    def render(self) -> str:
        """The summary as an aligned text table (CLI output)."""
        return render_profile(self.summary())


def render_profile(digest: Dict[str, object]) -> str:
    """Render a :meth:`KernelProfiler.summary` digest (e.g. the
    ``RunResult.profile`` field) as an aligned text table."""
    lines = [
        f"kernel: {digest['events']} events in {digest['wall_s']:.3f} s "
        f"({digest['events_per_sec']:.0f} events/s)",
        f"{'handler':<56} {'count':>10} {'wall ms':>10}",
    ]
    for row in digest["handlers"]:
        lines.append(
            f"{row['handler']:<56} {row['count']:>10} {row['wall_ms']:>10.2f}"
        )
    return "\n".join(lines)
