"""Campaign-level progress series: the harness's own epoch stream.

The :class:`~repro.obs.epochs.EpochRecorder` samples *simulated* time
inside one run; :class:`CampaignSeries` is its host-side sibling — a
columnar time series of campaign execution sampled at every progress
event (task served from cache, simulated, replayed from the journal,
retried, failed, quarantined). ``pandas.DataFrame(outcome.series)``
turns it straight into a retry/backoff/quarantine timeline for a
sweep, which is how a long campaign's health is monitored without
scraping stderr.

Timestamps are supplied by the caller (the campaign engine owns the
host clock) so this module stays free of wall-clock reads, like the
rest of ``repro.obs``.
"""

from __future__ import annotations

from typing import Dict, List

#: Monotonic cumulative columns sampled at every campaign event, plus
#: the leading wall-clock timestamp column. Schema is documented in
#: ``docs/resilience.md``.
CAMPAIGN_COLUMNS = (
    "t_s", "done", "simulated", "cached", "replayed", "retried",
    "failed", "quarantined", "cache_corrupt", "store_errors",
)


class CampaignSeries:
    """Columnar record of campaign progress over host wall-clock time.

    One row is appended per progress event; every column except
    ``t_s`` is a cumulative count, so deltas between rows give
    per-interval rates and the final row reconciles with the
    campaign's summary counters.
    """

    def __init__(self) -> None:
        self.series: Dict[str, List[float]] = {
            name: [] for name in CAMPAIGN_COLUMNS
        }

    def sample(self, t_s: float, **counters: int) -> None:
        """Append one row; missing counters repeat their last value.

        ``t_s`` is seconds since campaign start, supplied by the
        engine (host-side orchestration owns the clock).
        """
        self.series["t_s"].append(t_s)
        for name in CAMPAIGN_COLUMNS[1:]:
            column = self.series[name]
            if name in counters:
                column.append(counters[name])
            else:
                column.append(column[-1] if column else 0)

    @property
    def rows(self) -> int:
        """Number of recorded samples."""
        return len(self.series["t_s"])

    def as_dict(self) -> Dict[str, List[float]]:
        """The raw columnar series (JSON-ready; safe to mutate-copy)."""
        return {name: list(column) for name, column in self.series.items()}
