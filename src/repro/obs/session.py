"""The per-run observability facade a controller owns.

``DramCacheController`` instantiates one :class:`ObsSession` when
``config.obs.any_enabled`` and calls its hooks at lifecycle points
(guarded by a single ``if self.obs is not None`` on the hot path, the
same pattern as the RAS subsystem). The session fans each hook out to
whichever instruments are actually on, so a trace-only run pays
nothing for epochs and vice versa.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.epochs import EpochRecorder
from repro.obs.profiler import KernelProfiler
from repro.obs.trace import TraceSession
from repro.sim.kernel import ns


class ObsSession:
    """Wires TraceSession / EpochRecorder / KernelProfiler into a run."""

    def __init__(self, controller) -> None:
        config = controller.config.obs
        self.trace: Optional[TraceSession] = None
        self.epochs: Optional[EpochRecorder] = None
        self.profiler: Optional[KernelProfiler] = None
        if config.trace:
            self.trace = TraceSession(controller, limit=config.trace_limit)
        if config.epoch_us > 0:
            self.epochs = EpochRecorder(controller,
                                        ns(config.epoch_us * 1000.0))
        if config.profile:
            self.profiler = KernelProfiler()
            controller.sim.profiler = self.profiler

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_flush(self, flush) -> None:
        """Subscribe the trace to flush-buffer occupancy changes."""
        if self.trace is not None:
            flush.obs_sink = self.trace.on_flush_level

    def on_warm(self) -> None:
        """Warm-up boundary: re-baseline the epoch series.

        The trace and the profiler deliberately keep covering the whole
        run (warm-up behaviour is often exactly what a trace is for).
        """
        if self.epochs is not None:
            self.epochs.reset()

    def finalize(self) -> None:
        """End of run: flush the partial epoch."""
        if self.epochs is not None:
            self.epochs.finalize()

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    def epoch_series(self) -> Dict[str, list]:
        """The columnar epoch series (empty dict when sampling is off)."""
        if self.epochs is None:
            return {}
        return self.epochs.series

    def profile_summary(self) -> Dict[str, object]:
        """The kernel-profiler digest (empty dict when profiling is off)."""
        if self.profiler is None:
            return {}
        return self.profiler.summary()

    def write_trace(self, path) -> int:
        """Write the Chrome trace JSON; returns events written (0 when
        tracing is off)."""
        if self.trace is None:
            return 0
        return self.trace.write(path)

    # ------------------------------------------------------------------
    # Lifecycle hooks (delegating; no-ops when tracing is off)
    # ------------------------------------------------------------------
    def on_enqueue(self, demand) -> None:
        """A demand entered the controller."""
        if self.trace is not None:
            self.trace.on_enqueue(demand)

    def on_issue(self, demand, time: int) -> None:
        """The demand's first DRAM command issued."""
        if self.trace is not None:
            self.trace.on_issue(demand, time)

    def on_probe(self, demand, issue: int, hm_at: int) -> None:
        """An early tag probe was fired for the demand."""
        if self.trace is not None:
            self.trace.on_probe(demand, issue, hm_at)

    def on_tag_result(self, demand, time: int, outcome) -> None:
        """The hit/miss outcome reached the controller."""
        if self.trace is not None:
            self.trace.on_tag_result(demand, time, outcome)

    def on_dq_window(self, demand, start: int, end: int) -> None:
        """The demand's data occupied the cache DQ bus."""
        if self.trace is not None:
            self.trace.on_dq_window(demand, start, end)

    def on_fetch_start(self, demand, time: int) -> None:
        """A main-memory fetch began for the demand's block."""
        if self.trace is not None:
            self.trace.on_fetch_start(demand, time)

    def on_fetch_return(self, demand, time: int) -> None:
        """The main-memory fetch for the demand returned."""
        if self.trace is not None:
            self.trace.on_fetch_return(demand, time)

    def on_read_complete(self, demand, time: int) -> None:
        """The read response was delivered (span end)."""
        if self.trace is not None:
            self.trace.on_read_complete(demand, time)

    def on_hm_result(self, channel_idx: int, hm_at: int) -> None:
        """An HM result packet crossed the HM bus."""
        if self.trace is not None:
            self.trace.on_hm_result(channel_idx, hm_at)

    def on_flush_drain(self, reason: str, block: int, start: int,
                       end: int) -> None:
        """A flush-buffer entry drained over DQ."""
        if self.trace is not None:
            self.trace.on_flush_drain(reason, block, start, end)
