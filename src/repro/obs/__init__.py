"""Observability layer: tracing, epoch metric streams, kernel profiling.

The paper's key claims are *timing* claims — hit latency flat under
load, HM-bus results decoupled from DQ transfers, flush-buffer drains
hidden in read-miss-clean slots (§III, §V) — which end-of-run
aggregates cannot show. This package makes time-resolved behaviour a
first-class output of every run:

* :class:`~repro.obs.trace.TraceSession` — per-request lifecycle spans
  (enqueue → probe → ActRd/ActWr → HM result → DQ window → retire,
  with miss/fill and flush-drain child spans) plus CA/DQ/HM
  bus-occupancy slices, exported as Chrome/Perfetto ``trace_event``
  JSON (``chrome://tracing`` or https://ui.perfetto.dev load it
  directly);
* :class:`~repro.obs.epochs.EpochRecorder` — a columnar time series of
  hit/miss, bandwidth, queue/flush occupancy, and RAS counters sampled
  every N µs of simulated time, included in
  :class:`~repro.experiments.runner.RunResult`;
* :class:`~repro.obs.profiler.KernelProfiler` — events/sec and
  per-handler dispatch counts / wall time for the simulation kernel,
  behind a zero-overhead-when-off flag.

Everything is off by default (``SystemConfig.obs``); a disabled run
schedules zero extra events and is bit-for-bit the plain simulator.
See ``docs/tracing.md`` for the trace format, the epoch-series schema,
and worked Perfetto/pandas examples.
"""

from repro.obs.campaign import CampaignSeries
from repro.obs.config import ObsConfig
from repro.obs.epochs import EpochRecorder
from repro.obs.profiler import KernelProfiler
from repro.obs.session import ObsSession
from repro.obs.trace import TraceSession

__all__ = [
    "CampaignSeries",
    "EpochRecorder",
    "KernelProfiler",
    "ObsConfig",
    "ObsSession",
    "TraceSession",
]
