"""Observability configuration (``SystemConfig.obs``).

Kept import-light on purpose: :mod:`repro.config.system` embeds this
dataclass, so it must not import anything that imports the system
configuration back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ObsConfig:
    """What the observability layer records during a run.

    Everything defaults to off; a fully-disabled configuration attaches
    nothing to the controller, schedules zero extra kernel events, and
    leaves the simulation bit-for-bit identical to one without the
    layer. Each knob is independent:

    * ``trace`` — record request-lifecycle spans and bus-occupancy
      slices for Chrome/Perfetto export (:class:`repro.obs.TraceSession`);
    * ``epoch_us`` — sample the metric time series every this many
      microseconds of *simulated* time (0 disables;
      :class:`repro.obs.EpochRecorder`);
    * ``profile`` — attach the kernel profiler (host wall-time per
      handler type; :class:`repro.obs.KernelProfiler`).

    Note for campaign users: ``ObsConfig`` is part of ``SystemConfig``
    and therefore of the content-addressed result-cache key — runs
    with different observability settings are cached separately, which
    is correct because ``RunResult.epochs``/``.profile`` differ.
    """

    #: record lifecycle spans + bus slices for trace-event export
    trace: bool = False
    #: retained trace records before new ones are dropped (counted)
    trace_limit: int = 200_000
    #: epoch-series sampling period in simulated µs (0 = off)
    epoch_us: float = 0.0
    #: attach the kernel profiler (host wall time; not deterministic)
    profile: bool = False

    def __post_init__(self) -> None:
        if self.epoch_us < 0:
            raise ConfigError("epoch_us must be >= 0")
        if self.trace_limit <= 0:
            raise ConfigError("trace_limit must be positive")

    @property
    def any_enabled(self) -> bool:
        """Whether any instrument is on (controller attaches the layer)."""
        return self.trace or self.profile or self.epoch_us > 0
