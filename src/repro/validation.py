"""Self-check: fast invariants anyone can run after an install.

Mirrors the base-die BIST the paper mentions (§III-C3) in spirit: a
battery of analytic checks over the configured timing, area, ECC, and
protocol constants, returning human-readable pass/fail lines. The CLI
exposes it as ``tdram-repro selfcheck``; CI runs it as a test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.core.area import die_area_report, signal_report
from repro.core.commands import hm_precedes_data_by
from repro.core.ecc import EccOutcome, tag_ecc_code
from repro.core.hm_bus import packet_beats, tag_bits_for
from repro.core.tag_mats import flush_move_safe, internal_result_hidden
from repro.dram.timing import DramTiming, TagTiming, hbm3_cache_timing, \
    rldram_like_tag_timing
from repro.sim.kernel import ns


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str


def run_selfcheck(
    timing: DramTiming = None,
    tag: TagTiming = None,
) -> List[CheckResult]:
    """Run every invariant check; returns one result per check."""
    timing = timing or hbm3_cache_timing()
    tag = tag or rldram_like_tag_timing()
    checks: List[Tuple[str, Callable[[], Tuple[bool, str]]]] = []

    def check(name: str):
        def wrap(fn):
            checks.append((name, fn))
            return fn
        return wrap

    @check("tag access + HM transfer = 15 ns (matches RLDRAM tRL)")
    def _rl():
        value = tag.hm_result_delay
        return value == ns(15), f"tRCD_TAG + tHM = {value / 1000:.1f} ns"

    @check("internal tag result hides under tRCD (§III-C4)")
    def _hidden():
        ok = internal_result_hidden(timing, tag)
        return ok, (f"tRCD_TAG + tHM_int = "
                    f"{(tag.tRCD_TAG + tag.tHM_int) / 1000:.1f} ns vs "
                    f"tRCD = {timing.tRCD / 1000:.1f} ns")

    @check("flush-buffer move beats incoming write data (§III-C4)")
    def _flush():
        return flush_move_safe(timing, tag), \
            f"tRL_core = {timing.tRL_core / 1000:.1f} ns"

    @check("HM result precedes read data (conditional response window)")
    def _window():
        gap = hm_precedes_data_by(timing, tag)
        return gap > 0, f"window = {gap / 1000:.1f} ns"

    @check("die-area overhead = 8.24 % (§III-C5)")
    def _area():
        value = die_area_report().total_die_overhead
        return abs(value - 0.0824) < 0.001, f"{value:.2%}"

    @check("signal overhead = 192 pins, ~9.7 %, fits unused bumps (Fig 4A)")
    def _signals():
        report = signal_report()
        ok = (report.extra_channel_signals == 192
              and abs(report.overhead_fraction - 0.097) < 0.005
              and report.fits_in_unused_bumps)
        return ok, (f"{report.extra_channel_signals} pins, "
                    f"{report.overhead_fraction:.1%}")

    @check("1 PB / 64 GiB direct-mapped needs a 14-bit tag (§III-C3)")
    def _tagbits():
        bits = tag_bits_for(2 ** 50, 64 * 2 ** 30)
        return bits == 14, f"{bits} bits"

    @check("3 B metadata = 6 beats on the 4-bit HM bus (§III-B)")
    def _beats():
        beats = packet_beats()
        return beats == 6, f"{beats} beats"

    @check("tag SECDED corrects any single-bit error in 8-bit budget")
    def _ecc():
        code = tag_ecc_code()
        if code.parity_bits > 8:
            return False, f"needs {code.parity_bits} bits"
        word = code.encode(0x2A5C)
        for bit in range(code.codeword_bits):
            result = code.decode(code.inject(word, (bit,)))
            if result.outcome is not EccOutcome.CORRECTED or \
                    result.data != 0x2A5C:
                return False, f"bit {bit} not corrected"
        return True, f"{code.parity_bits} check bits, all flips corrected"

    @check("data-bank row cycle matches Table III (tRAS + tRP = 42 ns)")
    def _trc():
        return timing.tRC == ns(42), f"tRC = {timing.tRC / 1000:.0f} ns"

    @check("patrol scrub batch fits one refresh window (tag banks idle)")
    def _scrub():
        from repro.ras.config import RasConfig

        config = RasConfig()
        batch = config.scrub_lines_per_pass * tag.tRC_TAG
        return batch <= timing.tRFC, (
            f"{config.scrub_lines_per_pass} lines x "
            f"tRC_TAG = {batch / 1000:.0f} ns vs "
            f"tRFC = {timing.tRFC / 1000:.0f} ns")

    @check("RAS retry bound gives every DETECTED word a second read")
    def _retry():
        from repro.ras.config import RasConfig

        limits = [RasConfig().retry_limit]
        limits += [RasConfig.campaign(1, mode).retry_limit
                   for mode in ("random", "single", "double")]
        return min(limits) >= 1, f"retry limits = {limits}"

    @check("degraded-way capacity math consistent with way-select model")
    def _degraded():
        from repro.core.ways import in_dram_way_select
        from repro.ras.degrade import effective_capacity_fraction

        fraction = effective_capacity_fraction(4, 1)
        survivors = in_dram_way_select(3)
        ok = (abs(fraction - 0.75) < 1e-9
              and survivors.total_latency_overhead == 0)
        return ok, (f"3/4 ways -> {fraction:.0%} capacity, "
                    f"+{survivors.total_latency_overhead} ps latency")

    results = []
    for name, fn in checks:
        try:
            passed, detail = fn()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            passed, detail = False, f"raised {exc!r}"
        results.append(CheckResult(name=name, passed=passed, detail=detail))
    return results


def run_determinism_check(demands_per_core: int = 150,
                          seed: int = 11) -> List[CheckResult]:
    """Dynamic determinism gate: the same seed must reproduce bit-identically.

    The static rules SIM001/SIM002 (no wall-clock, no unseeded
    randomness; see docs/static-analysis.md) make this property likely;
    this check *measures* it: one short synthetic workload is simulated
    twice with identical inputs and every deterministic output surface —
    counters, dispatched-event count, runtime, and the epoch time
    series — must match exactly. Exposed as ``tdram-repro selfcheck
    --determinism`` and relied on by the campaign result cache (a cache
    hit asserts a re-run would have produced the same bytes).
    """
    from dataclasses import asdict

    from repro.config.system import SystemConfig
    from repro.experiments.runner import run_experiment
    from repro.obs.config import ObsConfig
    from repro.workloads.suite import any_workload

    config = SystemConfig.small().with_(obs=ObsConfig(epoch_us=5.0))
    spec = any_workload("synthetic")

    def once():
        result = run_experiment("tdram", spec, config=config,
                                demands_per_core=demands_per_core, seed=seed)
        payload = asdict(result)
        payload.pop("profile", None)  # host wall time, legitimately varies
        return payload

    first, second = once(), once()
    results: List[CheckResult] = []

    def compare(name: str, key: str) -> None:
        a, b = first[key], second[key]
        passed = a == b
        detail = "bit-identical" if passed else f"run 1 {a!r} != run 2 {b!r}"
        results.append(CheckResult(name=name, passed=passed, detail=detail))

    compare("same seed reproduces every counter (events)", "events")
    compare("same seed dispatches the same kernel events", "sim_events")
    compare("same seed reaches the same runtime", "runtime_ps")
    compare("same seed reproduces the epoch time series", "epochs")
    leftover = {key for key in first
                if first[key] != second[key]}
    results.append(CheckResult(
        name="every remaining RunResult field is identical",
        passed=not leftover,
        detail="all fields match" if not leftover
        else f"diverging fields: {sorted(leftover)}"))
    return results


def render_selfcheck(results: List[CheckResult]) -> str:
    lines = []
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        lines.append(f"[{mark}] {result.name} — {result.detail}")
    failed = sum(1 for r in results if not r.passed)
    lines.append(f"{len(results) - failed}/{len(results)} checks passed")
    return "\n".join(lines)
