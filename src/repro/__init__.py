"""TDRAM: a tag-enhanced DRAM cache simulator.

A from-scratch reproduction of *"Efficient Caching with A Tag-enhanced
DRAM"* (HPCA 2025): an event-driven, memory-system-accurate simulator
of HBM3-class DRAM caches, the TDRAM microarchitecture (on-die tag
mats, HM bus, ActRd/ActWr, flush buffer, early tag probing), the
evaluated baselines (Cascade Lake, Alloy, BEAR, NDC, Ideal, no-cache),
the NPB/GAPBS workload models, and a harness regenerating every table
and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import SystemConfig, run_experiment
>>> result = run_experiment("tdram", "ft.D", SystemConfig.small(),
...                         demands_per_core=500)
>>> result.tag_check_ns > 0
True
"""

from repro.cache import (
    DESIGNS,
    AlloyCache,
    BearCache,
    CascadeLakeCache,
    DemandRequest,
    IdealCache,
    MapIPredictor,
    NdcCache,
    NoCacheSystem,
    Op,
    Outcome,
    TagStore,
    TdramCache,
)
from repro.config import GIB, MIB, SystemConfig
from repro.dram import DramGeometry, DramTiming, TagTiming, hbm3_cache_timing
from repro.energy import EnergyModel
from repro.errors import (
    CapacityError,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.experiments.runner import RunResult, run_experiment, run_matrix
from repro.sim import Simulator, ns, to_ns
from repro.validation import run_selfcheck
from repro.workloads import (
    WorkloadSpec,
    full_suite,
    representative_suite,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "DESIGNS",
    "AlloyCache",
    "BearCache",
    "CascadeLakeCache",
    "DemandRequest",
    "IdealCache",
    "MapIPredictor",
    "NdcCache",
    "NoCacheSystem",
    "Op",
    "Outcome",
    "TagStore",
    "TdramCache",
    "GIB",
    "MIB",
    "SystemConfig",
    "DramGeometry",
    "DramTiming",
    "TagTiming",
    "hbm3_cache_timing",
    "EnergyModel",
    "CapacityError",
    "ConfigError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "RunResult",
    "run_experiment",
    "run_matrix",
    "Simulator",
    "run_selfcheck",
    "ns",
    "to_ns",
    "WorkloadSpec",
    "full_suite",
    "representative_suite",
    "workload",
    "__version__",
]
