"""Cache-key soundness prover (SIM014).

The campaign result cache assumes a :class:`RunResult` is a pure
function of ``(design, workload, config, demands_per_core, seed)`` —
the ingredients :func:`repro.experiments.campaign.cache_key` hashes.
That assumption breaks in exactly one quiet way: a ``SystemConfig``
field that *influences* a simulation without *participating* in the
key, so two sweeps differing only in that field share a key and one
of them is served the other's cached results forever.

SIM014 proves the absence of that failure class over the analyzed
tree:

* the **keyed set** is derived from the recorded shape of the
  ``cache_key`` payload dict — a full ``_canonical(config)`` keys
  every ``SystemConfig`` field (minus any declared ``skip=``
  ``OBS_ONLY`` set), while an explicit ``{"field": config.field}``
  literal keys exactly the fields it names;
* every ``SystemConfig`` field **read on a sim-reachable path** (the
  call graph's verdict; every read, when the tree has no dispatch
  entry points) must be keyed or listed in the reason-carrying
  ``OBS_ONLY`` declaration (:data:`repro.config.system.OBS_ONLY`);
* ``CampaignTask`` fields must either be passed to ``cache_key`` at
  the key call site or be ``OBS_ONLY``-declared — ``trace_dir`` (a
  per-host scratch path) is the canonical declared example;
* ``OBS_ONLY`` itself is validated: every entry must name a real
  ``SystemConfig``/``CampaignTask`` field and carry a non-empty
  reason.

The rule is inert on trees that define neither a ``SystemConfig``
dataclass nor a ``cache_key`` function (ordinary rule-test fixtures).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import FileFacts
from repro.analysis.engine import Finding, ProjectContext, Rule, register


def _find_dataclass(project: ProjectContext, name: str) \
        -> Optional[Tuple[str, Dict[str, object]]]:
    """Locate a dataclass record by terminal class name."""
    for display, facts in sorted(project.facts.items()):
        records = facts.get("dataclasses", [])
        assert isinstance(records, list)
        for record in records:
            if str(record["name"]).rsplit(".", 1)[-1] == name:
                return display, record
    return None


def _obs_only(project: ProjectContext) \
        -> Optional[Tuple[str, Dict[str, object], Dict[str, str]]]:
    """The ``OBS_ONLY`` declaration: (display, record, {field: reason})."""
    for display, facts in sorted(project.facts.items()):
        constants = facts.get("constants", {})
        assert isinstance(constants, dict)
        record = constants.get("OBS_ONLY")
        if isinstance(record, dict) and record.get("kind") == "dict":
            reasons = record.get("str_values", {})
            assert isinstance(reasons, dict)
            keys = record.get("keys", [])
            assert isinstance(keys, list)
            table = {str(k): str(reasons.get(k, "")) for k in keys}
            return display, record, table
    return None


def _payload(project: ProjectContext) \
        -> Optional[Tuple[str, Dict[str, object]]]:
    for display, facts in sorted(project.facts.items()):
        record = facts.get("cachekey")
        if isinstance(record, dict):
            return display, record
    return None


@register
class CacheKeySoundness(Rule):
    """SIM014 — every sim-read SystemConfig field is keyed or OBS_ONLY."""

    id = "SIM014"
    title = "cache-key soundness (no unkeyed config reads)"
    cross_file = True
    rationale = (
        "The campaign cache serves a stored RunResult whenever the "
        "SHA-256 key matches; a SystemConfig field that steers the "
        "simulation but is missing from the key makes two different "
        "experiments share a key, so one silently reads the other's "
        "results. Every SystemConfig field read on a sim-reachable "
        "path (per the call graph) must participate in the cache_key "
        "payload or appear in the reason-carrying OBS_ONLY declaration "
        "in repro.config.system; CampaignTask fields must be passed to "
        "cache_key or declared OBS_ONLY (trace_dir is the canonical "
        "example: a per-host scratch path that never changes results).")

    # ------------------------------------------------------------------
    def _keyed_config_fields(self, payload: Dict[str, object],
                             fields: Set[str],
                             obs_only: Set[str]) -> Optional[Set[str]]:
        """SystemConfig fields the key covers, or None for 'all/unknown'."""
        entries = payload.get("payload", {})
        assert isinstance(entries, dict)
        descriptor = entries.get("config")
        if not isinstance(descriptor, dict):
            return set()  # no config ingredient at all: nothing is keyed
        kind = descriptor.get("kind")
        if kind == "fields":
            named = descriptor.get("fields", [])
            assert isinstance(named, list)
            return {str(n) for n in named}
        if kind == "call":
            # _canonical(config) walks every dataclass field; an
            # explicit skip=OBS_ONLY keyword subtracts the declared set.
            if descriptor.get("skips_obs_only"):
                return fields - obs_only
            if descriptor.get("skips"):
                # Skips something we cannot resolve — treat every field
                # as at-risk so the skip must be OBS_ONLY-declared.
                return set()
            return None
        return None

    # ------------------------------------------------------------------
    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        config = _find_dataclass(project, "SystemConfig")
        payload = _payload(project)
        if config is None or payload is None:
            return  # not a tree this invariant applies to
        config_display, config_record = config
        config_fields = {str(f[0]) for f in config_record["fields"]}
        task = _find_dataclass(project, "CampaignTask")
        task_fields = {str(f[0]) for f in task[1]["fields"]} if task else set()

        declaration = _obs_only(project)
        obs_only: Dict[str, str] = {}
        if declaration is not None:
            obs_display, obs_record, obs_only = declaration
            for name, reason in sorted(obs_only.items()):
                if name not in config_fields | task_fields:
                    yield self.at(
                        obs_display, obs_record["line"], obs_record["col"],
                        f"OBS_ONLY declares '{name}' which is neither a "
                        "SystemConfig nor a CampaignTask field — stale "
                        "declarations hide future unkeyed knobs")
                elif not reason.strip():
                    yield self.at(
                        obs_display, obs_record["line"], obs_record["col"],
                        f"OBS_ONLY entry '{name}' has no reason; every "
                        "exclusion from the cache key must explain why "
                        "results cannot depend on it")

        payload_display, payload_record = payload
        keyed = self._keyed_config_fields(payload_record, config_fields,
                                          set(obs_only))
        graph = project.graph
        if keyed is not None:
            for display, facts in sorted(project.facts.items()):
                reads = facts.get("config_reads", [])
                assert isinstance(reads, list)
                seen: Set[Tuple[str, int]] = set()
                for read in reads:
                    name = str(read["field"])
                    if name not in config_fields:
                        continue  # method/property or another object
                    if name in keyed or name in obs_only:
                        continue
                    if graph.active and not graph.is_reachable(
                            facts.modkey, str(read["fn"])):
                        continue  # host-side read; the key need not cover it
                    marker = (name, int(read["line"]))
                    if marker in seen:
                        continue
                    seen.add(marker)
                    yield self.at(
                        display, read["line"], read["col"],
                        f"SystemConfig.{name} is read on a sim-reachable "
                        "path but is neither cache-keyed nor OBS_ONLY-"
                        "declared — cached results would go stale when "
                        "it changes")

        if task is not None:
            task_display, task_record = task
            passed: Set[str] = set()
            key_calls = False
            for facts in project.facts.values():
                calls = facts.get("task_key_calls", [])
                assert isinstance(calls, list)
                for call in calls:
                    if str(call["cls"]).rsplit(".", 1)[-1] == "CampaignTask":
                        key_calls = True
                        args = call["args"]
                        assert isinstance(args, list)
                        passed.update(str(a) for a in args)
            if key_calls:
                for name, line, col, _annotation in task_record["fields"]:
                    if str(name) in passed or str(name) in obs_only:
                        continue
                    yield self.at(
                        task_display, line, col,
                        f"CampaignTask.{name} is not passed to cache_key "
                        "and not OBS_ONLY-declared — two tasks differing "
                        "only in it would share a cache entry")
