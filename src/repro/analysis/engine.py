"""Lint engine: rule registry, passes, caching, suppressions, baseline.

The engine is deliberately simulator-agnostic — it knows how to parse
sources, run per-file and cross-file rules, honour inline
``# tdram: noqa[RULE] -- reason`` suppressions, and subtract a
committed baseline. Everything TDRAM-specific lives in
:mod:`repro.analysis.rules` and its sibling rule modules.

The run pipeline has three passes:

1. **per-file** — parse, extract :class:`~repro.analysis.dataflow.FileFacts`
   (the dataflow pass), run the per-file rules. The whole per-file
   result is memoised in a content-hash-keyed :class:`AnalysisCache`
   when one is attached, so warm repo-wide runs skip parsing entirely;
2. **project** — build the sim-reachability call graph
   (:mod:`repro.analysis.callgraph`) over the collected facts and run
   the cross-file rules against the resulting :class:`ProjectContext`;
3. **fold** — apply inline suppressions, subtract the committed
   baseline, and flag baseline entries that no longer fire (LNT002)
   so the baseline can only shrink.

Suppression grammar (one per physical line, applies to findings on
that line)::

    x = host_clock()  # tdram: noqa[SIM001] -- host-side ETA, not sim state
    y = f(a, b)       # tdram: noqa[SIM004,SIM010] -- reason text

A suppression must name explicit rules *and* carry a reason; a bare
``# tdram: noqa`` (or one without ``-- reason``) is itself reported as
``LNT000`` so blanket switch-offs cannot accumulate silently.

Baseline format (JSON, committed at ``tools/lint_baseline.json``)::

    {"version": 1,
     "entries": [{"rule": "SIM007", "path": "src/.../system.py",
                  "message": "...", "justification": "why it stays"}]}

Only cross-file rules listed in :data:`repro.analysis.rules.BASELINE_RULES`
may be baselined — per-file invariants must be fixed or suppressed
inline where the exemption is visible in review. A baseline entry
whose finding no longer fires is itself a finding (``LNT002``), so
fixed debt cannot linger as a latent mute.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from repro.analysis.dataflow import FACTS_VERSION, FileFacts, extract
from repro.errors import ConfigError

#: ``# tdram: noqa[SIM001,SIM002] -- reason`` (rules and reason optional
#: in the grammar so LNT000 can diagnose incomplete forms).
_NOQA = re.compile(
    r"#\s*tdram:\s*noqa"
    r"(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Meta-rule ids emitted by the engine itself (not suppressible).
META_BAD_NOQA = "LNT000"
META_SYNTAX = "LNT001"
META_STALE_BASELINE = "LNT002"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """One ``path:line:col: RULE message`` line (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        """JSON-ready representation for ``--json`` output."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# tdram: noqa`` comment on one line."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class SourceFile:
    """A parsed source file plus the metadata rules need to scope on."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        #: repo-relative posix path used in findings and baselines
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[str] = None
        try:
            self.tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            self.syntax_error = f"{exc.msg} (line {exc.lineno})"
        self.suppressions: List[Suppression] = []
        self.bad_noqa: List[int] = []
        self._parse_noqa()
        self.module = self._module_name()
        self.basename = Path(display).stem

    # ------------------------------------------------------------------
    def _parse_noqa(self) -> None:
        # Tokenize so the pattern is only recognised in real comments —
        # docstrings *describing* the grammar must not parse as noqa.
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            rules = match.group("rules")
            reason = match.group("reason")
            if not rules or not reason:
                self.bad_noqa.append(lineno)
                continue
            names = tuple(r.strip() for r in rules.split(",") if r.strip())
            self.suppressions.append(
                Suppression(line=lineno, rules=names, reason=reason.strip()))

    def _module_name(self) -> Optional[str]:
        """Dotted module path anchored at the ``repro`` package, if any."""
        parts = list(Path(self.display).with_suffix("").parts)
        if "repro" not in parts:
            return None
        dotted = parts[parts.index("repro"):]
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)

    @property
    def modkey(self) -> str:
        """Module identity used by facts and the call graph."""
        return self.module or self.basename

    # ------------------------------------------------------------------
    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline noqa on the finding's line covers its rule."""
        return any(s.line == finding.line and finding.rule in s.rules
                   for s in self.suppressions)

    def in_module(self, *prefixes: str) -> bool:
        """Whether this file's module matches any dotted prefix."""
        if self.module is None:
            return False
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)


class ProjectContext:
    """What cross-file rules see: facts per file, lazily a call graph.

    ``facts`` maps display path -> :class:`FileFacts`; ``root`` is the
    repository root when the analyzed tree contains ``src/repro`` (used
    by rules that consult committed docs, e.g. SIM016's metrics-doc
    escape hatch); ``graph`` builds the sim-reachability call graph on
    first access so per-file-only runs never pay for it.
    """

    def __init__(self, facts: Dict[str, FileFacts],
                 root: Optional[Path] = None) -> None:
        self.facts = facts
        self.root = root
        self._graph: Optional[object] = None

    @property
    def graph(self) -> "CallGraph":  # noqa: F821 - forward ref for mypy
        from repro.analysis.callgraph import CallGraph, build_graph

        if self._graph is None:
            self._graph = build_graph(self.facts)
        assert isinstance(self._graph, CallGraph)
        return self._graph


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`.

    Per-file rules override :meth:`check`; cross-file rules set
    ``cross_file = True`` and override :meth:`check_project` (they see
    the whole-project :class:`ProjectContext` of extracted facts).
    ``exempt`` carves out module subtrees or basenames a per-file
    invariant does not apply to — exemptions that are *policy* (CLI
    modules may print) belong there, exemptions that are *judgement
    calls* belong in inline noqa comments at the use site. Cross-file
    rules scope themselves inside :meth:`check_project` using the
    facts' module keys.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    cross_file: bool = False

    def exempt(self, source: SourceFile) -> bool:
        """Whether the rule is out of scope for this file entirely."""
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file (per-file rules)."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings needing whole-project context (cross-file rules)."""
        return iter(())

    # ------------------------------------------------------------------
    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at an AST node."""
        return Finding(rule=self.id, path=source.display,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)

    def at(self, path: str, line: object, col: object, message: str) -> Finding:
        """Construct a finding from fact-recorded coordinates."""
        return Finding(rule=self.id, path=path, line=int(line),  # type: ignore[call-overload]
                       col=int(col), message=message)  # type: ignore[call-overload]


_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise ConfigError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by id."""
    # Importing the rule modules populates the registry.
    import repro.analysis.cachekey  # noqa: F401
    import repro.analysis.contracts  # noqa: F401
    import repro.analysis.rules  # noqa: F401
    import repro.analysis.units  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


class Baseline:
    """Committed grandfathered findings, loaded from JSON.

    Every entry names a rule in ``allowed_rules``, a file, the exact
    finding message, and a human justification; anything else is a
    configuration error so the baseline cannot quietly grow into a
    mute button for new rule classes.
    """

    def __init__(self, entries: Iterable[Dict[str, str]] = (),
                 allowed_rules: Optional[Set[str]] = None) -> None:
        self.entries: List[Dict[str, str]] = []
        self._index: Set[Tuple[str, str, str]] = set()
        for entry in entries:
            rule = entry.get("rule", "")
            path = entry.get("path", "")
            message = entry.get("message", "")
            justification = entry.get("justification", "").strip()
            if allowed_rules is not None and rule not in allowed_rules:
                raise ConfigError(
                    f"baseline entry for {rule} not allowed: only "
                    f"{sorted(allowed_rules)} may be baselined")
            if not (rule and path and message and justification):
                raise ConfigError(
                    "baseline entries need rule, path, message and a "
                    f"non-empty justification: {entry!r}")
            if justification.startswith("FIXME"):
                raise ConfigError(
                    "baseline justification still reads FIXME — replace "
                    f"the --write-baseline placeholder: {entry!r}")
            self.entries.append(dict(entry))
            self._index.add((rule, path, message))

    @classmethod
    def load(cls, path: Path,
             allowed_rules: Optional[Set[str]] = None) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls((), allowed_rules)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return cls(payload.get("entries", ()), allowed_rules)

    def covers(self, finding: Finding) -> bool:
        """Whether a finding is grandfathered by this baseline."""
        return finding.fingerprint in self._index

    @staticmethod
    def render(findings: Sequence[Finding]) -> str:
        """Serialise findings as a fresh baseline document (to be
        hand-edited: every justification starts as ``FIXME``)."""
        entries = [{"rule": f.rule, "path": f.path, "message": f.message,
                    "justification": "FIXME: justify or fix"}
                   for f in sorted(findings, key=lambda f: f.fingerprint)]
        return json.dumps({"version": 1, "entries": entries}, indent=1,
                          sort_keys=True) + "\n"


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def rule_counts(self) -> Dict[str, int]:
        """Finding counts per rule id (incl. suppressed/baselined)."""
        counts: Dict[str, int] = {}
        for finding in self.findings + self.suppressed + self.baselined:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        """Human output: one line per finding plus a summary."""
        lines = [f.render() for f in self.findings]
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if self.cache_hits:
            extras.append(f"{self.cache_hits} cached")
        suffix = f" ({', '.join(extras)})" if extras else ""
        verdict = "OK" if self.ok else f"{len(self.findings)} findings"
        lines.append(f"checked {self.files} files: {verdict}{suffix}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine output for ``--json``."""
        return json.dumps({
            "files": self.files,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "baselined": [f.to_json() for f in self.baselined],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }, indent=1, sort_keys=True)


class AnalysisCache:
    """Content-hash-keyed per-file analysis results on disk.

    The key is a SHA-256 over the engine/fact schema versions, the
    display path, and the file *content* — any edit, rename, or schema
    bump misses. A hit replays the stored per-file findings,
    suppressions, noqa diagnostics, and extracted facts without
    parsing the file, which is what makes warm repo-wide runs fast:
    cross-file rules run from facts alone.
    """

    #: Bump when per-file rule behaviour changes without a fact-schema
    #: change (message wording, new per-file rule).
    VERSION = 1

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, display: str, text: str) -> Path:
        digest = hashlib.sha256(
            f"{self.VERSION}:{FACTS_VERSION}:{display}\0{text}"
            .encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, display: str, text: str) -> Optional[Dict[str, object]]:
        """Stored payload for this exact content, or None."""
        path = self._entry_path(display, text)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, display: str, text: str,
            payload: Dict[str, object]) -> None:
        """Atomically persist a per-file analysis payload."""
        path = self._entry_path(display, text)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)


@dataclass
class _FileEntry:
    """Per-file analysis outcome — fresh or replayed from the cache."""

    display: str
    path: Path
    suppressions: List[Suppression] = field(default_factory=list)
    bad_noqa: List[int] = field(default_factory=list)
    syntax_error: Optional[str] = None
    findings: List[Finding] = field(default_factory=list)
    facts: Optional[FileFacts] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "syntax_error": self.syntax_error,
            "bad_noqa": list(self.bad_noqa),
            "suppressions": [[s.line, list(s.rules), s.reason]
                             for s in self.suppressions],
            "findings": [[f.rule, f.line, f.col, f.message]
                         for f in self.findings],
            "facts": self.facts.to_json() if self.facts is not None else None,
        }

    @classmethod
    def from_payload(cls, display: str, path: Path,
                     payload: Dict[str, object]) -> "_FileEntry":
        suppressions = [
            Suppression(line=int(line), rules=tuple(rules), reason=reason)
            for line, rules, reason in payload.get("suppressions", [])]  # type: ignore[union-attr]
        findings = [
            Finding(rule=rule, path=display, line=int(line), col=int(col),
                    message=message)
            for rule, line, col, message in payload.get("findings", [])]  # type: ignore[union-attr]
        facts_data = payload.get("facts")
        facts = FileFacts.from_json(facts_data) \
            if isinstance(facts_data, dict) else None
        error = payload.get("syntax_error")
        return cls(display=display, path=path, suppressions=suppressions,
                   bad_noqa=[int(n) for n in payload.get("bad_noqa", [])],  # type: ignore[union-attr]
                   syntax_error=str(error) if error is not None else None,
                   findings=findings, facts=facts)


def _iter_sources(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _display_path(path: Path) -> str:
    """Stable repo-relative path when possible, else as given."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive (never on posix)
        rel = str(path)
    chosen = rel if not rel.startswith("..") else str(path)
    return Path(chosen).as_posix()


def _detect_root(entries: Sequence[_FileEntry]) -> Optional[Path]:
    """Repository root, when the analyzed tree includes ``src/repro``."""
    for entry in entries:
        parts = entry.path.resolve().parts
        for i in range(len(parts) - 1):
            if parts[i] == "src" and parts[i + 1] == "repro":
                return Path(*parts[:i]) if i else Path(parts[0])
    return None


class Analyzer:
    """Runs a rule set over a file tree and folds in the baseline."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 baseline: Optional[Baseline] = None,
                 select: Optional[Iterable[str]] = None,
                 cache: Optional[AnalysisCache] = None) -> None:
        # The cache may only be *written* by a run of the complete
        # registered rule set — a filtered run would persist partial
        # per-file results that a later full run would replay as truth.
        self._cache_complete = rules is None and select is None
        self.rules = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.id for rule in self.rules}
            if unknown:
                raise ConfigError(f"unknown rule ids: {sorted(unknown)}")
            self.rules = [r for r in self.rules if r.id in wanted]
        self.baseline = baseline or Baseline()
        self.cache = cache

    # ------------------------------------------------------------------
    def load(self, paths: Iterable[str]) -> List[SourceFile]:
        """Parse every ``.py`` file under the given files/directories."""
        sources = []
        for path in _iter_sources(paths):
            text = path.read_text(encoding="utf-8")
            sources.append(SourceFile(path, _display_path(path), text))
        return sources

    # ------------------------------------------------------------------
    def _analyze_file(self, path: Path, display: str,
                      text: str) -> _FileEntry:
        """Per-file pass: cache replay, or parse + facts + rules."""
        if self.cache is not None:
            payload = self.cache.get(display, text)
            if payload is not None:
                return _FileEntry.from_payload(display, path, payload)
        src = SourceFile(path, display, text)
        entry = _FileEntry(display=display, path=path,
                           suppressions=src.suppressions,
                           bad_noqa=src.bad_noqa,
                           syntax_error=src.syntax_error)
        if src.tree is not None:
            entry.facts = extract(src.tree, src.modkey)
            for rule in self.rules:
                if rule.cross_file or rule.exempt(src):
                    continue
                entry.findings.extend(rule.check(src))
        if self.cache is not None and self._cache_complete:
            self.cache.put(display, text, entry.to_payload())
        return entry

    def run(self, paths: Iterable[str]) -> Report:
        """Analyze a tree: per-file rules, cross-file rules, meta checks."""
        start_hits = self.cache.hits if self.cache is not None else 0
        start_misses = self.cache.misses if self.cache is not None else 0
        entries = [self._analyze_file(path, _display_path(path),
                                      path.read_text(encoding="utf-8"))
                   for path in _iter_sources(paths)]
        report = Report(files=len(entries))
        if self.cache is not None:
            # Deltas: the same cache object may serve many runs.
            report.cache_hits = self.cache.hits - start_hits
            report.cache_misses = self.cache.misses - start_misses
        selected = {rule.id for rule in self.rules}
        raw: List[Finding] = []
        for entry in entries:
            if entry.syntax_error is not None:
                report.findings.append(Finding(
                    rule=META_SYNTAX, path=entry.display, line=1, col=0,
                    message=f"file does not parse: {entry.syntax_error}"))
                continue
            for lineno in entry.bad_noqa:
                report.findings.append(Finding(
                    rule=META_BAD_NOQA, path=entry.display, line=lineno,
                    col=0,
                    message="tdram noqa must name rules and a reason: "
                            "# tdram: noqa[SIM001] -- why"))
            raw.extend(f for f in entry.findings if f.rule in selected)
        facts_map = {e.display: e.facts for e in entries
                     if e.facts is not None}
        project = ProjectContext(facts_map, root=_detect_root(entries))
        for rule in self.rules:
            if rule.cross_file:
                raw.extend(rule.check_project(project))
        by_display = {e.display: e for e in entries}
        matched: Set[Tuple[str, str, str]] = set()
        for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
            entry = by_display.get(finding.path)
            if entry is not None and any(
                    s.line == finding.line and finding.rule in s.rules
                    for s in entry.suppressions):
                report.suppressed.append(finding)
            elif self.baseline.covers(finding):
                matched.add(finding.fingerprint)
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        # A baseline entry that no longer fires is itself a finding:
        # the debt it grandfathered is gone, so the entry must go too.
        analyzed = set(by_display)
        for entry_dict in self.baseline.entries:
            fingerprint = (entry_dict["rule"], entry_dict["path"],
                           entry_dict["message"])
            if fingerprint[0] not in selected or \
                    fingerprint[1] not in analyzed or \
                    fingerprint in matched:
                continue
            report.findings.append(Finding(
                rule=META_STALE_BASELINE, path=fingerprint[1], line=1, col=0,
                message=f"stale baseline entry: {fingerprint[0]} "
                        f"'{fingerprint[2]}' no longer fires — delete it "
                        "from the baseline"))
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return report
