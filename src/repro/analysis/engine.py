"""Lint engine: rule registry, passes, suppressions, baseline.

The engine is deliberately simulator-agnostic — it knows how to parse
sources, run per-file and cross-file rules, honour inline
``# tdram: noqa[RULE] -- reason`` suppressions, and subtract a
committed baseline. Everything TDRAM-specific lives in
:mod:`repro.analysis.rules`.

Suppression grammar (one per physical line, applies to findings on
that line)::

    x = host_clock()  # tdram: noqa[SIM001] -- host-side ETA, not sim state
    y = f(a, b)       # tdram: noqa[SIM004,SIM010] -- reason text

A suppression must name explicit rules *and* carry a reason; a bare
``# tdram: noqa`` (or one without ``-- reason``) is itself reported as
``LNT000`` so blanket switch-offs cannot accumulate silently.

Baseline format (JSON, committed at ``tools/lint_baseline.json``)::

    {"version": 1,
     "entries": [{"rule": "SIM007", "path": "src/.../system.py",
                  "message": "...", "justification": "why it stays"}]}

Only cross-file rules listed in :data:`repro.analysis.rules.BASELINE_RULES`
may be baselined — per-file invariants must be fixed or suppressed
inline where the exemption is visible in review.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError

#: ``# tdram: noqa[SIM001,SIM002] -- reason`` (rules and reason optional
#: in the grammar so LNT000 can diagnose incomplete forms).
_NOQA = re.compile(
    r"#\s*tdram:\s*noqa"
    r"(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Meta-rule ids emitted by the engine itself (not suppressible).
META_BAD_NOQA = "LNT000"
META_SYNTAX = "LNT001"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """One ``path:line:col: RULE message`` line (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        """JSON-ready representation for ``--json`` output."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# tdram: noqa`` comment on one line."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class SourceFile:
    """A parsed source file plus the metadata rules need to scope on."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        #: repo-relative posix path used in findings and baselines
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[str] = None
        try:
            self.tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            self.syntax_error = f"{exc.msg} (line {exc.lineno})"
        self.suppressions: List[Suppression] = []
        self.bad_noqa: List[int] = []
        self._parse_noqa()
        self.module = self._module_name()
        self.basename = Path(display).stem

    # ------------------------------------------------------------------
    def _parse_noqa(self) -> None:
        # Tokenize so the pattern is only recognised in real comments —
        # docstrings *describing* the grammar must not parse as noqa.
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            rules = match.group("rules")
            reason = match.group("reason")
            if not rules or not reason:
                self.bad_noqa.append(lineno)
                continue
            names = tuple(r.strip() for r in rules.split(",") if r.strip())
            self.suppressions.append(
                Suppression(line=lineno, rules=names, reason=reason.strip()))

    def _module_name(self) -> Optional[str]:
        """Dotted module path anchored at the ``repro`` package, if any."""
        parts = list(Path(self.display).with_suffix("").parts)
        if "repro" not in parts:
            return None
        dotted = parts[parts.index("repro"):]
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)

    # ------------------------------------------------------------------
    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline noqa on the finding's line covers its rule."""
        return any(s.line == finding.line and finding.rule in s.rules
                   for s in self.suppressions)

    def in_module(self, *prefixes: str) -> bool:
        """Whether this file's module matches any dotted prefix."""
        if self.module is None:
            return False
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`.

    Per-file rules override :meth:`check`; cross-file rules set
    ``cross_file = True`` and override :meth:`check_project` (they see
    every parsed source at once). ``exempt`` carves out module subtrees
    or basenames the invariant does not apply to — exemptions that are
    *policy* (CLI modules may print) belong there, exemptions that are
    *judgement calls* belong in inline noqa comments at the use site.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    cross_file: bool = False

    def exempt(self, source: SourceFile) -> bool:
        """Whether the rule is out of scope for this file entirely."""
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file (per-file rules)."""
        return iter(())

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        """Yield findings needing whole-project context (cross-file rules)."""
        return iter(())

    # ------------------------------------------------------------------
    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at an AST node."""
        return Finding(rule=self.id, path=source.display,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)


_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise ConfigError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401 - populates the registry

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


class Baseline:
    """Committed grandfathered findings, loaded from JSON.

    Every entry names a rule in ``allowed_rules``, a file, the exact
    finding message, and a human justification; anything else is a
    configuration error so the baseline cannot quietly grow into a
    mute button for new rule classes.
    """

    def __init__(self, entries: Iterable[Dict[str, str]] = (),
                 allowed_rules: Optional[Set[str]] = None) -> None:
        self.entries: List[Dict[str, str]] = []
        self._index: Set[Tuple[str, str, str]] = set()
        for entry in entries:
            rule = entry.get("rule", "")
            path = entry.get("path", "")
            message = entry.get("message", "")
            justification = entry.get("justification", "").strip()
            if allowed_rules is not None and rule not in allowed_rules:
                raise ConfigError(
                    f"baseline entry for {rule} not allowed: only "
                    f"{sorted(allowed_rules)} may be baselined")
            if not (rule and path and message and justification):
                raise ConfigError(
                    "baseline entries need rule, path, message and a "
                    f"non-empty justification: {entry!r}")
            if justification.startswith("FIXME"):
                raise ConfigError(
                    "baseline justification still reads FIXME — replace "
                    f"the --write-baseline placeholder: {entry!r}")
            self.entries.append(dict(entry))
            self._index.add((rule, path, message))

    @classmethod
    def load(cls, path: Path,
             allowed_rules: Optional[Set[str]] = None) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls((), allowed_rules)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return cls(payload.get("entries", ()), allowed_rules)

    def covers(self, finding: Finding) -> bool:
        """Whether a finding is grandfathered by this baseline."""
        return finding.fingerprint in self._index

    @staticmethod
    def render(findings: Sequence[Finding]) -> str:
        """Serialise findings as a fresh baseline document (to be
        hand-edited: every justification starts as ``FIXME``)."""
        entries = [{"rule": f.rule, "path": f.path, "message": f.message,
                    "justification": "FIXME: justify or fix"}
                   for f in sorted(findings, key=lambda f: f.fingerprint)]
        return json.dumps({"version": 1, "entries": entries}, indent=1,
                          sort_keys=True) + "\n"


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        """Human output: one line per finding plus a summary."""
        lines = [f.render() for f in self.findings]
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        verdict = "OK" if self.ok else f"{len(self.findings)} findings"
        lines.append(f"checked {self.files} files: {verdict}{suffix}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine output for ``--json``."""
        return json.dumps({
            "files": self.files,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "baselined": [f.to_json() for f in self.baselined],
        }, indent=1, sort_keys=True)


def _iter_sources(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _display_path(path: Path) -> str:
    """Stable repo-relative path when possible, else as given."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive (never on posix)
        rel = str(path)
    chosen = rel if not rel.startswith("..") else str(path)
    return Path(chosen).as_posix()


class Analyzer:
    """Runs a rule set over a file tree and folds in the baseline."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 baseline: Optional[Baseline] = None,
                 select: Optional[Iterable[str]] = None) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.id for rule in self.rules}
            if unknown:
                raise ConfigError(f"unknown rule ids: {sorted(unknown)}")
            self.rules = [r for r in self.rules if r.id in wanted]
        self.baseline = baseline or Baseline()

    # ------------------------------------------------------------------
    def load(self, paths: Iterable[str]) -> List[SourceFile]:
        """Parse every ``.py`` file under the given files/directories."""
        sources = []
        for path in _iter_sources(paths):
            text = path.read_text(encoding="utf-8")
            sources.append(SourceFile(path, _display_path(path), text))
        return sources

    def run(self, paths: Iterable[str]) -> Report:
        """Analyze a tree: per-file rules, cross-file rules, meta checks."""
        sources = self.load(paths)
        report = Report(files=len(sources))
        by_display = {src.display: src for src in sources}
        raw: List[Finding] = []
        for src in sources:
            if src.syntax_error is not None:
                report.findings.append(Finding(
                    rule=META_SYNTAX, path=src.display, line=1, col=0,
                    message=f"file does not parse: {src.syntax_error}"))
                continue
            for lineno in src.bad_noqa:
                report.findings.append(Finding(
                    rule=META_BAD_NOQA, path=src.display, line=lineno, col=0,
                    message="tdram noqa must name rules and a reason: "
                            "# tdram: noqa[SIM001] -- why"))
            for rule in self.rules:
                if rule.cross_file or rule.exempt(src):
                    continue
                raw.extend(rule.check(src))
        parsed = [s for s in sources if s.tree is not None]
        for rule in self.rules:
            if rule.cross_file:
                scoped = [s for s in parsed if not rule.exempt(s)]
                raw.extend(rule.check_project(scoped))
        for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
            src = by_display.get(finding.path)
            if src is not None and src.suppressed(finding):
                report.suppressed.append(finding)
            elif self.baseline.covers(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return report
