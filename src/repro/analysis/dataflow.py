"""Per-file fact extraction: the dataflow pass behind the cross-file rules.

One AST walk per source file produces a JSON-serialisable
:class:`FileFacts` record — every piece of information the cross-file
rules (SIM001/SIM006/SIM007/SIM011/SIM013–SIM018) and the call-graph
builder (:mod:`repro.analysis.callgraph`) need:

* function definitions with their outgoing edges (direct calls,
  method calls with a light local type inference, callback references,
  dispatch-table calls);
* class definitions with bases, methods, inferred attribute types,
  contract markers (``NotImplementedError`` bodies / ``abstractmethod``
  decorators), and the literal counter names each class touches;
* counter ``.add()``/``.declare()`` sites, literal counter reads, and
  ALL-CAPS ``*_CATEGORIES``/``*_COUNTERS`` declaring constants;
* attribute-access names, ``SystemConfig``-style field reads with
  their enclosing function, dataclass field tables;
* module-level literal constants (dispatch tables, ``OBS_ONLY``,
  ``BACKEND_COUNTERS``), the ``cache_key`` payload shape, and
  time-unit diagnostics (:mod:`repro.analysis.units`).

Because facts are plain dicts keyed by content hash, the analysis
cache (:class:`repro.analysis.engine.AnalysisCache`) can replay a warm
run without re-parsing a single file: the cross-file rules consume
facts, never trees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

#: Bump when the fact schema or any fact-driven rule's inputs change —
#: invalidates every cached analysis entry.
FACTS_VERSION = 1

#: Attribute names that hold a CounterSet by repo convention; literal
#: subscripts on these receivers are treated as counter reads.
COUNTER_RECEIVERS = {"outcomes", "events", "counters", "counts", "ops"}
#: Receivers additionally accepted as counter *increment* sites for the
#: orphan-counter rule (``prefetcher.stats.add("useful")``).
COUNTER_ADD_RECEIVERS = COUNTER_RECEIVERS | {"stats"}
#: Module-level ALL-CAPS constants with these suffixes declare counter
#: names produced dynamically (e.g. f-string categories).
DECLARING_SUFFIXES = ("_CATEGORIES", "_COUNTERS")
#: Local names conventionally bound to the (frozen) system config.
CONFIG_RECEIVERS = {"config", "cfg", "conf", "system_config", "sysconfig"}

#: Host wall-clock reads banned on sim-reachable paths (SIM001).
WALLCLOCK_CALLS = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
)

#: Scheduler entry points whose arguments run once per simulated event.
SCHEDULER_METHODS = {"at", "schedule"}


# ---------------------------------------------------------------------------
# Shared AST helpers (also used by repro.analysis.rules)
# ---------------------------------------------------------------------------
def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted origins.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter_ns as pc`` maps ``pc -> time.perf_counter_ns``.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                table[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return table


def dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, or None if dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def canonical(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name with the leading alias resolved through imports."""
    name = dotted(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def terminal(node: ast.AST) -> Optional[str]:
    """Last component of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _str_constants(node: ast.AST) -> List[str]:
    """Every string literal inside an expression, in source order."""
    return [n.value for n in ast.walk(node)
            if isinstance(n, ast.Constant) and isinstance(n.value, str)]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    return any(
        (terminal(d) or "") == "dataclass" or
        (isinstance(d, ast.Call) and (terminal(d.func) or "") == "dataclass")
        for d in node.decorator_list)


def _is_abstract_method(node: ast.AST) -> bool:
    """Whether a method is a contract hook subclasses must implement."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for deco in node.decorator_list:
        if (terminal(deco) or "") in ("abstractmethod", "abstractproperty"):
            return True
    for stmt in node.body:
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            exc = stmt.exc
            name = terminal(exc.func) if isinstance(exc, ast.Call) \
                else terminal(exc)
            if name == "NotImplementedError":
                return True
    return False


class FileFacts:
    """The extracted facts of one parsed source file (dict-backed)."""

    def __init__(self, data: Dict[str, object]) -> None:
        self.data = data

    def __getitem__(self, key: str) -> object:
        return self.data[key]

    def get(self, key: str, default: object = None) -> object:
        return self.data.get(key, default)

    @property
    def modkey(self) -> str:
        """Module identity used by the call graph (dotted repro path,
        or the bare basename for files outside the package)."""
        return str(self.data["modkey"])

    def to_json(self) -> Dict[str, object]:
        return self.data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FileFacts":
        return cls(data)


class _Extractor:
    """Single-pass walker building a :class:`FileFacts` record."""

    def __init__(self, tree: ast.Module, modkey: str) -> None:
        self.tree = tree
        self.modkey = modkey
        self.imports = import_map(tree)
        self.functions: Dict[str, Dict[str, object]] = {}
        self.classes: Dict[str, Dict[str, object]] = {}
        self.constants: Dict[str, Dict[str, object]] = {}
        self.dataclasses: List[Dict[str, object]] = []
        self.counter_adds: List[List[object]] = []
        self.counter_reads: List[List[object]] = []
        self.declared_counters: List[str] = []
        self.attr_reads: List[str] = []
        self.config_reads: List[Dict[str, object]] = []
        self.wallclock: List[Dict[str, object]] = []
        self.sched_closures: List[Dict[str, object]] = []
        self.sched_callbacks: List[Dict[str, object]] = []
        self.cachekey: Optional[Dict[str, object]] = None
        self.task_key_calls: List[Dict[str, object]] = []
        # walk state
        self._class_stack: List[Tuple[str, bool]] = []  # (name, counterish)
        self._fn_stack: List[str] = []
        self._env_stack: List[Dict[str, str]] = [{}]

    # ------------------------------------------------------------------
    def run(self) -> FileFacts:
        self._function_record("<module>", 1)
        for stmt in self.tree.body:
            self._module_constant(stmt)
        self._visit_body(self.tree.body)
        return FileFacts({
            "version": FACTS_VERSION,
            "modkey": self.modkey,
            "functions": self.functions,
            "classes": self.classes,
            "constants": self.constants,
            "dataclasses": self.dataclasses,
            "counter_adds": self.counter_adds,
            "counter_reads": self.counter_reads,
            "declared_counters": sorted(set(self.declared_counters)),
            "attr_reads": sorted(set(self.attr_reads)),
            "config_reads": self.config_reads,
            "wallclock": self.wallclock,
            "sched_closures": self.sched_closures,
            "sched_callbacks": self.sched_callbacks,
            "cachekey": self.cachekey,
            "task_key_calls": self.task_key_calls,
        })

    # ------------------------------------------------------------------
    @property
    def _fn(self) -> str:
        return self._fn_stack[-1] if self._fn_stack else "<module>"

    @property
    def _cls(self) -> Optional[str]:
        return self._class_stack[-1][0] if self._class_stack else None

    def _counterish_class(self) -> bool:
        return any(flag for _name, flag in self._class_stack)

    def _function_record(self, qual: str, line: int) -> Dict[str, object]:
        record = self.functions.get(qual)
        if record is None:
            record = {"line": line, "cls": self._cls, "calls": [],
                      "methods": [], "tables": [], "refs": []}
            self.functions[qual] = record
        return record

    # ------------------------------------------------------------------
    def _module_constant(self, stmt: ast.stmt) -> None:
        """Record module-level literal dict / string-sequence constants."""
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        record: Optional[Dict[str, object]] = None
        if isinstance(value, ast.Dict):
            keys = [k.value for k in value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)]
            str_values: Dict[str, str] = {}
            value_names: List[str] = []
            for key_node, val_node in zip(value.keys, value.values):
                if not (isinstance(key_node, ast.Constant)
                        and isinstance(key_node.value, str)):
                    continue
                if isinstance(val_node, ast.Constant) and \
                        isinstance(val_node.value, str):
                    str_values[key_node.value] = val_node.value
                else:
                    name = canonical(val_node, self.imports)
                    if name is not None:
                        value_names.append(name)
            record = {"kind": "dict", "keys": keys, "str_values": str_values,
                      "value_names": value_names, "line": stmt.lineno,
                      "col": stmt.col_offset}
        elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elts = [e.value for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)]
            if elts and len(elts) == len(value.elts):
                record = {"kind": "seq", "values": elts, "line": stmt.lineno,
                          "col": stmt.col_offset}
        if record is not None:
            for name in names:
                self.constants[name] = record

    # ------------------------------------------------------------------
    def _visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_function(node)
            return
        if isinstance(node, ast.ClassDef):
            self._enter_class(node)
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
        elif isinstance(node, ast.Attribute):
            self._record_attribute(node)
        elif isinstance(node, ast.Subscript):
            self._record_subscript(node)
        elif isinstance(node, ast.Assign):
            self._record_assign(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # ------------------------------------------------------------------
    def _enter_class(self, node: ast.ClassDef) -> None:
        base_names = [b for b in (canonical(b, self.imports)
                                  for b in node.bases) if b]
        counterish = any("Counter" in n
                         for n in [node.name] + [b.rsplit(".", 1)[-1]
                                                 for b in base_names])
        qual_prefix = f"{self._cls}." if self._cls else ""
        cls_name = f"{qual_prefix}{node.name}"
        methods: Dict[str, int] = {}
        required: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = stmt.lineno
                if _is_abstract_method(stmt):
                    required.append(stmt.name)
        attr_types: Dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                annotated = canonical(stmt.annotation, self.imports)
                if annotated is not None:
                    attr_types[stmt.target.id] = annotated
        self.classes[cls_name] = {
            "line": node.lineno, "bases": base_names, "methods": methods,
            "required": required, "attr_types": attr_types,
            "counter_literals": [], "dataclass": _is_dataclass_decorated(node),
        }
        if _is_dataclass_decorated(node):
            fields: List[List[object]] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name) and \
                        not stmt.target.id.startswith("_"):
                    annotation = ast.unparse(stmt.annotation)
                    if "ClassVar" in annotation:
                        continue
                    fields.append([stmt.target.id, stmt.lineno,
                                   stmt.col_offset, annotation])
            self.dataclasses.append({"name": cls_name, "line": node.lineno,
                                     "fields": fields})
        self._class_stack.append((cls_name, counterish))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._enter_function(stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._enter_class(stmt)
            else:
                self._visit(stmt)
        self._class_stack.pop()

    def _enter_function(self, node: ast.FunctionDef) -> None:
        qual = f"{self._cls}.{node.name}" if self._cls else \
            (f"{self._fn}.{node.name}" if self._fn != "<module>" else node.name)
        record = self._function_record(qual, node.lineno)
        # A nested def is a latent callback of its parent.
        if self._fn_stack:
            parent = self._function_record(self._fn, node.lineno)
            refs = parent["refs"]
            assert isinstance(refs, list)
            refs.append(["local", qual])
        env = self._local_env(node)
        self._fn_stack.append(qual)
        self._env_stack.append(env)
        if node.name == "cache_key" and self._cls is None:
            self._record_cachekey(node)
        snapshot_method = node.name in ("snapshot", "wear_summary")
        for stmt in node.body:
            self._visit(stmt)
        if snapshot_method and self._cls is not None:
            self._record_snapshot_keys(node)
        self._env_stack.pop()
        self._fn_stack.pop()
        # visit decorators/defaults in the enclosing scope
        for deco in node.decorator_list:
            self._visit(deco)
        for default in list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]:
            self._visit(default)

    def _local_env(self, node: ast.FunctionDef) -> Dict[str, str]:
        """Local name -> constructed/annotated type (light inference)."""
        env: Dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                annotated = canonical(arg.annotation, self.imports)
                if annotated is not None:
                    env[arg.arg] = annotated
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    stmt is not node:
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name) and \
                    isinstance(stmt.value, ast.Call):
                ctor = canonical(stmt.value.func, self.imports)
                if ctor is not None:
                    env[stmt.targets[0].id] = ctor
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                annotated = canonical(stmt.annotation, self.imports)
                if annotated is not None:
                    env[stmt.target.id] = annotated
        return env

    # ------------------------------------------------------------------
    def _receiver_type(self, node: ast.AST) -> Optional[str]:
        """Resolve a method-call receiver to a type descriptor."""
        if isinstance(node, ast.Name):
            return self._env_stack[-1].get(node.id)
        return None

    def _record_call(self, node: ast.Call) -> None:
        record = self._function_record(self._fn, node.lineno)
        calls = record["calls"]
        methods = record["methods"]
        tables = record["tables"]
        refs = record["refs"]
        assert isinstance(calls, list) and isinstance(methods, list)
        assert isinstance(tables, list) and isinstance(refs, list)
        func = node.func
        if isinstance(func, ast.Name):
            origin = self.imports.get(func.id, func.id)
            calls.append(origin)
        elif isinstance(func, ast.Attribute):
            name = canonical(func, self.imports)
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                methods.append(["self", func.attr])
            elif isinstance(receiver, ast.Attribute) and \
                    isinstance(receiver.value, ast.Name) and \
                    receiver.value.id == "self":
                methods.append(["selfattr", receiver.attr, func.attr])
            else:
                typed = self._receiver_type(receiver)
                if typed is not None:
                    methods.append(["var", typed, func.attr])
                elif name is not None and "." in name:
                    # fully dotted (module.func) — try direct resolution,
                    # fall back to dynamic dispatch on the terminal name
                    calls.append(name)
                    methods.append(["dyn", func.attr])
                else:
                    methods.append(["dyn", func.attr])
        elif isinstance(func, ast.Subscript):
            table = canonical(func.value, self.imports)
            if table is not None:
                tables.append(table)
        # callback references passed as arguments
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record_ref(refs, arg)
        # wall-clock / scheduler-closure / counter facts
        self._record_wallclock(node)
        self._record_scheduler(node)
        self._record_counter_call(node)
        self._record_task_key_call(node)

    def _record_ref(self, refs: List[object], node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            origin = self.imports.get(node.id, node.id)
            refs.append(["name", origin])
        elif isinstance(node, ast.Attribute):
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                refs.append(["self", node.attr])
            else:
                typed = self._receiver_type(receiver)
                if typed is not None:
                    refs.append(["var", typed, node.attr])

    def _record_assign(self, node: ast.Assign) -> None:
        # ALL-CAPS *_CATEGORIES/*_COUNTERS assignments declare counter
        # names at any nesting level (SIM006 parity).
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.isupper() and \
                    target.id.endswith(DECLARING_SUFFIXES):
                self.declared_counters.extend(_str_constants(node.value))
        # self.attr = Ctor(...) refines the class attribute-type table;
        # assignment of a bare function reference is a callback edge.
        record = self._function_record(self._fn, node.lineno)
        refs = record["refs"]
        assert isinstance(refs, list)
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            self._record_ref(refs, node.value)
        if self._cls is None:
            return
        ctor: Optional[str] = None
        if isinstance(node.value, ast.Call):
            ctor = canonical(node.value.func, self.imports)
        elif isinstance(node.value, ast.Name):
            # ``self.organization = organization`` — carry the
            # parameter's annotated type onto the attribute.
            ctor = self._env_stack[-1].get(node.value.id)
        if ctor is None:
            return
        cls = self.classes.get(self._cls)
        if cls is None:
            return
        attr_types = cls["attr_types"]
        assert isinstance(attr_types, dict)
        for target in node.targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                attr_types.setdefault(target.attr, ctor)

    # ------------------------------------------------------------------
    def _record_wallclock(self, node: ast.Call) -> None:
        name = canonical(node.func, self.imports)
        if name in WALLCLOCK_CALLS:
            self.wallclock.append({"fn": self._fn, "name": name,
                                   "line": node.lineno,
                                   "col": node.col_offset})

    def _record_scheduler(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in SCHEDULER_METHODS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            kind = None
            if isinstance(arg, ast.Lambda):
                kind = "lambda"
            elif isinstance(arg, ast.Call) and \
                    (terminal(arg.func) or "") == "partial":
                kind = "partial"
            if kind is not None:
                self.sched_closures.append({
                    "fn": self._fn, "kind": kind,
                    "line": arg.lineno, "col": arg.col_offset})
                continue
            # A plain callable argument is a dispatch root: the kernel
            # will invoke it once the event fires (callgraph seeds).
            ref: List[object] = []
            self._record_ref(ref, arg)
            if ref:
                self.sched_callbacks.append({
                    "fn": self._fn, "cls": self._cls or "",
                    "ref": ref[0], "line": arg.lineno})

    def _record_counter_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "add" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                receiver = terminal(func.value)
                self.declared_counters.append(arg.value)
                self.counter_adds.append([arg.value, arg.lineno,
                                          arg.col_offset, receiver or "",
                                          self._cls or ""])
        elif func.attr == "declare":
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    self.declared_counters.append(arg.value)
        elif func.attr == "total":
            receiver = terminal(func.value)
            counterish = receiver in COUNTER_RECEIVERS or (
                receiver == "self" and self._counterish_class())
            if counterish:
                for arg in node.args:
                    if isinstance(arg, (ast.Tuple, ast.List)):
                        for elt in arg.elts:
                            if isinstance(elt, ast.Constant) and \
                                    isinstance(elt.value, str):
                                self.counter_reads.append(
                                    [elt.value, elt.lineno, elt.col_offset])
        if func.attr == "add" and self._cls is not None and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                cls = self.classes.get(self._cls)
                if cls is not None:
                    literals = cls["counter_literals"]
                    assert isinstance(literals, list)
                    literals.append([arg.value, arg.lineno, arg.col_offset])

    def _record_subscript(self, node: ast.Subscript) -> None:
        receiver = terminal(node.value)
        counterish = receiver in COUNTER_RECEIVERS or (
            receiver == "self" and self._counterish_class())
        if counterish and isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            self.counter_reads.append(
                [node.slice.value, node.slice.lineno, node.slice.col_offset])

    def _record_attribute(self, node: ast.Attribute) -> None:
        self.attr_reads.append(node.attr)
        receiver = node.value
        receiver_name = terminal(receiver)
        config_like = receiver_name in CONFIG_RECEIVERS
        if not config_like and isinstance(receiver, ast.Name):
            typed = self._env_stack[-1].get(receiver.id, "")
            config_like = typed.rsplit(".", 1)[-1] == "SystemConfig"
        if not config_like and receiver_name == "self" and \
                self._cls == "SystemConfig":
            config_like = True
        if config_like and isinstance(node.ctx, ast.Load):
            self.config_reads.append({
                "fn": self._fn, "cls": self._cls, "field": node.attr,
                "line": node.lineno, "col": node.col_offset})

    # ------------------------------------------------------------------
    def _record_snapshot_keys(self, node: ast.FunctionDef) -> None:
        """Dict-literal keys returned by snapshot()/wear_summary()."""
        cls = self.classes.get(self._cls or "")
        if cls is None:
            return
        literals = cls["counter_literals"]
        assert isinstance(literals, list)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Return) and \
                    isinstance(stmt.value, ast.Dict):
                for key in stmt.value.keys:
                    if isinstance(key, ast.Constant) and \
                            isinstance(key.value, str):
                        literals.append([key.value, key.lineno,
                                         key.col_offset])

    def _record_cachekey(self, node: ast.FunctionDef) -> None:
        """Shape of the campaign cache-key payload dict (SIM014)."""
        payload_node: Optional[ast.Dict] = None
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Dict):
                keys = [k.value for k in stmt.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str)]
                if "config" in keys:
                    payload_node = stmt
                    break
        if payload_node is None:
            return
        payload: Dict[str, object] = {}
        for key_node, val_node in zip(payload_node.keys, payload_node.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                continue
            payload[key_node.value] = self._payload_descriptor(val_node)
        self.cachekey = {"fn": self._fn, "line": node.lineno,
                         "payload": payload}

    def _payload_descriptor(self, node: ast.AST) -> Dict[str, object]:
        if isinstance(node, ast.Call):
            fn = terminal(node.func) or ""
            arg = terminal(node.args[0]) if node.args else None
            skips = [kw.arg for kw in node.keywords if kw.arg]
            skips_obs_only = any(
                "OBS_ONLY" in _str_names(kw.value) for kw in node.keywords
                if kw.arg == "skip")
            return {"kind": "call", "callee": fn, "arg": arg,
                    "skips": skips, "skips_obs_only": skips_obs_only}
        if isinstance(node, ast.Dict):
            fields = sorted({n.attr for n in ast.walk(node)
                             if isinstance(n, ast.Attribute)})
            return {"kind": "fields", "fields": fields}
        if isinstance(node, (ast.Name, ast.Attribute)):
            return {"kind": "name", "name": dotted(node)}
        return {"kind": "expr"}

    def _record_task_key_call(self, node: ast.Call) -> None:
        """``cache_key(self.design, ...)`` — which task fields are keyed."""
        if (terminal(node.func) or "") != "cache_key" or self._cls is None:
            return
        attrs: List[str] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Attribute) and \
                    isinstance(arg.value, ast.Name) and \
                    arg.value.id == "self":
                attrs.append(arg.attr)
        self.task_key_calls.append({"cls": self._cls, "args": attrs,
                                    "line": node.lineno})


def _str_names(node: ast.AST) -> List[str]:
    """Every Name identifier inside an expression."""
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


def extract(tree: ast.Module, modkey: str) -> FileFacts:
    """Run the dataflow pass over one parsed module."""
    from repro.analysis.units import unit_diagnostics

    facts = _Extractor(tree, modkey).run()
    facts.data["unit_diagnostics"] = unit_diagnostics(tree)
    return facts
