"""Time-unit dimension checking (SIM015).

The kernel clock is integer picoseconds; timing tables carry
nanosecond floats (``t_rcd_ns``), bus rates carry ``_gbps``/``_ghz``,
and the only sanctioned bridges are the conversion helpers declared in
:data:`repro.config.system.TIME_UNIT_HELPERS` (``ns()`` going ns→ps,
``to_ns()`` going ps→ns). A unit slip — adding ``sim.now`` to a
``*_ns`` value, comparing a picosecond deadline against a nanosecond
latency — produces plausible-looking numbers that corrupt every
derived figure, which is why the checker treats units as dimensions:

* a value's unit is inferred from its name suffix (``_ps``, ``_ns``,
  ``_us``, ``_ms``, ``_gbps``, ``_ghz``), from ``sim.now`` (ps by
  kernel contract), or from the declared return unit of a conversion
  helper;
* units propagate through local assignments, ``min``/``max``/``abs``
  and ternaries, statement by statement inside each function;
* additive arithmetic (``+``/``-``) and ordering/equality comparisons
  between two *known, different* units are findings, as is calling a
  conversion helper with the wrong input unit or binding a
  unit-suffixed name to a value of another unit. Multiplicative
  arithmetic is exempt — it legitimately changes dimension.

A module may extend the helper table with its own module-level
``TIME_UNIT_HELPERS = {"to_us": ("ps", "us")}`` literal; the analysis
reads the declaration from the tree it is checking, so fixtures and
the real repo are handled identically.

The pass runs at fact-extraction time (:func:`unit_diagnostics`) and
stores its verdicts in the per-file facts, so warm cached runs replay
them without re-parsing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, ProjectContext, Rule, register

#: Identifier suffix -> unit dimension.
UNIT_SUFFIXES: Dict[str, str] = {
    "_ps": "ps", "_ns": "ns", "_us": "us", "_ms": "ms",
    "_gbps": "gbps", "_ghz": "ghz",
}

#: Built-in conversion helpers: callee name -> (input unit, output
#: unit). Mirrors :data:`repro.config.system.TIME_UNIT_HELPERS` (the
#: repo's declared table; a test asserts the two stay identical).
DEFAULT_TIME_UNIT_HELPERS: Dict[str, Tuple[str, str]] = {
    "ns": ("ns", "ps"),
    "to_ns": ("ps", "ns"),
}

#: Builtins that return one of their arguments unchanged (unit-wise).
_PASSTHROUGH = {"abs", "int", "float", "round"}
_CHOICE = {"min", "max"}


def _suffix_unit(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    for suffix, unit in UNIT_SUFFIXES.items():
        if name.endswith(suffix) and name != suffix.lstrip("_"):
            return unit
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _declared_helpers(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Merge module-level ``TIME_UNIT_HELPERS`` literals over defaults."""
    helpers = dict(DEFAULT_TIME_UNIT_HELPERS)
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "TIME_UNIT_HELPERS"
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            if isinstance(val, (ast.Tuple, ast.List)) and \
                    len(val.elts) == 2 and \
                    all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str) for e in val.elts):
                elems = [e.value for e in val.elts
                         if isinstance(e, ast.Constant)]
                helpers[key.value] = (str(elems[0]), str(elems[1]))
    return helpers


class _FunctionUnits:
    """Statement-ordered unit inference over one function body."""

    def __init__(self, helpers: Dict[str, Tuple[str, str]],
                 diagnostics: List[Dict[str, object]]) -> None:
        self.helpers = helpers
        self.diagnostics = diagnostics
        self.env: Dict[str, str] = {}
        self._seen: set = set()

    # ------------------------------------------------------------------
    def _diag(self, node: ast.AST, kind: str, message: str) -> None:
        # The same expression is evaluated both by the statement walker
        # and by binding inference; one diagnostic per site is enough.
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        marker = (line, col, kind, message)
        if marker in self._seen:
            return
        self._seen.add(marker)
        self.diagnostics.append({
            "kind": kind, "message": message, "line": line, "col": col})

    def unit_of(self, node: ast.AST) -> Optional[str]:
        """Infer the dimension of an expression, or None if unknown."""
        if isinstance(node, ast.Constant):
            return None  # literals are unitless and combine with anything
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or _suffix_unit(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr == "now" and _terminal(node.value) == "sim":
                return "ps"  # kernel contract: sim.now is integer ps
            return _suffix_unit(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.unit_of(node.body), self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node)
        if isinstance(node, ast.Call):
            return self._call_unit(node)
        return None

    def _binop_unit(self, node: ast.BinOp) -> Optional[str]:
        left, right = self.unit_of(node.left), self.unit_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                self._diag(
                    node, "mixed-arith",
                    f"mixed-unit arithmetic: {left} "
                    f"{'+' if isinstance(node.op, ast.Add) else '-'} "
                    f"{right} (convert through the declared helpers "
                    "before combining)")
                return None
            return left or right
        # *, /, //, % legitimately change dimension — no propagation.
        return None

    def _call_unit(self, node: ast.Call) -> Optional[str]:
        callee = _terminal(node.func)
        if callee in self.helpers:
            expected, produced = self.helpers[callee]
            if node.args:
                actual = self.unit_of(node.args[0])
                if actual is not None and actual != expected:
                    self._diag(
                        node, "helper-arg",
                        f"conversion helper {callee}() expects {expected} "
                        f"but is given a {actual} value")
            return produced
        if callee in _PASSTHROUGH and len(node.args) == 1:
            return self.unit_of(node.args[0])
        if callee in _CHOICE and node.args:
            units = {u for u in (self.unit_of(a) for a in node.args)
                     if u is not None}
            if len(units) > 1:
                self._diag(
                    node, "mixed-compare",
                    f"{callee}() over mixed units "
                    f"({', '.join(sorted(units))}) compares "
                    "incommensurable quantities")
                return None
            return next(iter(units), None)
        return _suffix_unit(callee)  # e.g. a local now_ns()/elapsed_us()

    # ------------------------------------------------------------------
    def check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self.unit_of(o) for o in operands]
        for left, right, lu, ru in zip(operands, operands[1:],
                                       units, units[1:]):
            if lu is not None and ru is not None and lu != ru:
                self._diag(
                    node, "mixed-compare",
                    f"comparison between {lu} and {ru} values; convert "
                    "to a common unit first")

    def bind(self, name: str, node: ast.AST, value: ast.AST) -> None:
        unit = self.unit_of(value)
        declared = _suffix_unit(name)
        if declared is not None and unit is not None and declared != unit:
            self._diag(
                node, "suffix-assign",
                f"'{name}' declares {declared} by suffix but is assigned "
                f"a {unit} value")
        if unit is not None:
            self.env[name] = unit
        elif declared is not None:
            self.env.setdefault(name, declared)

    # ------------------------------------------------------------------
    def run(self, fn: ast.FunctionDef) -> None:
        args = fn.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            unit = _suffix_unit(arg.arg)
            if unit is not None:
                self.env[arg.arg] = unit
        self._walk(fn.body)

    def _walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes get their own walker
        if isinstance(stmt, ast.Assign):
            self._expression(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.bind(target.id, stmt, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._expression(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.bind(stmt.target.id, stmt, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._expression(stmt.value)
            if isinstance(stmt.target, ast.Name) and \
                    isinstance(stmt.op, (ast.Add, ast.Sub)):
                left = self.env.get(stmt.target.id) or \
                    _suffix_unit(stmt.target.id)
                right = self.unit_of(stmt.value)
                if left is not None and right is not None and left != right:
                    self._diag(
                        stmt, "mixed-arith",
                        f"mixed-unit arithmetic: {left} "
                        f"{'+' if isinstance(stmt.op, ast.Add) else '-'}= "
                        f"{right}")
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._statement(child)
                elif isinstance(child, ast.expr):
                    self._expression(child)

    def _expression(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare):
                self.check_compare(sub)
            elif isinstance(sub, ast.BinOp):
                self.unit_of(sub)  # runs the mixed-arith check
            elif isinstance(sub, ast.Call):
                self._call_unit(sub)  # runs the helper-arg check


def unit_diagnostics(tree: ast.Module) -> List[Dict[str, object]]:
    """Run the unit checker over every function in a parsed module."""
    helpers = _declared_helpers(tree)
    diagnostics: List[Dict[str, object]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionUnits(helpers, diagnostics).run(node)
    # Module-level statements run through a walker of their own.
    module_walker = _FunctionUnits(helpers, diagnostics)
    module_walker._walk([s for s in tree.body
                         if not isinstance(s, (ast.FunctionDef,
                                               ast.AsyncFunctionDef,
                                               ast.ClassDef))])
    return diagnostics


@register
class TimeUnitSoundness(Rule):
    """SIM015 — no mixed-unit time arithmetic or comparisons."""

    id = "SIM015"
    title = "time-unit dimension checking"
    cross_file = True
    rationale = (
        "The kernel clock is integer picoseconds; timing tables are "
        "nanosecond floats; bus rates are _gbps/_ghz. Units are "
        "inferred from name suffixes, sim.now, and the conversion "
        "helpers declared in repro.config.system.TIME_UNIT_HELPERS "
        "(ns() goes ns->ps, to_ns() goes ps->ns) and propagated "
        "through local assignments. Adding or comparing two values of "
        "different known units — or feeding a helper the wrong input "
        "unit — silently corrupts every latency and bandwidth figure "
        "derived from the run, so it is a finding, not a warning.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for display, facts in sorted(project.facts.items()):
            diagnostics = facts.get("unit_diagnostics", [])
            assert isinstance(diagnostics, list)
            for diag in diagnostics:
                yield Finding(
                    rule=self.id, path=display,
                    line=int(diag["line"]), col=int(diag["col"]),
                    message=str(diag["message"]))
