"""Command-line front end for the lint engine.

Installed two ways::

    python -m repro.analysis src/repro          # module form
    tdram-repro lint src/repro --json           # CLI subcommand

Output formats: ``text`` (default, one editor-clickable line per
finding), ``json`` (the report document), and ``sarif`` (SARIF 2.1.0
for GitHub code-scanning annotations). ``--explain SIM014`` prints
one rule's catalogue entry; ``--cache-dir`` attaches the
content-hash-keyed analysis cache so warm repo-wide runs skip
parsing.

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.engine import (
    AnalysisCache,
    Analyzer,
    Baseline,
    Report,
    all_rules,
)
from repro.analysis.rules import BASELINE_RULES
from repro.errors import ConfigError

#: Default baseline location, repo-relative (missing file = empty).
DEFAULT_BASELINE = "tools/lint_baseline.json"

#: SARIF 2.1.0 boilerplate (the schema GitHub code scanning ingests).
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
_DOCS_URI = ("https://github.com/tdram-repro/tdram-repro/blob/main/"
             "docs/static-analysis.md")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdram-repro lint",
        description="Simulator-aware static analysis (rules SIM001-SIM018; "
                    "catalogue in docs/static-analysis.md).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default src/repro)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline path "
                             "(justifications start as FIXME) and exit")
    parser.add_argument("--format", dest="format", default=None,
                        choices=("text", "json", "sarif"),
                        help="output format (default text)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output (same as "
                             "--format json)")
    parser.add_argument("--cache-dir", default=None,
                        help="attach the content-hash analysis cache at "
                             "this directory (warm runs skip parsing)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and run cold")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's catalogue entry "
                             "(docstring + rationale) and exit")
    return parser


def _render_rules() -> str:
    lines = []
    for rule in all_rules():
        if rule.id.startswith("LNT"):
            continue
        kind = "cross-file" if rule.cross_file else "per-file"
        lines.append(f"{rule.id}  {rule.title}  [{kind}]")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _explain(rule_id: str) -> Optional[str]:
    """One rule's self-explanation, assembled from its docstring."""
    for rule in all_rules():
        if rule.id != rule_id:
            continue
        kind = "cross-file" if rule.cross_file else "per-file"
        doc = inspect.getdoc(type(rule)) or ""
        lines = [f"{rule.id} — {rule.title} [{kind}]", ""]
        if doc:
            lines.extend([doc, ""])
        lines.append(rule.rationale)
        lines.append("")
        lines.append(f"Suppress inline with: # tdram: noqa[{rule.id}] "
                     "-- reason")
        lines.append("Worked examples: docs/static-analysis.md")
        return "\n".join(lines)
    return None


def to_sarif(report: Report) -> Dict[str, object]:
    """Render a report as a SARIF 2.1.0 document (code scanning)."""
    rules = []
    for rule in all_rules():
        rules.append({
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title or rule.id},
            "fullDescription": {"text": rule.rationale or rule.title
                                or rule.id},
            "helpUri": f"{_DOCS_URI}#{rule.id.lower()}",
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path,
                                         "uriBaseId": "%SRCROOT%"},
                    "region": {"startLine": max(1, finding.line),
                               "startColumn": finding.col + 1},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "tdram-repro-lint",
                "informationUri": _DOCS_URI,
                "rules": rules,
            }},
            "results": results,
        }],
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis`` / ``tdram-repro lint``."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    if args.explain:
        text = _explain(args.explain.strip())
        if text is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"lint: unknown rule {args.explain!r} (known: {known})",
                  file=sys.stderr)
            return 2
        print(text)
        return 0
    output = args.format or ("json" if args.json else "text")
    select = args.select.split(",") if args.select else None
    baseline_path = Path(args.baseline)
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = AnalysisCache(Path(args.cache_dir))
    try:
        baseline = Baseline() if (args.no_baseline or args.write_baseline) \
            else Baseline.load(baseline_path, allowed_rules=set(BASELINE_RULES))
        analyzer = Analyzer(select=select, baseline=baseline, cache=cache)
        report = analyzer.run(args.paths)
    except (ConfigError, OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        not_allowed = [f for f in report.findings
                       if f.rule not in BASELINE_RULES]
        if not_allowed:
            for finding in not_allowed:
                print(finding.render(), file=sys.stderr)
            print(f"lint: {len(not_allowed)} findings are for rules that "
                  f"cannot be baselined ({sorted(BASELINE_RULES)} only); "
                  "fix or suppress them inline first", file=sys.stderr)
            return 2
        baseline_path.write_text(Baseline.render(report.findings),
                                 encoding="utf-8")
        print(f"wrote {len(report.findings)} entries to {baseline_path} "
              "(edit every FIXME justification)")
        return 0
    if output == "sarif":
        print(json.dumps(to_sarif(report), indent=1, sort_keys=True))
    elif output == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
