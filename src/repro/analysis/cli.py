"""Command-line front end for the lint engine.

Installed two ways::

    python -m repro.analysis src/repro          # module form
    tdram-repro lint src/repro --json           # CLI subcommand

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import Analyzer, Baseline, all_rules
from repro.analysis.rules import BASELINE_RULES
from repro.errors import ConfigError

#: Default baseline location, repo-relative (missing file = empty).
DEFAULT_BASELINE = "tools/lint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdram-repro lint",
        description="Simulator-aware static analysis (rules SIM001-SIM011; "
                    "catalogue in docs/static-analysis.md).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default src/repro)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline path "
                             "(justifications start as FIXME) and exit")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _render_rules() -> str:
    lines = []
    for rule in all_rules():
        if rule.id.startswith("LNT"):
            continue
        kind = "cross-file" if rule.cross_file else "per-file"
        lines.append(f"{rule.id}  {rule.title}  [{kind}]")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis`` / ``tdram-repro lint``."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    select = args.select.split(",") if args.select else None
    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline() if (args.no_baseline or args.write_baseline) \
            else Baseline.load(baseline_path, allowed_rules=set(BASELINE_RULES))
        analyzer = Analyzer(select=select, baseline=baseline)
        report = analyzer.run(args.paths)
    except (ConfigError, OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        not_allowed = [f for f in report.findings
                       if f.rule not in BASELINE_RULES]
        if not_allowed:
            for finding in not_allowed:
                print(finding.render(), file=sys.stderr)
            print(f"lint: {len(not_allowed)} findings are for rules that "
                  f"cannot be baselined ({sorted(BASELINE_RULES)} only); "
                  "fix or suppress them inline first", file=sys.stderr)
            return 2
        baseline_path.write_text(Baseline.render(report.findings),
                                 encoding="utf-8")
        print(f"wrote {len(report.findings)} entries to {baseline_path} "
              "(edit every FIXME justification)")
        return 0
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
