"""The SIM001–SIM013 rule set: simulator invariants as lint rules.

Each rule encodes one invariant the simulator's reproducibility or
result integrity depends on; the rationale strings below are surfaced
by ``tdram-repro lint --list-rules`` and expanded with examples in
``docs/static-analysis.md``. Rules are registered with the engine via
the :func:`repro.analysis.engine.register` decorator.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceFile, register

#: Cross-file rules whose findings may live in the committed baseline
#: (with justification); everything else must be fixed or suppressed
#: inline at the use site.
BASELINE_RULES = frozenset({"SIM006", "SIM007"})

#: All rule ids this module provides, in catalogue order.
SIM_RULES = tuple(f"SIM{n:03d}" for n in range(1, 14))

#: Module basenames that are user-interface entry points (SIM010 and
#: the wall-clock rule do not apply: a CLI may print and show ETAs).
_CLI_BASENAMES = {"cli", "__main__"}


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted origins.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter_ns as pc`` maps ``pc -> time.perf_counter_ns``.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                table[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return table


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, or None if dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _canonical(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name with the leading alias resolved through imports."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def _terminal(node: ast.AST) -> Optional[str]:
    """Last component of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class NoWallClock(Rule):
    """SIM001 — no host wall-clock reads in simulated components."""

    id = "SIM001"
    title = "no wall-clock in sim paths"
    rationale = (
        "Simulated time is the kernel's integer picosecond clock; any "
        "host-clock read (time.time, perf_counter, datetime.now) inside "
        "a simulated component leaks nondeterminism into results and "
        "invalidates the campaign cache key, which assumes a run is a "
        "pure function of (design, workload, config, seed).")

    _BANNED = (
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    )

    def exempt(self, source: SourceFile) -> bool:
        # Host-side orchestration (campaign ETA displays, deadline
        # supervision, report generation, this analysis package) may
        # read the host clock; simulated components may not.
        return (source.in_module("repro.experiments", "repro.analysis",
                                 "repro.resilience")
                or source.basename in _CLI_BASENAMES)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imports = _import_map(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical(node.func, imports)
            if name in self._BANNED:
                yield self.finding(
                    source, node,
                    f"wall-clock read {name}() in a sim path; simulated "
                    "components must use the kernel clock (sim.now)")


@register
class NoUnseededRandomness(Rule):
    """SIM002 — all randomness flows through a seeded generator."""

    id = "SIM002"
    title = "no unseeded randomness"
    rationale = (
        "Module-level draws (random.random, np.random.rand) share hidden "
        "global state seeded from the OS, so two runs with the same seed "
        "diverge and the on-disk result cache silently serves results no "
        "run can reproduce. Construct random.Random(seed) or "
        "np.random.default_rng(seed) and thread it explicitly.")

    #: Constructors that *are* the approved seeding mechanism — allowed
    #: only when given an explicit seed/bit-generator argument.
    _SEEDED = {
        "random.Random", "numpy.random.default_rng",
        "numpy.random.Generator", "numpy.random.SeedSequence",
        "numpy.random.PCG64", "numpy.random.Philox", "numpy.random.MT19937",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imports = _import_map(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical(node.func, imports)
            if name is None or not (name.startswith("random.")
                                    or name.startswith("numpy.random.")):
                continue
            if name in self._SEEDED:
                if node.args or node.keywords:
                    continue
                yield self.finding(
                    source, node,
                    f"{name}() constructed without an explicit seed")
                continue
            yield self.finding(
                source, node,
                f"unseeded module-level randomness {name}(); draw from a "
                "seeded Generator passed in explicitly")


@register
class NoFloatTimeEquality(Rule):
    """SIM003 — no float ``==``/``!=`` on tick or timestamp values."""

    id = "SIM003"
    title = "no float equality on timestamps"
    rationale = (
        "Integer picoseconds (*_ps, sim.now) compare exactly; converted "
        "float nanoseconds/microseconds (*_ns, *_us, to_ns(...)) do not. "
        "An equality test on the float form works until one timing "
        "parameter changes the rounding, then silently never fires.")

    _SUFFIXES = ("_ns", "_us", "_ms")
    _CONVERTERS = {"to_ns", "now_ns"}

    def _is_float_time(self, node: ast.AST) -> bool:
        terminal = _terminal(node)
        if terminal is not None:
            if terminal in self._CONVERTERS:
                return True
            if any(terminal.endswith(s) for s in self._SUFFIXES):
                return True
        if isinstance(node, ast.Call):
            func = _terminal(node.func)
            return func in self._CONVERTERS
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = next((o for o in (left, right)
                                if self._is_float_time(o)), None)
                if culprit is not None:
                    yield self.finding(
                        source, node,
                        f"float equality on timestamp expression "
                        f"'{ast.unparse(culprit)}'; compare the integer "
                        "picosecond form instead")


@register
class NoMutableDefaults(Rule):
    """SIM004 — no mutable default arguments."""

    id = "SIM004"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default ([], {}, set()) is created once at import and "
        "shared by every call — state leaks across simulations within "
        "one process, so a second run in the same interpreter sees the "
        "first run's leftovers (exactly what the campaign worker pool, "
        "which reuses processes, would amplify).")

    _FACTORIES = {"list", "dict", "set", "defaultdict", "deque",
                  "bytearray", "OrderedDict", "Counter"}

    def _mutable(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _terminal(node.func) in self._FACTORIES
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        source, default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside the body")


@register
class NoConfigMutation(Rule):
    """SIM005 — event handlers must not mutate the system configuration."""

    id = "SIM005"
    title = "no SystemConfig mutation"
    rationale = (
        "SystemConfig is frozen and hashed into the campaign cache key "
        "before the run starts; a component mutating it mid-run (via "
        "attribute assignment or object.__setattr__) would make the key "
        "lie about what was simulated. Derive a new config with "
        "config.with_(...) before the simulator is built instead.")

    _CONFIG_NAMES = {"config", "cfg", "conf", "system_config", "sysconfig"}

    def _config_like(self, node: ast.AST) -> bool:
        terminal = _terminal(node)
        return terminal in self._CONFIG_NAMES

    def exempt(self, source: SourceFile) -> bool:
        # The config package itself may use frozen-dataclass plumbing.
        return source.in_module("repro.config")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            self._config_like(target.value):
                        yield self.finding(
                            source, node,
                            f"assignment to configuration attribute "
                            f"'{ast.unparse(target)}'; configs are frozen "
                            "inputs — use with_() before the run")
            elif isinstance(node, ast.Call):
                func = _dotted(node.func)
                if func in ("setattr", "object.__setattr__") and node.args \
                        and self._config_like(node.args[0]):
                    yield self.finding(
                        source, node,
                        "setattr on a configuration object; configs are "
                        "frozen inputs — use with_() before the run")


#: Attribute names that hold a CounterSet by repo convention; literal
#: subscripts on these receivers are treated as counter reads.
_COUNTER_RECEIVERS = {"outcomes", "events", "counters", "counts", "ops"}
#: Module-level ALL-CAPS constants with these suffixes declare counter
#: names produced dynamically (e.g. f-string categories).
_DECLARING_SUFFIXES = ("_CATEGORIES", "_COUNTERS")


@register
class CountersDeclared(Rule):
    """SIM006 — every literal counter read is declared somewhere."""

    id = "SIM006"
    title = "counter reads must be declared"
    cross_file = True
    rationale = (
        "CounterSet.__getitem__ returns 0 for unknown names, so a typo "
        "in a read site ('writeback' vs 'writebacks') reports a silent "
        "zero forever. Every name read via a literal subscript or "
        ".total((...)) must appear in an .add()/.declare() call or a "
        "*_CATEGORIES/*_COUNTERS constant somewhere in the tree.")

    def _declared(self, sources: Sequence[SourceFile]) -> Set[str]:
        names: Set[str] = set()
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("add", "declare"):
                    for arg in node.args[:1] if node.func.attr == "add" \
                            else node.args:
                        if isinstance(arg, ast.Constant) and \
                                isinstance(arg.value, str):
                            names.add(arg.value)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and \
                                target.id.isupper() and \
                                target.id.endswith(_DECLARING_SUFFIXES):
                            for const in ast.walk(node.value):
                                if isinstance(const, ast.Constant) and \
                                        isinstance(const.value, str):
                                    names.add(const.value)
        return names

    def _reads(self, src: SourceFile) -> Iterator[Tuple[ast.AST, str]]:
        # Inside a class whose name (or base name) mentions "Counter",
        # ``self[...]``/``self.total(...)`` are counter reads too.
        class_stack: List[bool] = []

        def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
            if isinstance(node, ast.ClassDef):
                names = [node.name] + \
                    [t for t in (_terminal(b) for b in node.bases) if t]
                class_stack.append(any("Counter" in n for n in names))
            if isinstance(node, ast.Subscript):
                receiver = _terminal(node.value)
                counterish = receiver in _COUNTER_RECEIVERS or (
                    receiver == "self" and any(class_stack))
                if counterish and isinstance(node.slice, ast.Constant) and \
                        isinstance(node.slice.value, str):
                    yield node, node.slice.value
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "total":
                receiver = _terminal(node.func.value)
                if receiver in _COUNTER_RECEIVERS or (
                        receiver == "self" and any(class_stack)):
                    for arg in node.args:
                        if isinstance(arg, (ast.Tuple, ast.List)):
                            for elt in arg.elts:
                                if isinstance(elt, ast.Constant) and \
                                        isinstance(elt.value, str):
                                    yield elt, elt.value
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if isinstance(node, ast.ClassDef):
                class_stack.pop()

        yield from visit(src.tree)

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        declared = self._declared(sources)
        for src in sources:
            for node, name in self._reads(src):
                if name not in declared:
                    yield self.finding(
                        src, node,
                        f"counter '{name}' is read but never added or "
                        "declared anywhere in the tree (reads of unknown "
                        "counters silently return 0)")


@register
class ConfigKnobsConsumed(Rule):
    """SIM007 — every config dataclass field is consumed somewhere."""

    id = "SIM007"
    title = "no dead configuration knobs"
    cross_file = True
    rationale = (
        "A sweep over a config field nothing reads produces distinct "
        "cache keys for identical simulations — quiet nonsense that "
        "looks like a null result. Every field of the *Config "
        "dataclasses must have at least one attribute-access consumer "
        "in the tree (or a baseline entry explaining why it stays).")

    def _config_classes(self, sources: Sequence[SourceFile]) \
            -> Iterator[Tuple[SourceFile, ast.ClassDef]]:
        for src in sources:
            defines_configs = src.in_module("repro.config")
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                decorated = any(
                    (_terminal(d) or "") == "dataclass" or
                    (isinstance(d, ast.Call) and
                     (_terminal(d.func) or "") == "dataclass")
                    for d in node.decorator_list)
                if decorated and (defines_configs
                                  or node.name.endswith("Config")):
                    yield src, node

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        consumed: Set[str] = set()
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Attribute):
                    consumed.add(node.attr)
        for src, cls in self._config_classes(sources):
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or \
                        not isinstance(stmt.target, ast.Name):
                    continue
                name = stmt.target.id
                if name.startswith("_"):
                    continue
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                if name not in consumed:
                    yield self.finding(
                        src, stmt,
                        f"config field {cls.name}.{name} is never consumed "
                        "(no attribute access anywhere in the tree) — a "
                        "dead knob that still perturbs the cache key")


@register
class NoSetIterationOrder(Rule):
    """SIM008 — no ordering-sensitive iteration over sets."""

    id = "SIM008"
    title = "no unordered set iteration"
    cross_file = False
    rationale = (
        "String hashing is salted per interpreter (PYTHONHASHSEED), so "
        "iterating a set yields a different order every process — any "
        "list, JSON document, or schedule built from it differs across "
        "runs and workers. Wrap the set in sorted() before iterating.")

    _CONSUMERS = {"list", "tuple", "enumerate", "iter"}

    def _set_like(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and \
                _dotted(node.func) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
            return self._set_like(node.left) or self._set_like(node.right)
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = _dotted(node.func)
                if func in self._CONSUMERS and node.args:
                    iters.append(node.args[0])
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "join" and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                if self._set_like(candidate):
                    yield self.finding(
                        source, candidate,
                        "iteration over a set has salted-hash order; wrap "
                        "in sorted() to keep output deterministic")


@register
class PublicApiDocstrings(Rule):
    """SIM009 — public ``repro.obs``/``repro.ras`` APIs keep docstrings."""

    id = "SIM009"
    title = "public obs/ras APIs documented"
    rationale = (
        "The observability and RAS layers are the repo's debugging "
        "surface; CI has gated them at 100% public docstring coverage "
        "since they shipped. This rule absorbs tools/check_docstrings.py "
        "so one engine reports everything.")

    def exempt(self, source: SourceFile) -> bool:
        return not source.in_module("repro.obs", "repro.ras")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if ast.get_docstring(source.tree) is None:
            yield self.finding(source, source.tree,
                               "public module is missing a docstring")
        stack: List[Tuple[str, ast.AST]] = [("", source.tree)]
        while stack:
            prefix, node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    name = f"{prefix}{child.name}"
                    stack.append((f"{name}.", child))
                    if not child.name.startswith("_") and \
                            ast.get_docstring(child) is None:
                        yield self.finding(
                            source, child,
                            f"public API {name} is missing a docstring")


@register
class NoPrintInLibrary(Rule):
    """SIM010 — no ``print()`` in library code."""

    id = "SIM010"
    title = "no print() outside CLI modules"
    rationale = (
        "Library-level prints corrupt machine-readable output (JSON "
        "results on stdout), interleave nondeterministically under the "
        "campaign process pool, and can't be silenced by callers. "
        "Return strings or write to an explicit stream; only CLI entry "
        "points own stdout.")

    def exempt(self, source: SourceFile) -> bool:
        return source.basename in _CLI_BASENAMES

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "print":
                yield self.finding(
                    source, node,
                    "print() in library code; return a string or take an "
                    "explicit stream (CLI modules own stdout)")


@register
class NoClosureOnDispatchPath(Rule):
    """SIM011 — no per-event closure allocation on dispatch paths."""

    id = "SIM011"
    title = "no closures in event scheduling"
    rationale = (
        "sim.at()/sim.schedule() run once per simulated event — the "
        "hottest loop in the tree. A lambda (or functools.partial) "
        "argument allocates a fresh closure and cell objects for every "
        "event; the scheduler already stores trailing arguments on the "
        "event handle, so ``sim.at(t, self._writeback, block)`` carries "
        "the same state with zero extra allocation. The campaign-scale "
        "cost of the closure idiom is what the ladder-queue rewrite "
        "removed; this rule keeps it from creeping back into "
        "repro.sim/cache/dram.")

    _SCHEDULERS = {"at", "schedule"}

    def exempt(self, source: SourceFile) -> bool:
        # Only the per-event dispatch paths are hot enough to matter;
        # host-side orchestration and tests may close over freely.
        return not source.in_module("repro.sim", "repro.cache",
                                    "repro.dram")

    def _is_partial(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and \
            (_terminal(node.func) or "") == "partial"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal(node.func) not in self._SCHEDULERS:
                continue
            # Only method-style calls (sim.at(...), self.sim.schedule())
            # are scheduler calls; a bare at()/schedule() name is
            # something else.
            if not isinstance(node.func, ast.Attribute):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        source, arg,
                        "lambda allocated per scheduled event; pass the "
                        "callable and its arguments separately — "
                        "at(t, callback, *args) stores them on the handle")
                elif self._is_partial(arg):
                    yield self.finding(
                        source, arg,
                        "functools.partial allocated per scheduled event; "
                        "at(t, callback, *args) already carries trailing "
                        "arguments without the extra object")


@register
class NoSilentExceptionSwallow(Rule):
    """SIM012 — no silently swallowed broad exceptions in the harness."""

    id = "SIM012"
    title = "no silent broad except in harness code"
    rationale = (
        "The campaign harness survives worker crashes, hung tasks, and "
        "corrupt cache entries by *counting and reporting* every "
        "failure; a bare/broad except whose body is just pass hides the "
        "exact faults the resilience layer exists to surface — a "
        "swallowed OSError in a store path silently re-simulates, a "
        "swallowed pool error silently drops tasks. Catch the narrow "
        "type, or record the failure (counter, manifest row, journal "
        "record) before continuing.")

    _BROAD = {"Exception", "BaseException"}

    def exempt(self, source: SourceFile) -> bool:
        # Only harness/orchestration code is held to this: the engine,
        # the resilience layer, and their CLI plumbing.
        return not source.in_module("repro.experiments", "repro.resilience")

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = [handler.type]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        return any((_terminal(name) or "") in self._BROAD for name in names)

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Constant) and \
                    stmt.value.value is Ellipsis:
                continue
            return False
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and self._swallows(node):
                caught = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                yield self.finding(
                    source, node,
                    f"{caught} silently swallowed in harness code; catch "
                    "the narrow exception or count/report the failure "
                    "before continuing")


@register
class DesignsRegisteredInCli(Rule):
    """SIM013 — every registered design appears in the CLI design table."""

    id = "SIM013"
    title = "no dead designs (registry vs CLI table)"
    cross_file = True
    rationale = (
        "repro.cache.DESIGNS is what campaigns can simulate; the CLI's "
        "_DESIGN_SUMMARIES table is what users can discover. A design "
        "present in only one of them is either unreachable from the "
        "command line (dead code that still bloats the registry) or a "
        "documented name every campaign rejects. The two tables must "
        "list exactly the same design names.")

    def _literal_keys(self, tree: ast.Module, target_name: str) \
            -> Optional[Tuple[ast.AST, Set[str]]]:
        """String keys of a module-level ``target_name = {...}`` literal."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            if not any(isinstance(t, ast.Name) and t.id == target_name
                       for t in targets):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            keys = {k.value for k in node.value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)}
            return node, keys
        return None

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        registry = table = None
        reg_src = cli_src = None
        for src in sources:
            if src.in_module("repro.cache") and src.basename == "__init__":
                registry = self._literal_keys(src.tree, "DESIGNS")
                reg_src = src
            elif src.in_module("repro.experiments") and src.basename == "cli":
                table = self._literal_keys(src.tree, "_DESIGN_SUMMARIES")
                cli_src = src
        # Inert when either side is missing (e.g. linting a subtree).
        if registry is None or table is None:
            return
        reg_node, reg_keys = registry
        cli_node, cli_keys = table
        for name in sorted(reg_keys - cli_keys):
            yield self.finding(
                cli_src, cli_node,
                f"design '{name}' is registered in repro.cache.DESIGNS but "
                "missing from the CLI _DESIGN_SUMMARIES table — "
                "undiscoverable from the command line")
        for name in sorted(cli_keys - reg_keys):
            yield self.finding(
                reg_src, reg_node,
                f"design '{name}' is listed in the CLI _DESIGN_SUMMARIES "
                "table but not registered in repro.cache.DESIGNS — every "
                "campaign will reject it")
