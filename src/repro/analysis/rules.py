"""The SIM001–SIM016 core rule set: simulator invariants as lint rules.

Each rule encodes one invariant the simulator's reproducibility or
result integrity depends on; the rationale strings below are surfaced
by ``tdram-repro lint --list-rules``/``--explain`` and expanded with
examples in ``docs/static-analysis.md``. Rules are registered with the
engine via the :func:`repro.analysis.engine.register` decorator.
SIM014 lives in :mod:`repro.analysis.cachekey`, SIM015 in
:mod:`repro.analysis.units`, and SIM017/SIM018 in
:mod:`repro.analysis.contracts`.

Scoping: the historical module-prefix lists (``repro.sim``/``cache``/
``dram`` are hot, ``repro.experiments`` is host-side) remain as a
conservative floor, and the rules that police the dispatch path
(SIM001, SIM011) additionally consult the sim-reachability call graph
(:mod:`repro.analysis.callgraph`): a function *proven* reachable from
the kernel dispatch entry points is held to the sim invariants no
matter which module it lives in.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    COUNTER_ADD_RECEIVERS,
    FileFacts,
    canonical as _canonical,
    dotted as _dotted,
    terminal as _terminal,
    import_map as _import_map,
)
from repro.analysis.engine import (
    Finding,
    ProjectContext,
    Rule,
    SourceFile,
    register,
)

#: Cross-file rules whose findings may live in the committed baseline
#: (with justification); everything else must be fixed or suppressed
#: inline at the use site.
BASELINE_RULES = frozenset({"SIM006", "SIM007", "SIM016"})

#: All rule ids the analysis package provides, in catalogue order.
SIM_RULES = tuple(f"SIM{n:03d}" for n in range(1, 19))

#: Module basenames that are user-interface entry points (SIM010 and
#: the wall-clock rule do not apply: a CLI may print and show ETAs).
_CLI_BASENAMES = {"cli", "__main__"}


def _modkey_in(modkey: str, *prefixes: str) -> bool:
    """Module-prefix test on a facts module key (dotted or basename)."""
    return any(modkey == p or modkey.startswith(p + ".") for p in prefixes)


def _modkey_basename(modkey: str) -> str:
    return modkey.rsplit(".", 1)[-1]


@register
class NoWallClock(Rule):
    """SIM001 — no host wall-clock reads in simulated components."""

    id = "SIM001"
    title = "no wall-clock in sim paths"
    cross_file = True
    rationale = (
        "Simulated time is the kernel's integer picosecond clock; any "
        "host-clock read (time.time, perf_counter, datetime.now) inside "
        "a simulated component leaks nondeterminism into results and "
        "invalidates the campaign cache key, which assumes a run is a "
        "pure function of (design, workload, config, seed). Scope is "
        "the union of the non-host module floor and every function the "
        "call graph proves reachable from kernel dispatch.")

    def _host_side(self, modkey: str) -> bool:
        # Host-side orchestration (campaign ETA displays, deadline
        # supervision, report generation, this analysis package) may
        # read the host clock; simulated components may not.
        return (_modkey_in(modkey, "repro.experiments", "repro.analysis",
                           "repro.resilience")
                or _modkey_basename(modkey) in _CLI_BASENAMES)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for display, facts in sorted(project.facts.items()):
            modkey = facts.modkey
            sites = facts.get("wallclock", [])
            assert isinstance(sites, list)
            for site in sites:
                in_scope = not self._host_side(modkey)
                if not in_scope and graph.active:
                    in_scope = graph.is_reachable(modkey, str(site["fn"]))
                if in_scope:
                    yield self.at(
                        display, site["line"], site["col"],
                        f"wall-clock read {site['name']}() in a sim path; "
                        "simulated components must use the kernel clock "
                        "(sim.now)")


@register
class NoUnseededRandomness(Rule):
    """SIM002 — all randomness flows through a seeded generator."""

    id = "SIM002"
    title = "no unseeded randomness"
    rationale = (
        "Module-level draws (random.random, np.random.rand) share hidden "
        "global state seeded from the OS, so two runs with the same seed "
        "diverge and the on-disk result cache silently serves results no "
        "run can reproduce. Construct random.Random(seed) or "
        "np.random.default_rng(seed) and thread it explicitly.")

    #: Constructors that *are* the approved seeding mechanism — allowed
    #: only when given an explicit seed/bit-generator argument.
    _SEEDED = {
        "random.Random", "numpy.random.default_rng",
        "numpy.random.Generator", "numpy.random.SeedSequence",
        "numpy.random.PCG64", "numpy.random.Philox", "numpy.random.MT19937",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imports = _import_map(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical(node.func, imports)
            if name is None or not (name.startswith("random.")
                                    or name.startswith("numpy.random.")):
                continue
            if name in self._SEEDED:
                if node.args or node.keywords:
                    continue
                yield self.finding(
                    source, node,
                    f"{name}() constructed without an explicit seed")
                continue
            yield self.finding(
                source, node,
                f"unseeded module-level randomness {name}(); draw from a "
                "seeded Generator passed in explicitly")


@register
class NoFloatTimeEquality(Rule):
    """SIM003 — no float ``==``/``!=`` on tick or timestamp values."""

    id = "SIM003"
    title = "no float equality on timestamps"
    rationale = (
        "Integer picoseconds (*_ps, sim.now) compare exactly; converted "
        "float nanoseconds/microseconds (*_ns, *_us, to_ns(...)) do not. "
        "An equality test on the float form works until one timing "
        "parameter changes the rounding, then silently never fires.")

    _SUFFIXES = ("_ns", "_us", "_ms")
    _CONVERTERS = {"to_ns", "now_ns"}

    def _is_float_time(self, node: ast.AST) -> bool:
        terminal = _terminal(node)
        if terminal is not None:
            if terminal in self._CONVERTERS:
                return True
            if any(terminal.endswith(s) for s in self._SUFFIXES):
                return True
        if isinstance(node, ast.Call):
            func = _terminal(node.func)
            return func in self._CONVERTERS
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = next((o for o in (left, right)
                                if self._is_float_time(o)), None)
                if culprit is not None:
                    yield self.finding(
                        source, node,
                        f"float equality on timestamp expression "
                        f"'{ast.unparse(culprit)}'; compare the integer "
                        "picosecond form instead")


@register
class NoMutableDefaults(Rule):
    """SIM004 — no mutable default arguments."""

    id = "SIM004"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default ([], {}, set()) is created once at import and "
        "shared by every call — state leaks across simulations within "
        "one process, so a second run in the same interpreter sees the "
        "first run's leftovers (exactly what the campaign worker pool, "
        "which reuses processes, would amplify).")

    _FACTORIES = {"list", "dict", "set", "defaultdict", "deque",
                  "bytearray", "OrderedDict", "Counter"}

    def _mutable(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _terminal(node.func) in self._FACTORIES
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        source, default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside the body")


@register
class NoConfigMutation(Rule):
    """SIM005 — event handlers must not mutate the system configuration."""

    id = "SIM005"
    title = "no SystemConfig mutation"
    rationale = (
        "SystemConfig is frozen and hashed into the campaign cache key "
        "before the run starts; a component mutating it mid-run (via "
        "attribute assignment or object.__setattr__) would make the key "
        "lie about what was simulated. Derive a new config with "
        "config.with_(...) before the simulator is built instead.")

    _CONFIG_NAMES = {"config", "cfg", "conf", "system_config", "sysconfig"}

    def _config_like(self, node: ast.AST) -> bool:
        terminal = _terminal(node)
        return terminal in self._CONFIG_NAMES

    def exempt(self, source: SourceFile) -> bool:
        # The config package itself may use frozen-dataclass plumbing.
        return source.in_module("repro.config")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            self._config_like(target.value):
                        yield self.finding(
                            source, node,
                            f"assignment to configuration attribute "
                            f"'{ast.unparse(target)}'; configs are frozen "
                            "inputs — use with_() before the run")
            elif isinstance(node, ast.Call):
                func = _dotted(node.func)
                if func in ("setattr", "object.__setattr__") and node.args \
                        and self._config_like(node.args[0]):
                    yield self.finding(
                        source, node,
                        "setattr on a configuration object; configs are "
                        "frozen inputs — use with_() before the run")


@register
class CountersDeclared(Rule):
    """SIM006 — every literal counter read is declared somewhere."""

    id = "SIM006"
    title = "counter reads must be declared"
    cross_file = True
    rationale = (
        "CounterSet.__getitem__ returns 0 for unknown names, so a typo "
        "in a read site ('writeback' vs 'writebacks') reports a silent "
        "zero forever. Every name read via a literal subscript or "
        ".total((...)) must appear in an .add()/.declare() call or a "
        "*_CATEGORIES/*_COUNTERS constant somewhere in the tree.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        declared: Set[str] = set()
        for facts in project.facts.values():
            names = facts.get("declared_counters", [])
            assert isinstance(names, list)
            declared.update(str(n) for n in names)
        for display, facts in sorted(project.facts.items()):
            reads = facts.get("counter_reads", [])
            assert isinstance(reads, list)
            for name, line, col in reads:
                if name not in declared:
                    yield self.at(
                        display, line, col,
                        f"counter '{name}' is read but never added or "
                        "declared anywhere in the tree (reads of unknown "
                        "counters silently return 0)")


@register
class ConfigKnobsConsumed(Rule):
    """SIM007 — every config dataclass field is consumed somewhere."""

    id = "SIM007"
    title = "no dead configuration knobs"
    cross_file = True
    rationale = (
        "A sweep over a config field nothing reads produces distinct "
        "cache keys for identical simulations — quiet nonsense that "
        "looks like a null result. Every field of the *Config "
        "dataclasses must have at least one attribute-access consumer "
        "in the tree (or a baseline entry explaining why it stays).")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        consumed: Set[str] = set()
        for facts in project.facts.values():
            reads = facts.get("attr_reads", [])
            assert isinstance(reads, list)
            consumed.update(str(n) for n in reads)
        for display, facts in sorted(project.facts.items()):
            in_config_pkg = _modkey_in(facts.modkey, "repro.config")
            dataclasses = facts.get("dataclasses", [])
            assert isinstance(dataclasses, list)
            for record in dataclasses:
                cls = str(record["name"]).rsplit(".", 1)[-1]
                if not (in_config_pkg or cls.endswith("Config")):
                    continue
                for name, line, col, _annotation in record["fields"]:
                    if name not in consumed:
                        yield self.at(
                            display, line, col,
                            f"config field {cls}.{name} is never consumed "
                            "(no attribute access anywhere in the tree) — "
                            "a dead knob that still perturbs the cache key")


@register
class NoSetIterationOrder(Rule):
    """SIM008 — no ordering-sensitive iteration over sets."""

    id = "SIM008"
    title = "no unordered set iteration"
    cross_file = False
    rationale = (
        "String hashing is salted per interpreter (PYTHONHASHSEED), so "
        "iterating a set yields a different order every process — any "
        "list, JSON document, or schedule built from it differs across "
        "runs and workers. Wrap the set in sorted() before iterating.")

    _CONSUMERS = {"list", "tuple", "enumerate", "iter"}

    def _set_like(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and \
                _dotted(node.func) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
            return self._set_like(node.left) or self._set_like(node.right)
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = _dotted(node.func)
                if func in self._CONSUMERS and node.args:
                    iters.append(node.args[0])
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "join" and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                if self._set_like(candidate):
                    yield self.finding(
                        source, candidate,
                        "iteration over a set has salted-hash order; wrap "
                        "in sorted() to keep output deterministic")


@register
class PublicApiDocstrings(Rule):
    """SIM009 — public ``repro.obs``/``repro.ras`` APIs keep docstrings."""

    id = "SIM009"
    title = "public obs/ras APIs documented"
    rationale = (
        "The observability and RAS layers are the repo's debugging "
        "surface; CI has gated them at 100% public docstring coverage "
        "since they shipped. This rule absorbs tools/check_docstrings.py "
        "so one engine reports everything.")

    def exempt(self, source: SourceFile) -> bool:
        return not source.in_module("repro.obs", "repro.ras")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if ast.get_docstring(source.tree) is None:
            yield self.finding(source, source.tree,
                               "public module is missing a docstring")
        stack: List[Tuple[str, ast.AST]] = [("", source.tree)]
        while stack:
            prefix, node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    name = f"{prefix}{child.name}"
                    stack.append((f"{name}.", child))
                    if not child.name.startswith("_") and \
                            ast.get_docstring(child) is None:
                        yield self.finding(
                            source, child,
                            f"public API {name} is missing a docstring")


@register
class NoPrintInLibrary(Rule):
    """SIM010 — no ``print()`` in library code."""

    id = "SIM010"
    title = "no print() outside CLI modules"
    rationale = (
        "Library-level prints corrupt machine-readable output (JSON "
        "results on stdout), interleave nondeterministically under the "
        "campaign process pool, and can't be silenced by callers. "
        "Return strings or write to an explicit stream; only CLI entry "
        "points own stdout.")

    def exempt(self, source: SourceFile) -> bool:
        return source.basename in _CLI_BASENAMES

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "print":
                yield self.finding(
                    source, node,
                    "print() in library code; return a string or take an "
                    "explicit stream (CLI modules own stdout)")


@register
class NoClosureOnDispatchPath(Rule):
    """SIM011 — no per-event closure allocation on dispatch paths."""

    id = "SIM011"
    title = "no closures in event scheduling"
    cross_file = True
    rationale = (
        "sim.at()/sim.schedule() run once per simulated event — the "
        "hottest loop in the tree. A lambda (or functools.partial) "
        "argument allocates a fresh closure and cell objects for every "
        "event; the scheduler already stores trailing arguments on the "
        "event handle, so ``sim.at(t, self._writeback, block)`` carries "
        "the same state with zero extra allocation. The campaign-scale "
        "cost of the closure idiom is what the ladder-queue rewrite "
        "removed; this rule keeps it out of repro.sim/cache/dram and "
        "out of any function the call graph proves dispatch-reachable.")

    _MESSAGES = {
        "lambda": (
            "lambda allocated per scheduled event; pass the "
            "callable and its arguments separately — "
            "at(t, callback, *args) stores them on the handle"),
        "partial": (
            "functools.partial allocated per scheduled event; "
            "at(t, callback, *args) already carries trailing "
            "arguments without the extra object"),
    }

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for display, facts in sorted(project.facts.items()):
            modkey = facts.modkey
            sites = facts.get("sched_closures", [])
            assert isinstance(sites, list)
            for site in sites:
                # Hot-path floor: the kernel/cache/dram packages are
                # always in scope; elsewhere only if dispatch-reachable.
                in_scope = _modkey_in(modkey, "repro.sim", "repro.cache",
                                      "repro.dram")
                if not in_scope and graph.active:
                    in_scope = graph.is_reachable(modkey, str(site["fn"]))
                if in_scope:
                    yield self.at(display, site["line"], site["col"],
                                  self._MESSAGES[str(site["kind"])])


@register
class NoSilentExceptionSwallow(Rule):
    """SIM012 — no silently swallowed broad exceptions in the harness."""

    id = "SIM012"
    title = "no silent broad except in harness code"
    rationale = (
        "The campaign harness survives worker crashes, hung tasks, and "
        "corrupt cache entries by *counting and reporting* every "
        "failure; a bare/broad except whose body is just pass hides the "
        "exact faults the resilience layer exists to surface — a "
        "swallowed OSError in a store path silently re-simulates, a "
        "swallowed pool error silently drops tasks. Catch the narrow "
        "type, or record the failure (counter, manifest row, journal "
        "record) before continuing.")

    _BROAD = {"Exception", "BaseException"}

    def exempt(self, source: SourceFile) -> bool:
        # Only harness/orchestration code is held to this: the engine,
        # the resilience layer, and their CLI plumbing.
        return not source.in_module("repro.experiments", "repro.resilience")

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = [handler.type]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        return any((_terminal(name) or "") in self._BROAD for name in names)

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Constant) and \
                    stmt.value.value is Ellipsis:
                continue
            return False
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and self._swallows(node):
                caught = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                yield self.finding(
                    source, node,
                    f"{caught} silently swallowed in harness code; catch "
                    "the narrow exception or count/report the failure "
                    "before continuing")


@register
class DesignsRegisteredInCli(Rule):
    """SIM013 — every registered design appears in the CLI design table."""

    id = "SIM013"
    title = "no dead designs (registry vs CLI table)"
    cross_file = True
    rationale = (
        "repro.cache.DESIGNS is what campaigns can simulate; the CLI's "
        "_DESIGN_SUMMARIES table is what users can discover. A design "
        "present in only one of them is either unreachable from the "
        "command line (dead code that still bloats the registry) or a "
        "documented name every campaign rejects. The two tables must "
        "list exactly the same design names.")

    def _table(self, project: ProjectContext, modkey: str,
               name: str) -> Optional[Tuple[str, Dict[str, object], Set[str]]]:
        for display, facts in sorted(project.facts.items()):
            if facts.modkey != modkey:
                continue
            constants = facts.get("constants", {})
            assert isinstance(constants, dict)
            record = constants.get(name)
            if isinstance(record, dict) and record.get("kind") == "dict":
                keys = record.get("keys", [])
                assert isinstance(keys, list)
                return display, record, {str(k) for k in keys}
        return None

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        registry = self._table(project, "repro.cache", "DESIGNS")
        table = self._table(project, "repro.experiments.cli",
                            "_DESIGN_SUMMARIES")
        # Inert when either side is missing (e.g. linting a subtree).
        if registry is None or table is None:
            return
        reg_display, reg_record, reg_keys = registry
        cli_display, cli_record, cli_keys = table
        for name in sorted(reg_keys - cli_keys):
            yield self.at(
                cli_display, cli_record["line"], cli_record["col"],
                f"design '{name}' is registered in repro.cache.DESIGNS but "
                "missing from the CLI _DESIGN_SUMMARIES table — "
                "undiscoverable from the command line")
        for name in sorted(cli_keys - reg_keys):
            yield self.at(
                reg_display, reg_record["line"], reg_record["col"],
                f"design '{name}' is listed in the CLI _DESIGN_SUMMARIES "
                "table but not registered in repro.cache.DESIGNS — every "
                "campaign will reject it")


@register
class NoOrphanCounters(Rule):
    """SIM016 — no counters incremented but never surfaced anywhere."""

    id = "SIM016"
    title = "no orphan counters"
    cross_file = True
    rationale = (
        "The inverse of SIM006: a counter that is .add()ed on a "
        "CounterSet receiver but never read via a literal subscript or "
        ".total((...)), never listed in a *_CATEGORIES/*_COUNTERS "
        "declaring constant, and never documented in docs/metrics.md "
        "is write-only bookkeeping — it costs a dict update per event "
        "and tells nobody anything. Surface it in a dump/epoch/metrics "
        "table or delete the increment.")

    def _surfaced(self, project: ProjectContext) -> Set[str]:
        names: Set[str] = set()
        for facts in project.facts.values():
            reads = facts.get("counter_reads", [])
            assert isinstance(reads, list)
            names.update(str(r[0]) for r in reads)
            constants = facts.get("constants", {})
            assert isinstance(constants, dict)
            for const_name, record in constants.items():
                if not (const_name.isupper() and
                        const_name.endswith(("_CATEGORIES", "_COUNTERS"))):
                    continue
                assert isinstance(record, dict)
                if record.get("kind") == "seq":
                    values = record.get("values", [])
                    assert isinstance(values, list)
                    names.update(str(v) for v in values)
                elif record.get("kind") == "dict":
                    keys = record.get("keys", [])
                    assert isinstance(keys, list)
                    names.update(str(k) for k in keys)
        if project.root is not None:
            metrics_doc = project.root / "docs" / "metrics.md"
            if metrics_doc.exists():
                text = metrics_doc.read_text(encoding="utf-8")
                for facts in project.facts.values():
                    adds = facts.get("counter_adds", [])
                    assert isinstance(adds, list)
                    names.update(str(a[0]) for a in adds
                                 if f"`{a[0]}`" in text)
        return names

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        surfaced = self._surfaced(project)
        seen: Set[Tuple[str, str]] = set()
        for display, facts in sorted(project.facts.items()):
            adds = facts.get("counter_adds", [])
            assert isinstance(adds, list)
            for name, line, col, receiver, _cls in adds:
                if receiver not in COUNTER_ADD_RECEIVERS:
                    continue
                if str(name) in surfaced:
                    continue
                # One finding per (file, counter), not per increment.
                if (display, str(name)) in seen:
                    continue
                seen.add((display, str(name)))
                yield self.at(
                    display, line, col,
                    f"counter '{name}' is incremented but never surfaced "
                    "— no literal read, no declaring constant, no "
                    "docs/metrics.md row (write-only bookkeeping)")
