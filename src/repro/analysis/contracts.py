"""Plugin-seam contract conformance (SIM017, SIM018).

The repo has two pluggable seams, and both fail open without these
checks:

* **memory backends** (:class:`repro.memory.backend.MemoryBackend`)
  report counters through ``snapshot()``/``wear_summary()`` dicts and
  ``.add()`` calls; any counter name not registered in
  ``BACKEND_COUNTERS`` silently escapes the metrics documentation
  gate, the campaign schemas, and the figure pipelines — SIM017
  requires every backend counter literal to be ⊆ the registry;
* **cache organizations and replacement policies**
  (:class:`repro.cache.organization.Organization` /
  ``ReplacementPolicy``) define their hook contracts by raising
  ``NotImplementedError`` (or ``@abstractmethod``); a subclass that
  forgets a required hook only explodes at simulation time, deep in a
  campaign — SIM018 requires every concrete subclass of a contract
  base to implement (or inherit an implementation of) every required
  hook.

Both rules work purely from the per-file facts: class records carry
bases, methods, and the ``required`` list (methods whose body is a
top-level ``raise NotImplementedError`` or that carry
``@abstractmethod``), so cached warm runs never re-parse.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ProjectContext, Rule, register

ClassKey = Tuple[str, str]  # (modkey, class qualname)


class ClassIndex:
    """Cross-file class-hierarchy resolver over extracted facts."""

    def __init__(self, project: ProjectContext) -> None:
        self.records: Dict[ClassKey, Dict[str, object]] = {}
        self.display: Dict[ClassKey, str] = {}
        self._short: Dict[str, List[ClassKey]] = {}
        for display, facts in sorted(project.facts.items()):
            classes = facts.get("classes", {})
            assert isinstance(classes, dict)
            for cls, record in classes.items():
                key = (facts.modkey, cls)
                self.records[key] = record
                self.display[key] = display
                self._short.setdefault(cls.rsplit(".", 1)[-1],
                                       []).append(key)

    def resolve(self, name: str, modkey: str) -> List[ClassKey]:
        """Base-name resolution: local module, exact dotted path, then
        short name (import re-exports make short names authoritative)."""
        if (modkey, name) in self.records:
            return [(modkey, name)]
        if "." in name:
            mod, _, cls = name.rpartition(".")
            if (mod, cls) in self.records:
                return [(mod, cls)]
        return self._short.get(name.rsplit(".", 1)[-1], [])

    def ancestors(self, key: ClassKey) -> Set[ClassKey]:
        """Every transitive base class resolvable inside the tree."""
        out: Set[ClassKey] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            record = self.records.get(current)
            if record is None:
                continue
            bases = record.get("bases", [])
            assert isinstance(bases, list)
            for base in bases:
                for parent in self.resolve(str(base), current[0]):
                    if parent not in out:
                        out.add(parent)
                        stack.append(parent)
        return out

    def nearest_method(self, key: ClassKey,
                       method: str) -> Optional[ClassKey]:
        """The (modkey, cls) whose definition of ``method`` the class
        would inherit, walking the base chain breadth-first."""
        seen: Set[ClassKey] = set()
        queue = [key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            record = self.records.get(current)
            if record is None:
                continue
            methods = record.get("methods", {})
            assert isinstance(methods, dict)
            if method in methods:
                return current
            bases = record.get("bases", [])
            assert isinstance(bases, list)
            for base in bases:
                queue.extend(self.resolve(str(base), current[0]))
        return None

    def required(self, key: ClassKey) -> List[str]:
        record = self.records.get(key, {})
        required = record.get("required", [])
        assert isinstance(required, list)
        return [str(m) for m in required]

    def line(self, key: ClassKey) -> int:
        record = self.records.get(key, {})
        return int(record.get("line", 1))  # type: ignore[arg-type]


@register
class BackendCountersRegistered(Rule):
    """SIM017 — backend counters must be registered in BACKEND_COUNTERS."""

    id = "SIM017"
    title = "backend counters registered"
    cross_file = True
    rationale = (
        "Every MemoryBackend reports its counters through snapshot() "
        "dicts and .add() calls; BACKEND_COUNTERS is the registry that "
        "the docs/metrics.md gate, campaign schemas, and figure "
        "pipelines are generated from. A backend counter absent from "
        "the registry ships undocumented and invisible — so every "
        "counter literal inside a MemoryBackend subclass must be a "
        "member of BACKEND_COUNTERS.")

    def _registry(self, project: ProjectContext) -> Optional[Set[str]]:
        for facts in project.facts.values():
            constants = facts.get("constants", {})
            assert isinstance(constants, dict)
            record = constants.get("BACKEND_COUNTERS")
            if isinstance(record, dict) and record.get("kind") == "seq":
                values = record.get("values", [])
                assert isinstance(values, list)
                return {str(v) for v in values}
        return None

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        registered = self._registry(project)
        if registered is None:
            return  # no registry in this tree: the seam is absent
        index = ClassIndex(project)
        for key, record in sorted(index.records.items()):
            if key[1].rsplit(".", 1)[-1] == "MemoryBackend":
                continue  # the ABC itself defines no counters
            ancestor_names = {a[1].rsplit(".", 1)[-1]
                              for a in index.ancestors(key)}
            if "MemoryBackend" not in ancestor_names:
                continue
            literals = record.get("counter_literals", [])
            assert isinstance(literals, list)
            seen: Set[str] = set()
            for name, line, col in literals:
                if str(name) in registered or str(name) in seen:
                    continue
                seen.add(str(name))
                yield self.at(
                    index.display[key], line, col,
                    f"backend counter '{name}' in {key[1]} is not "
                    "registered in BACKEND_COUNTERS — it would ship "
                    "undocumented and invisible to the metrics gate")


@register
class HookContractImplemented(Rule):
    """SIM018 — plugin subclasses implement the full hook contract."""

    id = "SIM018"
    title = "plugin hook contracts implemented"
    cross_file = True
    rationale = (
        "Organization, ReplacementPolicy, MemoryBackend and the "
        "controller seam declare their contracts by raising "
        "NotImplementedError (or @abstractmethod) in the base hook; a "
        "registered subclass that forgets one hook passes import and "
        "construction and only explodes mid-campaign, deep inside "
        "event dispatch. Every concrete subclass of a contract base "
        "must define — or inherit a real implementation of — every "
        "required hook; intentionally-abstract intermediates re-declare "
        "the hook abstract instead.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        index = ClassIndex(project)
        contract_bases = [key for key in index.records
                          if index.required(key)]
        if not contract_bases:
            return
        for key in sorted(index.records):
            own_required = set(index.required(key))
            ancestors = index.ancestors(key)
            for base in contract_bases:
                if base not in ancestors:
                    continue
                for method in index.required(base):
                    if method in own_required:
                        continue  # re-declared abstract: not concrete
                    owner = index.nearest_method(key, method)
                    # Missing entirely, or inherited straight from a
                    # definition that is itself abstract.
                    if owner is not None and \
                            method not in index.required(owner):
                        continue
                    yield self.at(
                        index.display[key], index.line(key), 0,
                        f"{key[1]} does not implement {base[1]}.{method}() "
                        "— the hook contract requires it (it would raise "
                        "NotImplementedError mid-simulation)")
