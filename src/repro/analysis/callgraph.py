"""Sim-reachability call graph built from per-file facts.

The graph answers one question for the semantic rules: *can this
function run during event dispatch?* Roots are the kernel dispatch
entry points —

* ``Simulator.run`` (the event loop itself, plus overrides), and
* every callable handed to ``sim.at(...)``/``sim.schedule(...)``
  anywhere in the tree (the facts record each scheduled callback with
  its enclosing class so ``self._on_wake`` resolves precisely).

From those roots the builder closes over the edges the dataflow pass
recorded: direct calls, ``self.method()`` dispatch, ``self.attr.m()``
through the class attribute-type table (populated from constructor
assignments and annotated parameters), locally-typed receivers,
dispatch-table construction (``DESIGNS[design](...)`` instantiates
every class in the table), callback references passed as arguments or
assigned to fields, and nested function definitions. Method dispatch
includes subclass overrides — reaching ``Organization.set_index``
reaches every registered organization's override.

Unresolved dynamic attribute calls are deliberately *not* edges: the
graph under-approximates, and the rules that consume it (SIM001,
SIM011, SIM014) union it with the historical module-prefix scoping so
precision loss can only ever widen enforcement, never silently narrow
it. When a tree has no dispatch entry points at all (rule-test
fixtures, host-only utilities) the graph reports ``active = False``
and the rules fall back to module scoping alone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import FileFacts

#: A function node is addressed as ``modkey::qualname``.
FnKey = str


class CallGraph:
    """Reachability closure over the per-file facts of one tree."""

    def __init__(self, facts_map: Dict[str, FileFacts]) -> None:
        self.facts_map = facts_map
        # (modkey, qual) -> function record
        self._functions: Dict[Tuple[str, str], Dict[str, object]] = {}
        # (modkey, cls) -> class record
        self._classes: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._fn_short: Dict[str, List[Tuple[str, str]]] = {}
        self._cls_short: Dict[str, List[Tuple[str, str]]] = {}
        self._constants: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._subclasses: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self._index()
        self.roots: Set[FnKey] = set()
        self._seed_roots()
        self.active = bool(self.roots)
        self.reachable: Set[FnKey] = set()
        if self.active:
            self._close()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for facts in self.facts_map.values():
            modkey = facts.modkey
            functions = facts.get("functions", {})
            assert isinstance(functions, dict)
            for qual, record in functions.items():
                self._functions[(modkey, qual)] = record
                self._fn_short.setdefault(
                    qual.rsplit(".", 1)[-1], []).append((modkey, qual))
            classes = facts.get("classes", {})
            assert isinstance(classes, dict)
            for cls, record in classes.items():
                self._classes[(modkey, cls)] = record
                self._cls_short.setdefault(
                    cls.rsplit(".", 1)[-1], []).append((modkey, cls))
            constants = facts.get("constants", {})
            assert isinstance(constants, dict)
            for name, record in constants.items():
                self._constants[(modkey, name)] = record
        for (modkey, cls), record in self._classes.items():
            bases = record.get("bases", [])
            assert isinstance(bases, list)
            for base in bases:
                for parent in self._resolve_classes(str(base), modkey):
                    self._subclasses.setdefault(parent, []).append(
                        (modkey, cls))

    def _resolve_classes(self, name: str,
                         modkey: str) -> List[Tuple[str, str]]:
        """Resolve a (possibly dotted) class name to index entries.

        Tries the local module, then the exact dotted location, then
        an unambiguous-or-all short-name match (re-exports through
        package ``__init__`` make the recorded canonical path differ
        from the defining module, so the short name is authoritative).
        """
        short = name.rsplit(".", 1)[-1]
        if (modkey, name) in self._classes:
            return [(modkey, name)]
        if "." in name:
            mod, _, cls = name.rpartition(".")
            if (mod, cls) in self._classes:
                return [(mod, cls)]
        return self._cls_short.get(short, [])

    def _resolve_functions(self, name: str,
                           modkey: str) -> List[Tuple[str, str]]:
        if (modkey, name) in self._functions:
            return [(modkey, name)]
        if "." in name:
            mod, _, fn = name.rpartition(".")
            if (mod, fn) in self._functions:
                return [(mod, fn)]
            # repro.cache.build -> class method? leave to caller.
            short = name.rsplit(".", 1)[-1]
            matches = self._fn_short.get(short, [])
            # Only trust a short-name match for module-level functions
            # (methods dispatch through _dispatch with a class).
            return [m for m in matches if "." not in m[1]]
        return []

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _descendants(self, key: Tuple[str, str]) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        stack = list(self._subclasses.get(key, []))
        seen: Set[Tuple[str, str]] = set()
        while stack:
            child = stack.pop()
            if child in seen:
                continue
            seen.add(child)
            out.append(child)
            stack.extend(self._subclasses.get(child, []))
        return out

    def _nearest_method(self, key: Tuple[str, str],
                        method: str) -> Optional[Tuple[str, str]]:
        """The defining (modkey, cls) for ``method`` on ``key``, walking
        up the base-class chain."""
        seen: Set[Tuple[str, str]] = set()
        stack = [key]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            record = self._classes.get(current)
            if record is None:
                continue
            methods = record.get("methods", {})
            assert isinstance(methods, dict)
            if method in methods:
                return current
            bases = record.get("bases", [])
            assert isinstance(bases, list)
            for base in bases:
                stack.extend(self._resolve_classes(str(base), current[0]))
        return None

    def _dispatch(self, key: Tuple[str, str], method: str) -> List[FnKey]:
        """Function keys a ``obj.method()`` call may run, for ``obj`` of
        the given class: the nearest definition plus every subclass
        override."""
        out: List[FnKey] = []
        owner = self._nearest_method(key, method)
        if owner is not None:
            out.append(f"{owner[0]}::{owner[1]}.{method}")
        for child_mod, child_cls in self._descendants(key):
            record = self._classes[(child_mod, child_cls)]
            methods = record.get("methods", {})
            assert isinstance(methods, dict)
            if method in methods:
                out.append(f"{child_mod}::{child_cls}.{method}")
        return out

    def _instantiate(self, key: Tuple[str, str]) -> List[FnKey]:
        out: List[FnKey] = []
        for ctor in ("__init__", "__post_init__"):
            owner = self._nearest_method(key, ctor)
            if owner is not None:
                out.append(f"{owner[0]}::{owner[1]}.{ctor}")
        return out

    def _attr_type(self, modkey: str, cls: str,
                   attr: str) -> List[Tuple[str, str]]:
        owner: Optional[Tuple[str, str]] = (modkey, cls)
        while owner is not None:
            record = self._classes.get(owner)
            if record is None:
                return []
            attr_types = record.get("attr_types", {})
            assert isinstance(attr_types, dict)
            if attr in attr_types:
                return self._resolve_classes(str(attr_types[attr]), owner[0])
            bases = record.get("bases", [])
            assert isinstance(bases, list)
            parents = [p for b in bases
                       for p in self._resolve_classes(str(b), owner[0])]
            owner = parents[0] if parents else None
        return []

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def _seed_roots(self) -> None:
        for (modkey, cls), record in self._classes.items():
            if cls.rsplit(".", 1)[-1] == "Simulator":
                methods = record.get("methods", {})
                assert isinstance(methods, dict)
                if "run" in methods:
                    self.roots.update(self._dispatch((modkey, cls), "run"))
        for facts in self.facts_map.values():
            modkey = facts.modkey
            callbacks = facts.get("sched_callbacks", [])
            assert isinstance(callbacks, list)
            for entry in callbacks:
                self.roots.update(self._resolve_ref(
                    entry["ref"], modkey, str(entry.get("cls") or "")))

    def _resolve_ref(self, ref: object, modkey: str,
                     cls: str) -> List[FnKey]:
        """Resolve a recorded callback reference to function keys."""
        assert isinstance(ref, list)
        kind = ref[0]
        if kind == "name":
            name = str(ref[1])
            out = [f"{m}::{q}" for m, q in
                   self._resolve_functions(name, modkey)]
            for class_key in self._resolve_classes(name, modkey):
                out.extend(self._instantiate(class_key))
                out.extend(self._dispatch(class_key, "__call__"))
            return out
        if kind == "self" and cls:
            return self._dispatch((modkey, cls), str(ref[1]))
        if kind == "var":
            out = []
            for class_key in self._resolve_classes(str(ref[1]), modkey):
                out.extend(self._dispatch(class_key, str(ref[2])))
            return out
        if kind == "local":
            return [f"{modkey}::{ref[1]}"]
        return []

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------
    def _close(self) -> None:
        pending: List[FnKey] = sorted(self.roots)
        while pending:
            key = pending.pop()
            if key in self.reachable:
                continue
            modkey, _, qual = key.partition("::")
            record = self._functions.get((modkey, qual))
            if record is None:
                continue
            self.reachable.add(key)
            pending.extend(self._edges(modkey, qual, record))

    def _edges(self, modkey: str, qual: str,
               record: Dict[str, object]) -> List[FnKey]:
        out: List[FnKey] = []
        cls = str(record.get("cls") or "")
        calls = record.get("calls", [])
        assert isinstance(calls, list)
        for name in calls:
            out.extend(f"{m}::{q}" for m, q in
                       self._resolve_functions(str(name), modkey))
            for class_key in self._resolve_classes(str(name), modkey):
                out.extend(self._instantiate(class_key))
        methods = record.get("methods", [])
        assert isinstance(methods, list)
        for descriptor in methods:
            kind = descriptor[0]
            if kind == "self" and cls:
                out.extend(self._dispatch((modkey, cls), str(descriptor[1])))
            elif kind == "selfattr" and cls:
                for class_key in self._attr_type(modkey, cls,
                                                 str(descriptor[1])):
                    out.extend(self._dispatch(class_key, str(descriptor[2])))
            elif kind == "var":
                for class_key in self._resolve_classes(str(descriptor[1]),
                                                       modkey):
                    out.extend(self._dispatch(class_key, str(descriptor[2])))
            # "dyn" receivers are intentionally not edges (see module
            # docstring) — the rules union the graph with module scoping.
        tables = record.get("tables", [])
        assert isinstance(tables, list)
        for table in tables:
            out.extend(self._table_edges(str(table), modkey))
        refs = record.get("refs", [])
        assert isinstance(refs, list)
        for ref in refs:
            out.extend(self._resolve_ref(ref, modkey, cls))
        return out

    def _table_edges(self, table: str, modkey: str) -> List[FnKey]:
        """``TABLE[key](...)`` instantiates every value in the table."""
        candidates: List[Dict[str, object]] = []
        if (modkey, table) in self._constants:
            candidates.append(self._constants[(modkey, table)])
        elif "." in table:
            mod, _, name = table.rpartition(".")
            for (const_mod, const_name), record in self._constants.items():
                if const_name == name and (const_mod == mod
                                           or mod.endswith(const_mod)
                                           or const_mod.endswith(mod)):
                    candidates.append(record)
        out: List[FnKey] = []
        for record in candidates:
            if record.get("kind") != "dict":
                continue
            value_names = record.get("value_names", [])
            assert isinstance(value_names, list)
            for name in value_names:
                for class_key in self._resolve_classes(str(name), modkey):
                    out.extend(self._instantiate(class_key))
                    out.extend(self._dispatch(class_key, "__call__"))
                out.extend(f"{m}::{q}" for m, q in
                           self._resolve_functions(str(name), modkey))
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_reachable(self, modkey: str, qual: str) -> bool:
        """Whether a function can run during event dispatch.

        Inactive graphs (no dispatch entry points in the tree) answer
        False for everything — callers fall back to module scoping.
        """
        return f"{modkey}::{qual}" in self.reachable

    def stats(self) -> Dict[str, int]:
        """Graph-size summary for benchmarks and ``--json`` output."""
        return {"functions": len(self._functions),
                "classes": len(self._classes),
                "roots": len(self.roots),
                "reachable": len(self.reachable)}


def build_graph(facts_map: Dict[str, FileFacts]) -> CallGraph:
    """Build the sim-reachability graph for a set of file facts."""
    return CallGraph(facts_map)
