"""Simulator-aware static analysis for the TDRAM reproduction.

The simulator's headline guarantees — bit-identical parallel campaigns,
per-seed reproducible fault injection, zero-perturbation tracing — rest
on coding invariants that ordinary linters do not know about: no
wall-clock reads or unseeded randomness inside simulated components, no
float equality on timestamps, every counter read somewhere registered,
no ordering-sensitive iteration feeding result serialization. This
package is a multi-pass semantic analysis engine: one AST pass per file
extracts JSON-serializable facts (:mod:`repro.analysis.dataflow`), a
call-graph builder infers sim-reachable functions from the kernel
dispatch entry points (:mod:`repro.analysis.callgraph`), and a registry
of rules (``SIM001``–``SIM018``) consumes the facts — including the
cache-key soundness prover (SIM014), the time-unit dimension checker
(SIM015), orphan-counter detection (SIM016), and plugin contract
conformance (SIM017/SIM018). Inline ``# tdram: noqa[RULE] -- reason``
suppressions, a committed baseline file for grandfathered findings
(with stale-entry detection), a content-hash-keyed analysis cache for
fast warm runs, and a SARIF 2.1.0 emitter round out the engine.

Run it as ``python -m repro.analysis src/repro`` or
``tdram-repro lint``; ``--explain SIM014`` prints one rule's catalogue
entry, and the full catalogue lives in ``docs/static-analysis.md``.
"""

from repro.analysis.engine import (
    AnalysisCache,
    Analyzer,
    Baseline,
    Finding,
    ProjectContext,
    Report,
    Rule,
    SourceFile,
    all_rules,
)
from repro.analysis.rules import BASELINE_RULES, SIM_RULES

__all__ = [
    "AnalysisCache",
    "Analyzer",
    "Baseline",
    "Finding",
    "ProjectContext",
    "Report",
    "Rule",
    "SourceFile",
    "all_rules",
    "BASELINE_RULES",
    "SIM_RULES",
]
