"""Simulator-aware static analysis for the TDRAM reproduction.

The simulator's headline guarantees — bit-identical parallel campaigns,
per-seed reproducible fault injection, zero-perturbation tracing — rest
on coding invariants that ordinary linters do not know about: no
wall-clock reads or unseeded randomness inside simulated components, no
float equality on timestamps, every counter read somewhere registered,
no ordering-sensitive iteration feeding result serialization. This
package is an AST-based lint engine with a registry of those rules
(``SIM001``–``SIM012``), per-file and cross-file passes, inline
``# tdram: noqa[RULE] -- reason`` suppressions, and a committed
baseline file for grandfathered findings.

Run it as ``python -m repro.analysis src/repro`` or
``tdram-repro lint``; the rule catalogue lives in
``docs/static-analysis.md``.
"""

from repro.analysis.engine import (
    Analyzer,
    Baseline,
    Finding,
    Report,
    Rule,
    SourceFile,
    all_rules,
)
from repro.analysis.rules import BASELINE_RULES, SIM_RULES

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "Report",
    "Rule",
    "SourceFile",
    "all_rules",
    "BASELINE_RULES",
    "SIM_RULES",
]
