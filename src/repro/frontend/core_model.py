"""Closed-loop multi-core front end (§IV-A's processor side).

Each :class:`Core` replays its workload stream against the memory
system: reads are latency-bound (a core supports a limited number of
outstanding misses, like an MSHR file), writes are posted LLC
writebacks subject only to buffer back-pressure. Runtime is the time
for all cores to finish a fixed work quantum — the fixed-work
methodology the paper adopts via LoopPoint [16], [61].
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.cache.request import DemandRequest, Op
from repro.sim.kernel import Simulator, ns
from repro.workloads.base import DemandRecord

#: Back-off before retrying a demand refused by a full controller buffer.
RETRY_DELAY = ns(20)


class Progress:
    """Shared submission/completion bookkeeping across all cores."""

    def __init__(self, total_demands: int, warmup_fraction: float) -> None:
        self.total_demands = total_demands
        self.warmup_threshold = int(total_demands * warmup_fraction)
        self.submitted = 0
        self.on_warm: Optional[Callable[[], None]] = None
        self.on_all_done: Optional[Callable[[], None]] = None
        self._warm_fired = False
        self._done_cores = 0
        self._total_cores = 0

    def register_core(self) -> None:
        self._total_cores += 1

    def note_submit(self) -> None:
        self.submitted += 1
        if (not self._warm_fired and self.on_warm is not None
                and self.submitted >= self.warmup_threshold):
            self._warm_fired = True
            self.on_warm()

    def note_core_done(self) -> None:
        self._done_cores += 1
        if self._done_cores == self._total_cores and self.on_all_done is not None:
            self.on_all_done()

    @property
    def all_done(self) -> bool:
        return self._total_cores > 0 and self._done_cores == self._total_cores


class Core:
    """One processor core replaying a demand stream, closed loop."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        stream: Iterator[DemandRecord],
        sink,
        demands: int,
        max_outstanding_reads: int,
        progress: Progress,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.stream = stream
        self.sink = sink
        self.demands = demands
        self.max_outstanding_reads = max_outstanding_reads
        self.progress = progress
        progress.register_core()
        self.issued = 0
        self.outstanding_reads = 0
        self.finished = False
        self._pending: Optional[DemandRecord] = None
        self._pending_ready_at = 0
        self.retries = 0

    def start(self) -> None:
        """Begin replay (call once before ``sim.run``)."""
        self.sim.schedule(0, self._advance)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Fetch the next record and schedule its submission."""
        if self._pending is not None:
            return
        if self.issued >= self.demands:
            self._check_finished()
            return
        try:
            record = next(self.stream)
        except StopIteration:
            # Finite stream (e.g. a short trace) ran out early: treat
            # the work quantum as complete rather than crashing.
            self.demands = self.issued
            self._check_finished()
            return
        self._pending = record
        gap = record[0]
        self._pending_ready_at = self.sim.now + gap
        self.sim.schedule(gap, self._try_submit)

    def _try_submit(self) -> None:
        record = self._pending
        if record is None or self.sim.now < self._pending_ready_at:
            return  # the inter-arrival gap has not elapsed yet
        _gap, op, block, pc = record
        if op is Op.READ and self.outstanding_reads >= self.max_outstanding_reads:
            return  # parked; resumed by _on_read_complete
        if not self.sink.can_accept(op, block):
            self.retries += 1
            self.sim.schedule(RETRY_DELAY, self._try_submit)
            return
        self._pending = None
        self.issued += 1
        request = DemandRequest(op=op, block_addr=block, core_id=self.core_id, pc=pc)
        if op is Op.READ:
            self.outstanding_reads += 1
            request.on_complete = self._on_read_complete
        self.sink.submit(request)
        self.progress.note_submit()
        self._advance()

    def _on_read_complete(self, _time: int) -> None:
        self.outstanding_reads -= 1
        if self._pending is not None:
            self._try_submit()
        else:
            self._check_finished()

    def _check_finished(self) -> None:
        if (not self.finished and self.issued >= self.demands
                and self.outstanding_reads == 0 and self._pending is None):
            self.finished = True
            self.progress.note_core_done()


def build_cores(
    sim: Simulator,
    sink,
    streams: List[Iterator[DemandRecord]],
    demands_per_core: int,
    max_outstanding_reads: int,
    warmup_fraction: float,
) -> tuple:
    """Wire up one core per stream; returns ``(cores, progress)``."""
    progress = Progress(demands_per_core * len(streams), warmup_fraction)
    cores = [
        Core(sim, core_id, stream, sink, demands_per_core,
             max_outstanding_reads, progress)
        for core_id, stream in enumerate(streams)
    ]
    return cores, progress
