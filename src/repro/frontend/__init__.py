"""Closed-loop processor front end and private-cache filtering."""

from repro.frontend.core_model import Core, Progress, build_cores
from repro.frontend.private_cache import PrivateCache, filter_stream

__all__ = ["Core", "Progress", "build_cores", "PrivateCache", "filter_stream"]
