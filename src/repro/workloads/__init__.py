"""Workload specs and demand-stream generators (NPB, GAPBS, synthetic)."""

from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec, mixture_stream
from repro.workloads.gapbs import GAPBS_KERNELS, gapbs_spec, gapbs_specs, gapbs_stream
from repro.workloads.npb import NPB_KERNELS, npb_spec, npb_specs, npb_stream
from repro.workloads.suite import (
    demand_stream,
    full_suite,
    miss_group,
    representative_suite,
    suite_by_name,
    workload,
)
from repro.workloads.phases import Phase, PhasedWorkload, run_phased_experiment
from repro.workloads.trace import (
    TraceStats,
    capture_trace,
    read_trace,
    trace_stats,
    trace_streams,
    write_trace,
)
from repro.workloads.synthetic import (
    hot_cold_spec,
    stream_spec,
    synthetic_stream,
    uniform_spec,
    write_storm_spec,
)

__all__ = [
    "DemandRecord",
    "MissClass",
    "WorkloadSpec",
    "mixture_stream",
    "GAPBS_KERNELS",
    "gapbs_spec",
    "gapbs_specs",
    "gapbs_stream",
    "NPB_KERNELS",
    "npb_spec",
    "npb_specs",
    "npb_stream",
    "demand_stream",
    "full_suite",
    "miss_group",
    "representative_suite",
    "suite_by_name",
    "workload",
    "Phase",
    "PhasedWorkload",
    "run_phased_experiment",
    "TraceStats",
    "capture_trace",
    "read_trace",
    "trace_stats",
    "trace_streams",
    "write_trace",
    "hot_cold_spec",
    "stream_spec",
    "synthetic_stream",
    "uniform_spec",
    "write_storm_spec",
]
