"""Workload model: specs and demand-stream generators.

A workload is, to the DRAM cache, a per-core stream of post-LLC
demands: 64 B reads (LLC miss fetches) and 64 B writes (LLC
writebacks), with inter-demand gaps expressing memory intensity.

The paper runs real multithreaded NPB/GAPBS binaries under gem5; here
each kernel is modelled by a generator that reproduces its
*memory-system signature*: footprint, read/write mix, spatial locality
(sequential run lengths), temporal reuse (hot-set fraction and access
probability), and intensity. Footprints are specified against the
paper's 8 GiB cache and scaled with the configured geometry
(:meth:`repro.config.SystemConfig.scaled_footprint_blocks`), which
preserves each workload's hit/miss behaviour — the quantity every
figure in the evaluation is a function of.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.cache.request import Op
from repro.config.system import GIB, SystemConfig
from repro.errors import WorkloadError
from repro.sim.kernel import ns

#: One generated demand: (gap_ps before issue, op, block address, pc)
DemandRecord = Tuple[int, Op, int, int]


class MissClass(enum.Enum):
    """Fig. 1 grouping: below 30 % or above 50 % DRAM-cache miss ratio."""

    LOW = "low"
    HIGH = "high"


@dataclass(frozen=True)
class WorkloadSpec:
    """Memory-system signature of one benchmark configuration."""

    name: str                      #: e.g. "ft.D" or "pr.25"
    suite: str                     #: "npb" | "gapbs" | "synthetic"
    kernel: str                    #: e.g. "ft"
    variant: str                   #: NPB class or GAPBS scale
    paper_footprint_bytes: int     #: footprint at the paper's scale
    read_fraction: float           #: share of demands that are reads
    hot_fraction: float            #: fraction of footprint that is hot
    hot_probability: float         #: chance an access targets the hot set
    sequential_run: float          #: mean blocks per sequential run
    mean_gap_ns: float             #: mean inter-demand gap per core
    pc_count: int = 32             #: distinct instruction regions (MAP-I)
    miss_class: MissClass = MissClass.LOW

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: bad read_fraction")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: bad hot_fraction")
        if not 0.0 <= self.hot_probability <= 1.0:
            raise WorkloadError(f"{self.name}: bad hot_probability")
        if self.sequential_run < 1.0:
            raise WorkloadError(f"{self.name}: sequential_run must be >= 1")
        if self.paper_footprint_bytes < 64:
            raise WorkloadError(f"{self.name}: footprint too small")

    @property
    def footprint_gib(self) -> float:
        return self.paper_footprint_bytes / GIB

    def footprint_blocks(self, config: SystemConfig) -> int:
        return config.scaled_footprint_blocks(self.paper_footprint_bytes)


def mixture_stream(
    spec: WorkloadSpec,
    config: SystemConfig,
    core_id: int,
    cores: int,
    seed: int,
) -> Iterator[DemandRecord]:
    """The generic hot-set / streaming mixture generator.

    Models a thread that spends ``hot_probability`` of its accesses in
    a shared hot working set (reused data: small grids, frontier
    arrays) and the rest scanning its partition of the cold footprint
    (streaming sweeps, large matrices). Both components walk
    sequentially in runs of geometric length ``sequential_run``.
    """
    rng = np.random.default_rng((seed * 1_000_003 + core_id) & 0x7FFFFFFF)
    footprint = spec.footprint_blocks(config)
    hot_blocks = max(16, int(footprint * spec.hot_fraction))
    # Cold region: each core scans its own partition to model the
    # partitioned parallel loops of OpenMP kernels.
    cold_span = max(16, footprint // cores)
    cold_base = (core_id * cold_span) % footprint
    hot_cursor = int(rng.integers(hot_blocks))
    cold_cursor = int(rng.integers(cold_span))
    run_continue = 1.0 - 1.0 / spec.sequential_run
    mean_gap_ps = ns(spec.mean_gap_ns)
    while True:
        in_hot = rng.random() < spec.hot_probability
        if in_hot:
            if rng.random() >= run_continue:
                hot_cursor = int(rng.integers(hot_blocks))
            else:
                hot_cursor = (hot_cursor + 1) % hot_blocks
            block = hot_cursor
        else:
            if rng.random() >= run_continue:
                cold_cursor = int(rng.integers(cold_span))
            else:
                cold_cursor = (cold_cursor + 1) % cold_span
            block = (cold_base + cold_cursor) % footprint
        op = Op.READ if rng.random() < spec.read_fraction else Op.WRITE
        gap = int(rng.exponential(mean_gap_ps)) if mean_gap_ps > 0 else 0
        pc = int(rng.integers(spec.pc_count)) * 64 + (0 if in_hot else 8)
        yield gap, op, block, pc
