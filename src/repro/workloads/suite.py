"""The paper's 28-workload evaluation suite (§IV-B).

8 NPB kernels x {class C, class D} + 6 GAPBS kernels x {scale 22,
scale 25} = 28 workloads, grouped by DRAM-cache miss ratio: below 30 %
("low") or above 50 % ("high") — the paper finds none in between.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.config.system import SystemConfig
from repro.errors import WorkloadError
from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec
from repro.workloads.gapbs import gapbs_specs, gapbs_stream
from repro.workloads.npb import npb_specs, npb_stream
from repro.workloads.synthetic import (
    hot_cold_spec,
    stream_spec,
    synthetic_stream,
    uniform_spec,
    write_storm_spec,
)

_STREAMS = {
    "npb": npb_stream,
    "gapbs": gapbs_stream,
    "synthetic": synthetic_stream,
}


def full_suite() -> List[WorkloadSpec]:
    """All 28 evaluation workloads, NPB first then GAPBS."""
    return npb_specs() + gapbs_specs()


def suite_by_name() -> Dict[str, WorkloadSpec]:
    return {spec.name: spec for spec in full_suite()}


def workload(name: str) -> WorkloadSpec:
    """Look up one suite workload, e.g. ``workload("ft.D")``."""
    table = suite_by_name()
    if name not in table:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {sorted(table)}"
        )
    return table[name]


def synthetic_workloads() -> Dict[str, WorkloadSpec]:
    """Named synthetic microbenchmarks (outside the 28-workload suite).

    ``"synthetic"`` is the generic default — a hot/cold mix exercising
    hits, misses, and writebacks — used by ``tdram-repro trace``.
    """
    return {
        "synthetic": hot_cold_spec(name="synthetic"),
        "uniform": uniform_spec(),
        "stream": stream_spec(),
        "hot_cold": hot_cold_spec(),
        "write_storm": write_storm_spec(),
    }


def any_workload(name: str) -> WorkloadSpec:
    """Look up a suite workload *or* a named synthetic one."""
    table = suite_by_name()
    if name in table:
        return table[name]
    synthetic = synthetic_workloads()
    if name in synthetic:
        return synthetic[name]
    raise WorkloadError(
        f"unknown workload {name!r}; choose from "
        f"{sorted(table) + sorted(synthetic)}"
    )


def miss_group(specs: Optional[List[WorkloadSpec]] = None,
               group: MissClass = MissClass.LOW) -> List[WorkloadSpec]:
    """Filter a suite by its expected miss-ratio group."""
    specs = full_suite() if specs is None else specs
    return [spec for spec in specs if spec.miss_class is group]


def representative_suite() -> List[WorkloadSpec]:
    """A small, fast subset spanning both miss groups and both suites.

    Used by the default benchmark targets; pass ``--full-suite`` (or
    call :func:`full_suite`) for the complete 28-workload sweep.
    """
    names = ["lu.C", "cg.C", "bfs.22", "ft.D", "is.D", "pr.25"]
    table = suite_by_name()
    return [table[name] for name in names]


def suite_summary():
    """A printable table of all 28 workload specifications."""
    from repro.experiments.figures import FigureResult

    rows = []
    for spec in full_suite():
        rows.append({
            "workload": spec.name,
            "suite": spec.suite,
            "footprint_gib": round(spec.footprint_gib, 2),
            "reads": round(spec.read_fraction, 2),
            "gap_ns": round(spec.mean_gap_ns, 1),
            "group": spec.miss_class.value,
        })
    return FigureResult(
        figure="Suite",
        title="The 28 evaluation workloads (§IV-B)",
        columns=["workload", "suite", "footprint_gib", "reads", "gap_ns",
                 "group"],
        rows=rows,
    )


def demand_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
                  cores: int, seed: int = 42) -> Iterator[DemandRecord]:
    """Instantiate the per-core generator for any workload spec."""
    factory = _STREAMS.get(spec.suite)
    if factory is None:
        raise WorkloadError(f"no stream factory for suite {spec.suite!r}")
    return factory(spec, config, core_id, cores, seed)
