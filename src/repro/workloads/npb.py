"""NAS Parallel Benchmark (NPB) workload models, classes C and D (§IV-B).

Each kernel gets a generator reproducing its characteristic post-LLC
access pattern; footprints follow the published NPB memory sizes
(class C fits the 8 GiB cache -> low miss ratio; class D exceeds it ->
high miss ratio, matching Fig. 1's grouping).

Kernel signatures modelled:

* **bt/sp/lu** — block-structured 3D stencil sweeps: long sequential
  runs over the thread's partition with strong reuse of recent planes;
* **cg** — conjugate gradient: sequential vector traffic plus random
  gathers over a large sparse matrix;
* **ft** — 3D FFT: sequential reads, large-stride transpose writes
  across the whole footprint (write-heavy, little reuse -> the paper's
  poster child for wasted tag-check data movement);
* **is** — integer sort: sequential key reads with random bucket
  scatter writes;
* **mg** — multigrid V-cycles over a hierarchy of grids (mixed stride);
* **ua** — unstructured adaptive mesh: irregular, pointer-chasing-like
  accesses with a modest hot set.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.cache.request import Op
from repro.config.system import GIB, MIB, SystemConfig
from repro.errors import WorkloadError
from repro.sim.kernel import ns
from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec, mixture_stream

NPB_KERNELS = ("bt", "cg", "ft", "is", "lu", "mg", "sp", "ua")

#: Approximate resident footprints (bytes) of NPB classes C and D.
_FOOTPRINTS: Dict[str, Dict[str, int]] = {
    "bt": {"C": int(1.7 * GIB), "D": 40 * GIB},
    "cg": {"C": int(0.9 * GIB), "D": 24 * GIB},
    "ft": {"C": 5 * GIB, "D": 80 * GIB},
    "is": {"C": 1 * GIB, "D": 33 * GIB},
    "lu": {"C": int(0.6 * GIB), "D": 24 * GIB},
    "mg": {"C": int(3.4 * GIB), "D": 27 * GIB},
    "sp": {"C": int(1.6 * GIB), "D": 24 * GIB},
    "ua": {"C": int(0.5 * GIB), "D": 26 * GIB},
}

#: (read_fraction, hot_fraction, hot_probability, sequential_run, gap_ns)
_SIGNATURES: Dict[str, tuple] = {
    "bt": (0.72, 0.08, 0.55, 48.0, 15.0),
    "cg": (0.85, 0.04, 0.45, 8.0, 13.0),
    "ft": (0.65, 0.03, 0.20, 24.0, 13.0),
    "is": (0.65, 0.05, 0.25, 12.0, 13.0),
    "lu": (0.70, 0.10, 0.60, 40.0, 15.0),
    "mg": (0.65, 0.05, 0.30, 28.0, 13.0),
    "sp": (0.70, 0.08, 0.55, 44.0, 15.0),
    "ua": (0.68, 0.06, 0.40, 6.0, 14.0),
}


def npb_spec(kernel: str, variant: str) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for an NPB kernel and class."""
    if kernel not in _FOOTPRINTS:
        raise WorkloadError(f"unknown NPB kernel {kernel!r}")
    if variant not in ("C", "D"):
        raise WorkloadError(f"unknown NPB class {variant!r}")
    read_frac, hot_frac, hot_prob, run, gap = _SIGNATURES[kernel]
    footprint = _FOOTPRINTS[kernel][variant]
    # Class C working sets mostly fit the cache: effectively all accesses
    # land in resident data, so treat the whole footprint as "hot".
    miss_class = MissClass.LOW if footprint <= 8 * GIB else MissClass.HIGH
    if miss_class is MissClass.LOW:
        hot_frac, hot_prob = 1.0, 1.0
    else:
        # Class D: the short-term reuse that exists is captured by the
        # 512 KB private caches and never reaches the DRAM cache, so the
        # post-L2 stream is nearly reuse-free; cores also slow down
        # (memory-starved), lowering per-core demand intensity.
        hot_prob = min(hot_prob, 0.15)
        gap *= 2.0
    return WorkloadSpec(
        name=f"{kernel}.{variant}",
        suite="npb",
        kernel=kernel,
        variant=variant,
        paper_footprint_bytes=footprint,
        read_fraction=read_frac,
        hot_fraction=hot_frac,
        hot_probability=hot_prob,
        sequential_run=run,
        mean_gap_ns=gap,
        miss_class=miss_class,
    )


def npb_specs() -> List[WorkloadSpec]:
    """All 16 NPB workloads (8 kernels x classes C, D)."""
    return [npb_spec(kernel, variant)
            for kernel in NPB_KERNELS for variant in ("C", "D")]


# ---------------------------------------------------------------------------
# Kernel-specific generators
# ---------------------------------------------------------------------------
def ft_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
              cores: int, seed: int) -> Iterator[DemandRecord]:
    """FT: sequential read sweep + large-stride transpose writes.

    The transpose writes scatter across the whole footprint with a
    plane-sized stride, defeating both spatial and temporal locality —
    the write-miss-clean traffic that Figures 3/13 highlight.
    """
    rng = np.random.default_rng((seed * 7_368_787 + core_id) & 0x7FFFFFFF)
    footprint = spec.footprint_blocks(config)
    span = max(64, footprint // cores)
    base = (core_id * span) % footprint
    stride = max(64, footprint // 512)  # plane-sized transpose stride
    cursor = 0
    write_cursor = int(rng.integers(footprint))
    gap_ps = ns(spec.mean_gap_ns)
    while True:
        # A run of sequential reads from this core's pencil...
        run = int(rng.geometric(1.0 / spec.sequential_run))
        for _ in range(max(1, run)):
            block = (base + cursor) % footprint
            cursor = (cursor + 1) % span
            pc = 0
            yield int(rng.exponential(gap_ps)), Op.READ, block, pc
        # ...then the transposed writes land a stride apart.
        writes = max(1, int(run * (1.0 - spec.read_fraction) /
                            max(spec.read_fraction, 0.05)))
        for _ in range(writes):
            write_cursor = (write_cursor + stride + int(rng.integers(8))) % footprint
            yield int(rng.exponential(gap_ps)), Op.WRITE, write_cursor, 64


def is_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
              cores: int, seed: int) -> Iterator[DemandRecord]:
    """IS: sequential key reads + uniformly random bucket scatters."""
    rng = np.random.default_rng((seed * 9_999_991 + core_id) & 0x7FFFFFFF)
    footprint = spec.footprint_blocks(config)
    keys_span = max(64, footprint // (2 * cores))
    keys_base = (core_id * keys_span) % footprint
    bucket_base = footprint // 2
    bucket_span = max(64, footprint - bucket_base)
    cursor = 0
    gap_ps = ns(spec.mean_gap_ns)
    while True:
        block = (keys_base + cursor) % max(1, footprint // 2)
        cursor = (cursor + 1) % keys_span
        yield int(rng.exponential(gap_ps)), Op.READ, block, 0
        if rng.random() < (1.0 - spec.read_fraction) / max(spec.read_fraction, 0.05):
            scatter = bucket_base + int(rng.integers(bucket_span))
            yield int(rng.exponential(gap_ps)), Op.WRITE, scatter, 64


def cg_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
              cores: int, seed: int) -> Iterator[DemandRecord]:
    """CG: hot vector traffic + random gathers over the sparse matrix."""
    rng = np.random.default_rng((seed * 15_485_863 + core_id) & 0x7FFFFFFF)
    footprint = spec.footprint_blocks(config)
    vector_span = max(64, int(footprint * spec.hot_fraction))
    matrix_span = max(64, footprint - vector_span)
    cursor = int(rng.integers(vector_span))
    gap_ps = ns(spec.mean_gap_ns)
    while True:
        roll = rng.random()
        if roll < spec.hot_probability:
            cursor = (cursor + 1) % vector_span
            op = Op.READ if rng.random() < 0.8 else Op.WRITE
            yield int(rng.exponential(gap_ps)), op, cursor, 0
        else:
            gather = vector_span + int(rng.integers(matrix_span))
            yield int(rng.exponential(gap_ps)), Op.READ, gather % footprint, 64


_KERNEL_STREAMS = {
    "ft": ft_stream,
    "is": is_stream,
    "cg": cg_stream,
}


def npb_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
               cores: int, seed: int) -> Iterator[DemandRecord]:
    """Per-core demand stream for an NPB workload."""
    factory = _KERNEL_STREAMS.get(spec.kernel)
    if factory is not None and spec.miss_class is MissClass.HIGH:
        return factory(spec, config, core_id, cores, seed)
    return mixture_stream(spec, config, core_id, cores, seed)
