"""Demand-trace recording and replay.

The paper drives gem5 with real binaries; downstream users of this
library often have *memory traces* instead (from Pin, DynamoRIO, or a
prior simulation). This module defines a simple portable trace format
and the glue to replay a trace file through the experiment runner:

* one record per line: ``<gap_ps> <R|W> <block_addr> [pc]``;
* ``#``-prefixed comment lines and blank lines are ignored;
* ``.gz`` paths are compressed transparently.

:func:`capture_trace` snapshots any generator (e.g. a suite workload)
into a file; :func:`trace_streams` replays a file as per-core demand
streams, splitting records round-robin or by a recorded core column.
"""

from __future__ import annotations

import gzip
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.cache.request import Op
from repro.errors import WorkloadError
from repro.workloads.base import DemandRecord

_OP_CODES = {"R": Op.READ, "W": Op.WRITE}
_OP_NAMES = {Op.READ: "R", Op.WRITE: "W"}


@dataclass(frozen=True)
class TraceStats:
    """Summary of a trace file."""

    records: int
    reads: int
    writes: int
    distinct_blocks: int
    total_gap_ps: int

    @property
    def read_fraction(self) -> float:
        return self.reads / self.records if self.records else 0.0

    @property
    def footprint_bytes(self) -> int:
        return self.distinct_blocks * 64

    @property
    def mean_gap_ns(self) -> float:
        return self.total_gap_ps / self.records / 1000 if self.records else 0.0


def _open(path: Union[str, Path], mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_trace(path: Union[str, Path],
                records: Iterable[DemandRecord],
                header: Optional[str] = None) -> int:
    """Write demand records to ``path``; returns the record count."""
    count = 0
    with _open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for gap, op, block, pc in records:
            handle.write(f"{gap} {_OP_NAMES[op]} {block} {pc}\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[DemandRecord]:
    """Stream demand records from a trace file."""
    with _open(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise WorkloadError(
                    f"{path}:{line_no}: expected 'gap R|W block [pc]', "
                    f"got {line!r}"
                )
            try:
                gap = int(parts[0])
                op = _OP_CODES[parts[1].upper()]
                block = int(parts[2])
                pc = int(parts[3]) if len(parts) == 4 else 0
            except (ValueError, KeyError) as exc:
                raise WorkloadError(f"{path}:{line_no}: bad record: {exc}")
            if gap < 0 or block < 0:
                raise WorkloadError(f"{path}:{line_no}: negative field")
            yield gap, op, block, pc


def capture_trace(path: Union[str, Path],
                  stream: Iterator[DemandRecord],
                  count: int,
                  header: Optional[str] = None) -> int:
    """Snapshot ``count`` records of any demand generator into a file."""
    return write_trace(path, itertools.islice(stream, count), header=header)


def trace_stats(path: Union[str, Path]) -> TraceStats:
    """One pass over a trace collecting its summary statistics."""
    records = reads = 0
    blocks = set()
    total_gap = 0
    for gap, op, block, _pc in read_trace(path):
        records += 1
        if op is Op.READ:
            reads += 1
        blocks.add(block)
        total_gap += gap
    return TraceStats(records=records, reads=reads, writes=records - reads,
                      distinct_blocks=len(blocks), total_gap_ps=total_gap)


def trace_streams(path: Union[str, Path], cores: int) -> List[Iterator[DemandRecord]]:
    """Split one trace into per-core replay streams (round-robin).

    The whole trace is materialised once (traces are finite, unlike the
    synthetic generators); each core replays its interleaved slice with
    gaps preserved.
    """
    if cores <= 0:
        raise WorkloadError("cores must be positive")
    all_records = list(read_trace(path))
    if not all_records:
        raise WorkloadError(f"{path}: empty trace")

    def slice_for(core: int) -> Iterator[DemandRecord]:
        own = all_records[core::cores]
        # Replay wraps so a fixed work quantum larger than the slice
        # still completes (the runner decides how many demands to use).
        return itertools.cycle(own) if own else iter(())

    return [slice_for(core) for core in range(cores)]
