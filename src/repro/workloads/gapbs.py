"""GAP Benchmark Suite (GAPBS) workload models, scales 22 and 25 (§IV-B).

The paper runs the six GAPBS kernels on synthetic Kronecker/uniform
graphs with scales 22 (~4 M vertices, fits the cache -> low miss) and
25 (~33 M vertices, several times the cache -> high miss).

The generator models a CSR layout: a vertex region (offsets + per-
vertex properties, ~20 % of the footprint) and an edge region (~80 %).
A step visits a vertex, streams a power-law-distributed run of its
edges sequentially, and performs a random property gather per few
edges — the irregular access that makes graph analytics miss-heavy.
Kernels differ in their property write traffic (pr/sssp/bc update
scores; bfs/cc mark labels; tc is read-only) and scan/gather balance.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.cache.request import Op
from repro.config.system import GIB, SystemConfig
from repro.errors import WorkloadError
from repro.sim.kernel import ns
from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec

GAPBS_KERNELS = ("bc", "bfs", "cc", "pr", "sssp", "tc")

#: Approximate footprints: scale-22 Kronecker ~0.6 GiB, scale-25 ~10-20 GiB
#: (edges dominate; kernels with auxiliary state run larger).
_FOOTPRINTS: Dict[str, Dict[str, int]] = {
    "bc": {"22": int(0.8 * GIB), "25": 40 * GIB},
    "bfs": {"22": int(0.6 * GIB), "25": 28 * GIB},
    "cc": {"22": int(0.6 * GIB), "25": 34 * GIB},
    "pr": {"22": int(0.7 * GIB), "25": 34 * GIB},
    "sssp": {"22": int(1.0 * GIB), "25": 48 * GIB},
    "tc": {"22": int(0.7 * GIB), "25": 34 * GIB},
}

#: (write_fraction_of_property_ops, gather_per_edges, scan_weight, gap_ns)
_SIGNATURES: Dict[str, tuple] = {
    "bc": (0.25, 1, 0.5, 13.0),
    "bfs": (0.20, 1, 0.4, 14.0),
    "cc": (0.22, 1, 0.5, 14.0),
    "pr": (0.30, 1, 0.6, 12.0),
    "sssp": (0.25, 1, 0.4, 13.0),
    "tc": (0.02, 0, 0.9, 12.0),
}


def gapbs_spec(kernel: str, scale: str) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for a GAPBS kernel and scale."""
    if kernel not in _FOOTPRINTS:
        raise WorkloadError(f"unknown GAPBS kernel {kernel!r}")
    if scale not in ("22", "25"):
        raise WorkloadError(f"unknown GAPBS scale {scale!r}")
    write_frac, _gather, scan_weight, gap = _SIGNATURES[kernel]
    footprint = _FOOTPRINTS[kernel][scale]
    miss_class = MissClass.LOW if footprint <= 8 * GIB else MissClass.HIGH
    if miss_class is MissClass.HIGH:
        gap *= 2.0
    # Aggregate read fraction: edge scans are reads; property ops mix.
    read_fraction = 1.0 - (1.0 - scan_weight) * write_frac
    return WorkloadSpec(
        name=f"{kernel}.{scale}",
        suite="gapbs",
        kernel=kernel,
        variant=scale,
        paper_footprint_bytes=footprint,
        read_fraction=read_fraction,
        hot_fraction=0.2,            # vertex/property region
        hot_probability=0.45,
        sequential_run=8.0,
        mean_gap_ns=gap,
        miss_class=miss_class,
    )


def gapbs_specs() -> List[WorkloadSpec]:
    """All 12 GAPBS workloads (6 kernels x scales 22, 25)."""
    return [gapbs_spec(kernel, scale)
            for kernel in GAPBS_KERNELS for scale in ("22", "25")]


def gapbs_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
                 cores: int, seed: int) -> Iterator[DemandRecord]:
    """Per-core CSR traversal stream for a GAPBS workload."""
    write_frac, gather_per_edges, scan_weight, gap_ns_mean = _SIGNATURES[spec.kernel]
    gap_ns_mean = spec.mean_gap_ns
    rng = np.random.default_rng((seed * 32_452_843 + core_id) & 0x7FFFFFFF)
    footprint = spec.footprint_blocks(config)
    vertex_span = max(64, footprint // 5)        # offsets + properties
    edge_base = vertex_span
    edge_span = max(64, footprint - vertex_span)
    gap_ps = ns(gap_ns_mean)
    edge_cursor = int(rng.integers(edge_span))
    while True:
        # Visit a vertex: offsets + its property (vertex region, reused).
        vertex = int(rng.integers(vertex_span))
        yield int(rng.exponential(gap_ps)), Op.READ, vertex, 0
        # Stream this vertex's adjacency list: power-law degree. Edge
        # traffic dominates graph kernels (the CSR edge array is several
        # times the vertex data), so most post-LLC accesses land there.
        degree = min(512, int(rng.pareto(1.4)) + 8)
        edge_blocks = max(2, degree // 4)
        if rng.random() < scan_weight:
            edge_cursor = int(rng.integers(edge_span))
        for i in range(edge_blocks):
            block = edge_base + (edge_cursor + i) % edge_span
            yield int(rng.exponential(gap_ps)), Op.READ, block, 8
            # Gather neighbour properties: the random part (but the
            # property arrays are mostly cache-resident).
            if i % 4 == 0:
                for _ in range(gather_per_edges):
                    neighbour = int(rng.integers(vertex_span))
                    if rng.random() < write_frac:
                        yield (int(rng.exponential(gap_ps)), Op.WRITE,
                               neighbour, 16)
                    else:
                        yield (int(rng.exponential(gap_ps)), Op.READ,
                               neighbour, 16)
        edge_cursor = (edge_cursor + edge_blocks) % edge_span
