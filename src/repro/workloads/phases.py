"""Multi-phase workloads.

Real NPB applications alternate execution phases with very different
memory behaviour (ft: compute vs transpose; cg: SpMV vs vector
updates) — which is exactly why the paper samples fixed work regions
with LoopPoint rather than averaging whole programs (§IV-B: "the
workload has different execution phases").

A :class:`PhasedWorkload` chains per-phase generators: each phase
contributes a fixed number of demands before the stream switches, and
the phase schedule cycles. Phases reuse the single-phase
:class:`~repro.workloads.base.WorkloadSpec` machinery, with optional
per-phase address offsets so phases can touch disjoint regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.errors import WorkloadError
from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec
from repro.workloads.suite import demand_stream


@dataclass(frozen=True)
class Phase:
    """One phase: a spec, how many demands it runs, an address offset."""

    spec: WorkloadSpec
    demands: int
    block_offset: int = 0

    def __post_init__(self) -> None:
        if self.demands <= 0:
            raise WorkloadError("phase demands must be positive")
        if self.block_offset < 0:
            raise WorkloadError("phase offset must be non-negative")


class PhasedWorkload:
    """A cyclic schedule of phases presented as one workload.

    The combined footprint is the maximum over phases (plus offsets),
    so the runner's pre-warm covers every phase's resident set.
    """

    def __init__(self, name: str, phases: Sequence[Phase]) -> None:
        if not phases:
            raise WorkloadError("a phased workload needs at least one phase")
        self.name = name
        self.phases = list(phases)

    # ------------------------------------------------------------------
    def spec(self, config: SystemConfig) -> WorkloadSpec:
        """A surrogate single spec describing the combined behaviour.

        Used by the runner for pre-warming and bookkeeping; the actual
        records come from :meth:`stream`.
        """
        total = sum(p.demands for p in self.phases)
        footprint = max(
            p.spec.paper_footprint_bytes + p.block_offset * 64 / max(
                config.scale, 1e-12)
            for p in self.phases
        )
        read_fraction = sum(
            p.spec.read_fraction * p.demands for p in self.phases) / total
        mean_gap = sum(
            p.spec.mean_gap_ns * p.demands for p in self.phases) / total
        worst = max(self.phases,
                    key=lambda p: p.spec.paper_footprint_bytes).spec
        return WorkloadSpec(
            name=self.name,
            suite="synthetic",
            kernel="phased",
            variant="-",
            paper_footprint_bytes=int(footprint),
            read_fraction=min(1.0, read_fraction),
            hot_fraction=1.0,
            hot_probability=0.0,
            sequential_run=1.0,
            mean_gap_ns=mean_gap,
            miss_class=worst.miss_class,
        )

    def stream(self, config: SystemConfig, core_id: int, cores: int,
               seed: int) -> Iterator[DemandRecord]:
        """Per-core stream cycling through the phase schedule."""
        sub_streams = [
            demand_stream(phase.spec, config, core_id, cores,
                          seed + 1009 * index)
            for index, phase in enumerate(self.phases)
        ]
        while True:
            for phase, sub in zip(self.phases, sub_streams):
                for _ in range(phase.demands):
                    gap, op, block, pc = next(sub)
                    yield gap, op, block + phase.block_offset, pc

    def streams(self, config: SystemConfig, seed: int = 42) -> List[Iterator]:
        return [self.stream(config, core, config.cores, seed)
                for core in range(config.cores)]


def run_phased_experiment(
    design: str,
    workload: PhasedWorkload,
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 2000,
    seed: int = 42,
):
    """Simulate a phased workload (mirrors ``run_experiment``)."""
    from repro.experiments.runner import _run

    config = config or SystemConfig()
    return _run(design, workload.spec(config), config,
                workload.streams(config, seed), demands_per_core, seed)
