"""Simple synthetic workloads for tests, examples and sensitivity studies."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cache.request import Op
from repro.config.system import GIB, SystemConfig
from repro.sim.kernel import ns
from repro.workloads.base import DemandRecord, MissClass, WorkloadSpec, mixture_stream


def uniform_spec(name: str = "uniform", footprint_gib: float = 16.0,
                 read_fraction: float = 0.7, mean_gap_ns: float = 8.0) -> WorkloadSpec:
    """Uniform random accesses over the footprint (worst-case locality)."""
    return WorkloadSpec(
        name=name,
        suite="synthetic",
        kernel="uniform",
        variant="-",
        paper_footprint_bytes=int(footprint_gib * GIB),
        read_fraction=read_fraction,
        hot_fraction=1.0,
        hot_probability=0.0,
        sequential_run=1.0,
        mean_gap_ns=mean_gap_ns,
        miss_class=MissClass.HIGH if footprint_gib > 8 else MissClass.LOW,
    )


def stream_spec(name: str = "stream", footprint_gib: float = 2.0,
                read_fraction: float = 0.6, mean_gap_ns: float = 4.0) -> WorkloadSpec:
    """Pure sequential streaming (STREAM-like copy/scale kernels)."""
    return WorkloadSpec(
        name=name,
        suite="synthetic",
        kernel="stream",
        variant="-",
        paper_footprint_bytes=int(footprint_gib * GIB),
        read_fraction=read_fraction,
        hot_fraction=1.0,
        hot_probability=0.0,
        sequential_run=256.0,
        mean_gap_ns=mean_gap_ns,
        miss_class=MissClass.LOW if footprint_gib <= 8 else MissClass.HIGH,
    )


def hot_cold_spec(name: str = "hot_cold", footprint_gib: float = 32.0,
                  hot_probability: float = 0.6, read_fraction: float = 0.7,
                  mean_gap_ns: float = 8.0) -> WorkloadSpec:
    """A tunable hot-set workload for miss-ratio sweeps."""
    return WorkloadSpec(
        name=name,
        suite="synthetic",
        kernel="hot_cold",
        variant="-",
        paper_footprint_bytes=int(footprint_gib * GIB),
        read_fraction=read_fraction,
        hot_fraction=0.05,
        hot_probability=hot_probability,
        sequential_run=8.0,
        mean_gap_ns=mean_gap_ns,
        miss_class=MissClass.HIGH,
    )


def write_storm_spec(name: str = "write_storm", footprint_gib: float = 32.0,
                     mean_gap_ns: float = 5.0) -> WorkloadSpec:
    """Write-dominated conflict traffic: stresses write-miss-dirty
    handling and the flush buffer (§V-E)."""
    return WorkloadSpec(
        name=name,
        suite="synthetic",
        kernel="write_storm",
        variant="-",
        paper_footprint_bytes=int(footprint_gib * GIB),
        read_fraction=0.3,
        hot_fraction=0.02,
        hot_probability=0.3,
        sequential_run=2.0,
        mean_gap_ns=mean_gap_ns,
        miss_class=MissClass.HIGH,
    )


def synthetic_stream(spec: WorkloadSpec, config: SystemConfig, core_id: int,
                     cores: int, seed: int) -> Iterator[DemandRecord]:
    """All synthetic kernels use the generic mixture generator."""
    return mixture_stream(spec, config, core_id, cores, seed)
