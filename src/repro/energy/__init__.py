"""Energy/power model of the memory subsystem."""

from repro.energy.power_model import EnergyMeter, EnergyModel

__all__ = ["EnergyMeter", "EnergyModel"]
