"""Per-operation energy model for the memory subsystem (Fig. 13, §V-C).

The paper builds an HBM3 power model from HBM2 data [55] scaled to HBM3
speeds, notes that ~62.6 % of HBM power goes to moving data between the
DRAM core and the controller [10], and adds overheads for the tag mats,
the HM bus, and the extra signals. Absolute joules are proprietary, so
this model uses public-ballpark per-operation energies chosen to
reproduce that *structure*:

* energy is dominated by bytes moved on the DQ bus (so designs' energy
  ratios track their bandwidth-bloat ratios, as in Table IV -> Fig 13);
* activates are a smaller, second-order term (TDRAM's extra tag-mat
  activates "increase power slightly, but it is small compared to data
  transfer", §V-C);
* a runtime-proportional background term (refresh, clocking, PHY) makes
  energy = power x runtime reward faster designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.stats.counters import CounterSet

PJ = 1.0  # energies below are in picojoules


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energies (pJ) and background power (W)."""

    act_data_pj: float = 1200.0      #: paired-bank activate (2 x 1 KiB rows)
    act_tag_pj: float = 200.0        #: tag-mat activate (4 small mats, §III-C5)
    col_op_pj: float = 300.0         #: internal column read/write of 64 B
    dq_pj_per_bit: float = 6.0       #: core<->controller data movement
    hm_packet_pj: float = 144.0      #: 24-bit HM packet at DQ energy/bit
    cmd_pj: float = 20.0             #: one CA command slot
    refresh_pj: float = 6000.0       #: all-bank refresh burst
    background_w_per_channel: float = 0.08
    tag_background_factor: float = 0.10  #: extra background for tag mats/HM PHY

    def dq_bytes_pj(self, n_bytes: int) -> float:
        return n_bytes * 8 * self.dq_pj_per_bit


class EnergyMeter:
    """Accumulates operation counts and integrates energy.

    Controllers call :meth:`record` / :meth:`add_dq_bytes` as they
    commit resources; :meth:`total_pj` integrates background power over
    the measured runtime.
    """

    _OP_FIELDS: Dict[str, str] = {
        "act_data": "act_data_pj",
        "act_tag": "act_tag_pj",
        "col_op": "col_op_pj",
        "hm_packet": "hm_packet_pj",
        "cmd": "cmd_pj",
        "refresh": "refresh_pj",
    }

    def __init__(self, model: EnergyModel, channels: int, has_tag_path: bool) -> None:
        self.model = model
        self.channels = channels
        self.has_tag_path = has_tag_path
        self.ops = CounterSet()
        self.dq_bytes = 0

    def record(self, op: str, count: int = 1) -> None:
        if op not in self._OP_FIELDS:
            raise ValueError(f"unknown energy op {op!r}")
        self.ops.add(op, count)

    def add_dq_bytes(self, n_bytes: int) -> None:
        self.dq_bytes += n_bytes

    def dynamic_pj(self) -> float:
        total = self.model.dq_bytes_pj(self.dq_bytes)
        for op, attr in self._OP_FIELDS.items():
            total += self.ops[op] * getattr(self.model, attr)
        return total

    def breakdown_pj(self, runtime_ps: int = 0) -> Dict[str, float]:
        """Energy by component (data movement, activates, …, background).

        The shares make the paper's data-movement-dominates observation
        ([10]: ~62.6 % of HBM power) inspectable per run.
        """
        parts: Dict[str, float] = {
            "data_movement": self.model.dq_bytes_pj(self.dq_bytes),
        }
        for op, attr in self._OP_FIELDS.items():
            parts[op] = self.ops[op] * getattr(self.model, attr)
        if runtime_ps:
            parts["background"] = self.background_w() * runtime_ps
        return parts

    def background_w(self) -> float:
        power = self.model.background_w_per_channel * self.channels
        if self.has_tag_path:
            power *= 1.0 + self.model.tag_background_factor
        return power

    def total_pj(self, runtime_ps: int) -> float:
        """Dynamic + background energy over ``runtime_ps`` picoseconds.

        1 W x 1 ps = 1 pJ, so the unit algebra is direct.
        """
        if runtime_ps < 0:
            raise ValueError("runtime must be non-negative")
        return self.dynamic_pj() + self.background_w() * runtime_ps

    def reset(self) -> None:
        self.ops.reset()
        self.dq_bytes = 0
