"""System configuration (Table III) with geometry scaling.

The paper models 1/8 of a Xeon-Max-class node: 8 cores, an 8 GiB HBM
DRAM cache (8 channels), and 128 GiB of DDR5 (2 channels). Simulating
gigabytes of traffic in Python is unnecessary: miss behaviour in a
direct-mapped cache depends on the footprint/capacity *ratio* and the
reuse structure, so the default configuration scales the cache to
64 MiB and scales every workload footprint by the same factor, keeping
all timing parameters at their Table III values. ``SystemConfig.paper()``
restores the full-size geometry for users with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.dram.address import DramGeometry
from repro.dram.timing import (
    DramTiming,
    TagTiming,
    ddr5_timing,
    hbm3_cache_timing,
    rldram_like_tag_timing,
)
from repro.energy.power_model import EnergyModel
from repro.errors import ConfigError
from repro.obs.config import ObsConfig
from repro.ras.config import RasConfig
from repro.sim.sampling import SamplingConfig

GIB = 1024 ** 3
MIB = 1024 ** 2

#: The paper's DRAM-cache capacity; workload footprints are specified
#: against this and scaled alongside the configured capacity.
PAPER_CACHE_BYTES = 8 * GIB

#: Observability-only fields: knobs a simulation may *read* without the
#: campaign cache key covering them, because they cannot change any
#: result — only where side artifacts land. Every entry carries the
#: reason; the SIM014 cache-key soundness prover validates this table
#: (unknown fields and empty reasons are findings) and treats anything
#: not listed here as result-affecting.
OBS_ONLY: Dict[str, str] = {
    "trace_dir": "per-host scratch path for trace artifacts; results "
                 "are byte-identical wherever traces are written",
}

#: Declared time-unit conversion helpers for the SIM015 dimension
#: checker: ``{callable_name: (argument_unit, result_unit)}``. The
#: kernel's ``ns()`` converts wall-number nanoseconds to integer
#: picoseconds and ``to_ns()`` inverts it; SIM015 flags arithmetic that
#: mixes units without passing through one of these.
TIME_UNIT_HELPERS: Dict[str, Tuple[str, str]] = {
    "ns": ("ns", "ps"),
    "to_ns": ("ps", "ns"),
}


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration (Table III, scalable)."""

    # -- DRAM cache device --
    cache_capacity_bytes: int = 64 * MIB
    cache_channels: int = 8
    cache_banks_per_channel: int = 16
    cache_ways: int = 1
    cache_timing: DramTiming = field(default_factory=hbm3_cache_timing)
    tag_timing: TagTiming = field(default_factory=rldram_like_tag_timing)
    # -- DRAM cache controller --
    read_buffer_entries: int = 64
    write_buffer_entries: int = 64
    flush_buffer_entries: int = 16
    enable_probing: bool = True
    use_predictor: bool = False
    use_prefetcher: bool = False
    prefetch_degree: int = 2
    #: "all_bank" (default; creates the DQ-idle refresh windows TDRAM
    #: uses for flush unloads) or "per_bank" (staggered, §III-C2 option)
    cache_refresh_policy: str = "all_bank"
    #: TDRAM flush-buffer unloading: "opportunistic" (read-miss-clean
    #: slots + refresh windows + forced, §III-D2) or "forced_only"
    #: (explicit drains only — the ablation knob isolating the
    #: opportunistic channels' contribution)
    flush_unload_policy: str = "opportunistic"
    #: tag-store implementation: "set_associative" (the seamed default)
    #: or "reference" (frozen pre-seam store, bit-identity A/B runs)
    cache_organization: str = "set_associative"
    # -- design-zoo knobs: Gemini-style hybrid mapping (gemini_hybrid) --
    #: fraction of cache frames reserved for the direct-mapped hot region
    gemini_direct_fraction: float = 0.5
    #: associativity of the cold region's sets
    gemini_assoc_ways: int = 4
    #: demand touches before a block is promoted to the hot region
    gemini_hot_threshold: int = 4
    #: extra per-probe search latency in the associative region
    gemini_assoc_probe_ns: float = 4.0
    # -- design-zoo knobs: TicToc-style tag cache + dirty list (tictoc) --
    #: entries in the on-die SRAM tag cache
    tictoc_tag_cache_entries: int = 4096
    #: cache sets per dirty-list region
    tictoc_dirty_region_sets: int = 64
    #: SRAM tag-cache lookup latency
    tictoc_tag_latency_ns: float = 2.0
    # -- main memory --
    mm_channels: int = 2
    mm_banks_per_channel: int = 32           #: DDR5: 8 bank groups x 4 banks
    mm_capacity_bytes: int = 16 * 64 * MIB   #: 16x the cache, as in the paper
    mm_timing: DramTiming = field(default_factory=ddr5_timing)
    # -- backing-store backend tier (docs/backends.md) --
    #: "ddr5" (default open-page FR-FCFS model), "ddr5_reference"
    #: (frozen pre-seam copy for bit-identity A/B runs), "pcm_like"
    #: (asymmetric timing, bounded MSHRs, deferred writes, wear), or
    #: "cxl_like" (serialized link latency + bandwidth credits)
    memory_backend: str = "ddr5"
    #: pcm_like: array service time of one 64 B read / write
    pcm_read_ns: float = 150.0
    pcm_write_ns: float = 500.0
    #: pcm_like: bounded read MSHRs (coalescing; overflow reads stall)
    pcm_mshr_entries: int = 32
    #: pcm_like: deferred write-queue capacity (overflow is counted)
    pcm_write_queue_entries: int = 64
    #: pcm_like: period of the tick event draining deferred writes
    pcm_drain_tick_ns: float = 50.0
    #: cxl_like: flat link + device latency added to every access
    cxl_latency_ns: float = 180.0
    #: cxl_like: serialized link bandwidth for 64 B transfers (GB/s)
    cxl_bandwidth_gbps: float = 32.0
    #: cxl_like: outstanding-request credits (latency-overlap bound)
    cxl_credits: int = 16
    # -- cache allocation policy (rides the controller's mode seam) --
    #: "write_allocate" (default: misses fill the cache),
    #: "write_only" (read misses stream through without allocating —
    #: only dirty traffic occupies the cache), or "write_around"
    #: (write misses bypass straight to the backend; reads allocate)
    cache_mode: str = "write_allocate"
    # -- processors / front end --
    cores: int = 8
    #: Effective memory-level parallelism of one core on DRAM-latency
    #: misses (OoO windows sustain ~4 concurrent LLC misses).
    max_outstanding_reads_per_core: int = 4
    # -- methodology --
    warmup_fraction: float = 0.2
    #: kernel/controller stepping: "event" (the exact reference path)
    #: or "batched" (sparse-calendar bucket drains + structure-of-
    #: arrays bank state; bit-identical results, several times the
    #: events/sec — see docs/performance.md)
    step_mode: str = "event"
    #: SMARTS-style sampled simulation (detailed windows + functional
    #: fast-forward with CI estimates); disabled = exact. Every knob
    #: rides the full-config cache key like any other field.
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    # -- reliability (fault campaigns; disabled by default) --
    ras: RasConfig = field(default_factory=RasConfig)
    # -- observability (tracing / epoch series / profiling; all off) --
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if self.cache_capacity_bytes <= 0 or self.mm_capacity_bytes <= 0:
            raise ConfigError("capacities must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if self.cores <= 0:
            raise ConfigError("cores must be positive")
        if self.cache_ways <= 0:
            raise ConfigError("cache_ways must be positive")
        if self.step_mode not in ("event", "batched"):
            raise ConfigError(
                f"unknown step_mode {self.step_mode!r}; choose from "
                "('event', 'batched')")
        if self.cache_organization not in ("set_associative", "reference"):
            raise ConfigError(
                f"unknown cache_organization {self.cache_organization!r}")
        if not 0.0 < self.gemini_direct_fraction < 1.0:
            raise ConfigError("gemini_direct_fraction must be in (0, 1)")
        if self.gemini_assoc_ways <= 0:
            raise ConfigError("gemini_assoc_ways must be positive")
        if self.gemini_hot_threshold <= 0:
            raise ConfigError("gemini_hot_threshold must be positive")
        if self.gemini_assoc_probe_ns < 0.0:
            raise ConfigError("gemini_assoc_probe_ns must be non-negative")
        if self.tictoc_tag_cache_entries <= 0:
            raise ConfigError("tictoc_tag_cache_entries must be positive")
        if self.tictoc_dirty_region_sets <= 0:
            raise ConfigError("tictoc_dirty_region_sets must be positive")
        if self.tictoc_tag_latency_ns < 0.0:
            raise ConfigError("tictoc_tag_latency_ns must be non-negative")
        if self.cache_channels <= 0 or self.mm_channels <= 0:
            raise ConfigError("channel counts must be positive")
        if self.cache_banks_per_channel <= 0 or self.mm_banks_per_channel <= 0:
            raise ConfigError("banks per channel must be positive")
        # Imported lazily: repro.memory pulls in the dram/energy models,
        # which must stay importable without the config package.
        from repro.memory.backend import MEMORY_BACKENDS

        if self.memory_backend not in MEMORY_BACKENDS:
            raise ConfigError(
                f"unknown memory_backend {self.memory_backend!r}; "
                f"choose from {MEMORY_BACKENDS}")
        if self.cache_mode not in ("write_allocate", "write_only",
                                   "write_around"):
            raise ConfigError(
                f"unknown cache_mode {self.cache_mode!r}; choose from "
                "('write_allocate', 'write_only', 'write_around')")
        if self.pcm_read_ns <= 0.0 or self.pcm_write_ns <= 0.0:
            raise ConfigError("pcm service times must be positive")
        if self.pcm_mshr_entries <= 0 or self.pcm_write_queue_entries <= 0:
            raise ConfigError("pcm queue bounds must be positive")
        if self.pcm_drain_tick_ns <= 0.0:
            raise ConfigError("pcm_drain_tick_ns must be positive")
        if self.cxl_latency_ns < 0.0:
            raise ConfigError("cxl_latency_ns must be non-negative")
        if self.cxl_bandwidth_gbps <= 0.0:
            raise ConfigError("cxl_bandwidth_gbps must be positive")
        if self.cxl_credits <= 0:
            raise ConfigError("cxl_credits must be positive")
        # Fail bad sweep configs fast: an inconsistent timing table
        # (e.g. tRCD > tRAS) otherwise simulates quiet nonsense.
        self.cache_timing.validate()
        self.mm_timing.validate()
        self.tag_timing.validate()

    @property
    def scale(self) -> float:
        """Geometry scale factor relative to the paper's 8 GiB cache."""
        return self.cache_capacity_bytes / PAPER_CACHE_BYTES

    @property
    def cache_blocks(self) -> int:
        return self.cache_capacity_bytes // 64

    def cache_geometry(self) -> DramGeometry:
        return DramGeometry.for_capacity(
            self.cache_capacity_bytes,
            channels=self.cache_channels,
            banks_per_channel=self.cache_banks_per_channel,
        )

    def mm_geometry(self) -> DramGeometry:
        return DramGeometry.for_capacity(
            self.mm_capacity_bytes,
            channels=self.mm_channels,
            banks_per_channel=self.mm_banks_per_channel,
        )

    def scaled_footprint_blocks(self, paper_footprint_bytes: int) -> int:
        """Scale a paper-sized workload footprint to this geometry."""
        blocks = int(paper_footprint_bytes * self.scale) // 64
        return max(64, blocks)

    def with_(self, **changes: object) -> "SystemConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The unscaled Table III configuration (8 GiB cache, 128 GiB DDR5)."""
        return cls(
            cache_capacity_bytes=8 * GIB,
            mm_capacity_bytes=128 * GIB,
        )

    @classmethod
    def small(cls) -> "SystemConfig":
        """A fast configuration for tests and examples (16 MiB cache)."""
        return cls(
            cache_capacity_bytes=16 * MIB,
            mm_capacity_bytes=16 * 16 * MIB,
        )
