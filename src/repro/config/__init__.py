"""System configuration (Table III)."""

from repro.config.system import GIB, MIB, PAPER_CACHE_BYTES, SystemConfig

__all__ = ["GIB", "MIB", "PAPER_CACHE_BYTES", "SystemConfig"]
