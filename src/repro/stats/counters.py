"""Lightweight statistics primitives used throughout the simulator."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class CounterSet:
    """A named bag of integer counters with dict-like access.

    >>> c = CounterSet()
    >>> c.add("read_hit")
    >>> c.add("read_hit", 2)
    >>> c["read_hit"]
    3
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def total(self, names: Iterable[str]) -> int:
        return sum(self._counts.get(name, 0) for name in names)

    def reset(self) -> None:
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class RasCounters(CounterSet):
    """Reliability event counters with well-known names.

    Populated by the RAS subsystem (:mod:`repro.ras`); every name below
    appears in ``dump_stats`` output under ``cache.ras.*`` and in
    :attr:`RunResult.ras`:

    * ``injected_tag`` / ``injected_tag_bits`` / ``injected_transient``
      / ``injected_hm`` / ``injected_flush`` — fault-injector activity;
    * ``tag_corrected`` / ``tag_detected`` — per-read SECDED outcomes;
    * ``tag_retries`` / ``tag_retry_success`` / ``tag_retry_exhausted``
      — bounded re-read recovery;
    * ``tag_uncorrectable`` / ``tag_clean_refetch`` / ``tag_data_loss``
      — post-retry policy (clean lines refetch, dirty lines are lost);
    * ``hm_packet_errors`` / ``hm_retries`` — HM-bus packet faults;
    * ``flush_corrected`` / ``flush_uncorrectable`` / ``flush_data_loss``
      — flush-buffer entry faults surfacing at unload;
    * ``scrub_passes`` / ``scrub_scanned`` / ``scrub_repaired`` /
      ``scrub_uncorrectable`` / ``scrub_data_loss`` — patrol scrubber;
    * ``degraded_ways`` / ``degraded_banks`` / ``degraded_evictions`` /
      ``degraded_writebacks`` / ``write_through_degraded`` /
      ``dropped_fill_degraded`` — graceful capacity degradation;
    * ``corrected_penalty_ps`` / ``retry_penalty_ps`` — summed added
      latency.
    """

    @property
    def corrected(self) -> int:
        """Errors repaired anywhere (demand reads, scrub, flush path)."""
        return self.total(("tag_corrected", "scrub_repaired",
                           "flush_corrected"))

    @property
    def uncorrectable(self) -> int:
        """Errors no retry or scrub could repair."""
        return self.total(("tag_uncorrectable", "scrub_uncorrectable",
                           "flush_uncorrectable"))

    @property
    def data_loss(self) -> int:
        """Dirty lines whose only copy was destroyed (counted, not fatal)."""
        return self.total(("tag_data_loss", "scrub_data_loss",
                           "flush_data_loss"))


class LatencyStat:
    """Streaming latency accumulator (picoseconds in, nanoseconds out)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ps = 0
        self.min_ps: int = 0
        self.max_ps: int = 0

    def record(self, latency_ps: int) -> None:
        if latency_ps < 0:
            raise ValueError(f"{self.name}: negative latency {latency_ps}")
        if self.count == 0:
            self.min_ps = self.max_ps = latency_ps
        else:
            self.min_ps = min(self.min_ps, latency_ps)
            self.max_ps = max(self.max_ps, latency_ps)
        self.count += 1
        self.total_ps += latency_ps

    @property
    def mean_ns(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_ps / self.count / 1000.0

    @property
    def min_ns(self) -> float:
        return self.min_ps / 1000.0

    @property
    def max_ns(self) -> float:
        return self.max_ps / 1000.0

    def reset(self) -> None:
        self.count = 0
        self.total_ps = 0
        self.min_ps = 0
        self.max_ps = 0

    def __repr__(self) -> str:
        return (
            f"LatencyStat({self.name}: n={self.count}, mean={self.mean_ns:.2f} ns)"
        )


class OccupancyStat:
    """Tracks a level over time (e.g. flush-buffer occupancy)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples = 0
        self.total_level = 0
        self.max_level = 0

    def sample(self, level: int) -> None:
        self.samples += 1
        self.total_level += level
        self.max_level = max(self.max_level, level)

    @property
    def mean_level(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total_level / self.samples

    def reset(self) -> None:
        self.samples = 0
        self.total_level = 0
        self.max_level = 0
