"""Lightweight statistics primitives used throughout the simulator."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class CounterSet:
    """A named bag of integer counters with dict-like access.

    >>> c = CounterSet()
    >>> c.add("read_hit")
    >>> c.add("read_hit", 2)
    >>> c["read_hit"]
    3
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def total(self, names: Iterable[str]) -> int:
        return sum(self._counts.get(name, 0) for name in names)

    def reset(self) -> None:
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class LatencyStat:
    """Streaming latency accumulator (picoseconds in, nanoseconds out)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ps = 0
        self.min_ps: int = 0
        self.max_ps: int = 0

    def record(self, latency_ps: int) -> None:
        if latency_ps < 0:
            raise ValueError(f"{self.name}: negative latency {latency_ps}")
        if self.count == 0:
            self.min_ps = self.max_ps = latency_ps
        else:
            self.min_ps = min(self.min_ps, latency_ps)
            self.max_ps = max(self.max_ps, latency_ps)
        self.count += 1
        self.total_ps += latency_ps

    @property
    def mean_ns(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_ps / self.count / 1000.0

    @property
    def min_ns(self) -> float:
        return self.min_ps / 1000.0

    @property
    def max_ns(self) -> float:
        return self.max_ps / 1000.0

    def reset(self) -> None:
        self.count = 0
        self.total_ps = 0
        self.min_ps = 0
        self.max_ps = 0

    def __repr__(self) -> str:
        return (
            f"LatencyStat({self.name}: n={self.count}, mean={self.mean_ns:.2f} ns)"
        )


class OccupancyStat:
    """Tracks a level over time (e.g. flush-buffer occupancy)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples = 0
        self.total_level = 0
        self.max_level = 0

    def sample(self, level: int) -> None:
        self.samples += 1
        self.total_level += level
        self.max_level = max(self.max_level, level)

    @property
    def mean_level(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total_level / self.samples

    def reset(self) -> None:
        self.samples = 0
        self.total_level = 0
        self.max_level = 0
