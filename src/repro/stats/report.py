"""Result reporting: JSON export and design-comparison tables.

Turns :class:`~repro.experiments.runner.RunResult` objects into
machine-readable JSON (for notebooks/CI) and human-readable comparison
tables (for terminals), without the caller touching field names.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Sequence, Union


def result_to_dict(result) -> Dict[str, object]:
    """Flatten a RunResult (a dataclass) to JSON-serialisable types."""
    raw = dataclasses.asdict(result)
    raw["runtime_ns"] = result.runtime_ns
    return raw


def results_to_json(results: Union[Iterable, object], indent: int = 2) -> str:
    """Serialise one result or an iterable of results to JSON."""
    if dataclasses.is_dataclass(results):
        payload: object = result_to_dict(results)
    else:
        payload = [result_to_dict(r) for r in results]
    return json.dumps(payload, indent=indent, sort_keys=True)


#: Default columns for :func:`comparison_table`, (header, attribute,
#: format) triples.
DEFAULT_COLUMNS = (
    ("design", "design", "{}"),
    ("runtime(us)", "runtime_ps", "{:.2f}"),
    ("tag(ns)", "tag_check_ns", "{:.1f}"),
    ("qdelay(ns)", "queue_delay_ns", "{:.1f}"),
    ("rdlat(ns)", "read_latency_ns", "{:.1f}"),
    ("miss", "miss_ratio", "{:.2f}"),
    ("bloat", "bloat_factor", "{:.2f}"),
    ("energy(uJ)", "energy_pj", "{:.1f}"),
)

_SCALED = {"runtime_ps": 1e-6, "energy_pj": 1e-6}


def comparison_table(results: Sequence, columns=DEFAULT_COLUMNS,
                     baseline: Optional[str] = None) -> str:
    """Render results side by side; optionally add a speedup column.

    ``baseline`` names the design every other row's speedup is computed
    against (fixed-work runtime ratio).
    """
    rows: List[List[str]] = []
    base = None
    if baseline is not None:
        base = next((r for r in results if r.design == baseline), None)
        if base is None:
            raise ValueError(f"baseline design {baseline!r} not in results")
    headers = [header for header, _attr, _fmt in columns]
    if base is not None:
        headers.append(f"speedup_vs_{baseline}")
    for result in results:
        row = []
        for _header, attr, fmt in columns:
            value = getattr(result, attr)
            if attr in _SCALED:
                value = value * _SCALED[attr]
            row.append(fmt.format(value))
        if base is not None:
            row.append(f"{result.speedup_over(base):.3f}")
        rows.append(row)
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


#: Display order for :func:`ras_report` — injection first, then the
#: recovery ladder, then the damage/degradation tallies.
_RAS_GROUPS = (
    ("injected", ("injected_tag", "injected_tag_bits", "injected_transient",
                  "injected_hm", "injected_flush")),
    ("recovery", ("tag_reads_checked", "tag_corrected", "tag_detected",
                  "tag_retries", "tag_retry_success", "tag_retry_exhausted",
                  "hm_packet_errors", "hm_retries", "scrub_passes",
                  "scrub_scanned", "scrub_repaired", "flush_corrected",
                  "tag_rewrite_cleared")),
    ("latency", ("corrected_penalty_ps", "retry_penalty_ps")),
    ("damage", ("tag_uncorrectable", "tag_clean_refetch", "tag_data_loss",
                "scrub_uncorrectable", "scrub_data_loss",
                "flush_uncorrectable", "flush_data_loss")),
    ("degradation", ("degraded_ways", "degraded_evictions",
                     "degraded_writebacks", "write_through_degraded",
                     "dropped_fill_degraded", "effective_ways", "dead_banks",
                     "capacity_fraction_pct")),
)


def ras_report(ras: Dict[str, int]) -> str:
    """Render a RAS counter snapshot as grouped ``name = value`` lines.

    Counters absent from the snapshot are skipped; snapshot entries not
    covered by a group (new counters) land in a trailing ``other``
    section, so nothing is silently dropped.
    """
    if not ras:
        return "ras: disabled (no campaign configured)"
    lines: List[str] = []
    shown = set()
    for title, names in _RAS_GROUPS:
        present = [name for name in names if name in ras]
        if not present:
            continue
        lines.append(f"[{title}]")
        for name in present:
            lines.append(f"  {name} = {ras[name]}")
            shown.add(name)
    leftover = sorted(set(ras) - shown)
    if leftover:
        lines.append("[other]")
        lines.extend(f"  {name} = {ras[name]}" for name in leftover)
    return "\n".join(lines)


def breakdown_bar(breakdown: Dict[str, float], width: int = 50) -> str:
    """A Figure 1-style ASCII stacked bar of hit/miss categories.

    >>> print(breakdown_bar({"read_hit": 0.5, "read_miss_clean": 0.5},
    ...                     width=10))  # doctest: +SKIP
    RRRRRccccc
    """
    symbols = {
        "read_hit": "R",
        "write_hit": "W",
        "read_miss_clean": "c",
        "read_miss_dirty": "d",
        "write_miss_clean": "m",
        "write_miss_dirty": "x",
    }
    bar = []
    for name, symbol in symbols.items():
        bar.append(symbol * round(breakdown.get(name, 0.0) * width))
    text = "".join(bar)
    return (text + " " * width)[:width]
