"""Bandwidth-bloat accounting (Fig. 3 and Table IV).

Following BEAR [28] (as adopted by the paper, §V-C): the **bloat
factor** is the total number of bytes moved divided by the total
*useful* bytes moved. Useful bytes are the single 64 B payload that
directly serves each demand — the hit data returned to the LLC, the
main-memory data that answers a read miss, or the written demand line.
Everything else the caching scheme moves is overhead: discarded
tag-check reads, 80 B-burst tag/padding, cache fills, dirty-victim
readouts, flush-buffer unloads, and main-memory writebacks. With this
definition each demand contributes exactly 64 useful bytes, and the
paper's Table IV values fall out of the hit/miss mix.

Every transfer is also tagged with a category so Figure 3's
useful/unuseful breakdown can be regenerated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class BandwidthLedger:
    """Byte ledger for one DRAM-cache device."""

    def __init__(self) -> None:
        self.useful_bytes = 0
        self.unuseful_bytes = 0
        self._by_category: Dict[str, int] = defaultdict(int)

    def move(self, category: str, n_bytes: int, useful: bool) -> None:
        """Record ``n_bytes`` moved on the DQ bus."""
        if n_bytes < 0:
            raise ValueError(f"negative byte count {n_bytes}")
        if useful:
            self.useful_bytes += n_bytes
        else:
            self.unuseful_bytes += n_bytes
        self._by_category[category] += n_bytes

    def move_split(self, category: str, useful_bytes: int, overhead_bytes: int) -> None:
        """Record a transfer whose payload is useful but carries overhead.

        Alloy/BEAR bursts are 80 B for a 64 B line: 64 B payload + 16 B
        tag/padding overhead.
        """
        self.move(category, useful_bytes, useful=True)
        if overhead_bytes:
            self.move(category + "_overhead", overhead_bytes, useful=False)

    @property
    def total_bytes(self) -> int:
        return self.useful_bytes + self.unuseful_bytes

    @property
    def bloat_factor(self) -> float:
        """Total bytes moved / useful bytes moved (>= 1.0)."""
        if self.useful_bytes == 0:
            return 1.0
        return self.total_bytes / self.useful_bytes

    @property
    def unuseful_fraction(self) -> float:
        """Share of all moved bytes that served no purpose (Fig. 3)."""
        if self.total_bytes == 0:
            return 0.0
        return self.unuseful_bytes / self.total_bytes

    def by_category(self) -> Dict[str, int]:
        return dict(self._by_category)

    def reset(self) -> None:
        self.useful_bytes = 0
        self.unuseful_bytes = 0
        self._by_category.clear()
