"""Statistics primitives and result reporting."""

from repro.stats.bandwidth import BandwidthLedger
from repro.stats.counters import CounterSet, LatencyStat, OccupancyStat
from repro.stats.dump import collect_stats, dump_stats
from repro.stats.report import (
    breakdown_bar,
    comparison_table,
    result_to_dict,
    results_to_json,
)

__all__ = [
    "BandwidthLedger",
    "CounterSet",
    "LatencyStat",
    "OccupancyStat",
    "collect_stats",
    "dump_stats",
    "breakdown_bar",
    "comparison_table",
    "result_to_dict",
    "results_to_json",
]
