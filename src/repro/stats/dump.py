"""gem5-style statistics dump for a simulated memory system.

``dump_stats(controller)`` walks a cache controller (or the no-cache
shim) and its backing store, collecting every counter the hardware
models expose — bus busy times, turnarounds, bank accesses, queue
stats, energy ops — into a flat ``name = value`` listing, the format
simulator users grep through when a result looks suspicious.
"""

from __future__ import annotations

import io
from typing import Dict, List, Tuple


def _channel_stats(prefix: str, channel, now_ps: int) -> List[Tuple[str, object]]:
    stats: List[Tuple[str, object]] = []
    stats.append((f"{prefix}.ca.grants", channel.ca.grants))
    stats.append((f"{prefix}.ca.busy_ns", channel.ca.busy_time / 1000))
    if now_ps:
        stats.append((f"{prefix}.ca.utilisation",
                      round(channel.ca.busy_time / now_ps, 4)))
    stats.append((f"{prefix}.dq.grants", channel.dq.grants))
    stats.append((f"{prefix}.dq.busy_ns", channel.dq.busy_time / 1000))
    stats.append((f"{prefix}.dq.turnarounds", channel.dq.turnarounds))
    stats.append((f"{prefix}.dq.turnaround_ns",
                  channel.dq.turnaround_time / 1000))
    if now_ps:
        stats.append((f"{prefix}.dq.utilisation",
                      round(channel.dq.busy_time / now_ps, 4)))
    stats.append((f"{prefix}.bytes_read", channel.bytes_read))
    stats.append((f"{prefix}.bytes_written", channel.bytes_written))
    stats.append((f"{prefix}.refreshes", channel.refreshes))
    accesses = sum(bank.accesses for bank in channel.banks)
    busy = sum(bank.busy_time for bank in channel.banks)
    stats.append((f"{prefix}.bank_accesses", accesses))
    if now_ps and channel.banks:
        stats.append((f"{prefix}.bank_utilisation",
                      round(busy / (now_ps * len(channel.banks)), 4)))
    if channel.hm is not None:
        stats.append((f"{prefix}.hm.grants", channel.hm.grants))
        stats.append((f"{prefix}.hm.busy_ns", channel.hm.busy_time / 1000))
        tag_accesses = sum(bank.accesses for bank in channel.tag_banks)
        stats.append((f"{prefix}.tag_bank_accesses", tag_accesses))
    return stats


def collect_stats(sink) -> Dict[str, object]:
    """Collect every exposed counter from a controller + main memory."""
    stats: List[Tuple[str, object]] = []
    sim = sink.sim
    now = sim.now
    stats.append(("sim.now_ns", now / 1000))

    channels = getattr(sink, "channels", [])
    for index, channel in enumerate(channels):
        stats.extend(_channel_stats(f"cache.ch{index}", channel, now))
    for index, scheduler in enumerate(getattr(sink, "schedulers", [])):
        stats.append((f"cache.ch{index}.read_q", len(scheduler.read_q)))
        stats.append((f"cache.ch{index}.write_q", len(scheduler.write_q)))

    metrics = getattr(sink, "metrics", None)
    if metrics is not None:
        for name, value in sorted(metrics.outcomes.as_dict().items()):
            stats.append((f"cache.outcomes.{name}", value))
        for name, value in sorted(metrics.events.as_dict().items()):
            stats.append((f"cache.events.{name}", value))
        stats.append(("cache.tag_check_mean_ns",
                      round(metrics.tag_check.mean_ns, 3)))
        stats.append(("cache.read_queue_delay_mean_ns",
                      round(metrics.read_queue_delay.mean_ns, 3)))
        stats.append(("cache.ledger.useful_bytes", metrics.ledger.useful_bytes))
        stats.append(("cache.ledger.unuseful_bytes",
                      metrics.ledger.unuseful_bytes))
        for name, value in sorted(metrics.ledger.by_category().items()):
            stats.append((f"cache.ledger.{name}", value))

    meter = getattr(sink, "meter", None)
    if meter is not None:
        for op, count in sorted(meter.ops.as_dict().items()):
            stats.append((f"cache.energy.ops.{op}", count))
        stats.append(("cache.energy.dq_bytes", meter.dq_bytes))
        stats.append(("cache.energy.dynamic_pj", round(meter.dynamic_pj(), 1)))

    flush = getattr(sink, "flush", None)
    if flush is not None:
        stats.append(("cache.flush.occupancy", len(flush)))
        stats.append(("cache.flush.stalls", flush.stalls))
        for name, value in sorted(flush.events.as_dict().items()):
            stats.append((f"cache.flush.{name}", value))

    ras = getattr(sink, "ras", None)
    if ras is not None:
        for name, value in sorted(ras.snapshot().items()):
            stats.append((f"cache.ras.{name}", value))

    main_memory = getattr(sink, "main_memory", None)
    if main_memory is not None:
        # Channelled backends (DDR5) expose per-channel bus/bank stats;
        # flat backends (pcm_like, cxl_like) have none to walk.
        for index, channel in enumerate(getattr(main_memory, "channels", [])):
            stats.extend(_channel_stats(f"mm.ch{index}", channel, now))
        stats.append(("mm.backend", getattr(main_memory, "backend_name",
                                            "ddr5")))
        stats.append(("mm.reads_issued", main_memory.reads_issued))
        stats.append(("mm.writes_issued", main_memory.writes_issued))
        stats.append(("mm.pending", main_memory.pending()))
        snapshot = getattr(main_memory, "snapshot", None)
        if snapshot is not None:
            for name, value in sorted(snapshot().items()):
                stats.append((f"mm.backend.{name}", value))

    return dict(stats)


def dump_stats(sink) -> str:
    """Render :func:`collect_stats` as ``name = value`` lines."""
    out = io.StringIO()
    for name, value in collect_stats(sink).items():
        out.write(f"{name} = {value}\n")
    return out.getvalue()
