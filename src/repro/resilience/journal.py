"""Checkpointed campaign journal: crash-safe progress accounting.

The content-addressed result cache already makes completed work
*reusable*; the journal makes campaign progress *durable and exact*.
Every task completion (and terminal failure) is appended to one JSONL
file — ``campaign.journal.jsonl`` beside the cache by convention —
where each line is framed as::

    <crc32-hex-8> <canonical-json>\\n

written with a single ``os.write`` on an ``O_APPEND`` descriptor and
fsynced, so a SIGKILL at any instant leaves at most one torn *tail*
line, never an undetectably corrupt record. On ``--resume``, replay
verifies every CRC, drops the torn tail (counted, not fatal), and
returns the completed results — the campaign re-simulates only tasks
that were genuinely in flight when the process died.

``done`` records embed the full :class:`RunResult` payload, so replay
works even with the result cache disabled or lost.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Bump when the record schema changes incompatibly.
JOURNAL_VERSION = 1


@dataclass
class JournalReplay:
    """What a journal replay recovered.

    ``results`` maps task key to the embedded result dict of its last
    ``done`` record; ``failed`` maps key to the detail of its last
    terminal-failure record; ``corrupt`` counts CRC-mismatched or
    unparseable lines that were skipped (a torn tail after SIGKILL is
    the expected source).
    """

    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    records: int = 0
    corrupt: int = 0


class CampaignJournal:
    """Append-only, CRC-framed JSONL log of campaign task outcomes."""

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        #: fsync after every append (the crash-safety point; tests may
        #: disable it for speed)
        self.fsync = fsync
        self.appended = 0
        self._fd: Optional[int] = None

    # ------------------------------------------------------------------
    def _descriptor(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(str(self.path),
                               os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                               0o644)
        return self._fd

    def close(self) -> None:
        """Release the journal's file descriptor (appends reopen it)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (single write + fsync).

        The record is serialised canonically (sorted keys, no spaces),
        prefixed with the CRC32 of its JSON bytes, and written as one
        ``os.write`` call on an ``O_APPEND`` descriptor — concurrent
        appenders interleave whole lines, and a crash tears at most the
        final line.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        data = line.encode("utf-8")
        framed = b"%08x %s\n" % (zlib.crc32(data), data)
        fd = self._descriptor()
        os.write(fd, framed)
        if self.fsync:
            os.fsync(fd)
        self.appended += 1

    def record_start(self, tasks: int) -> None:
        """Append a campaign-header record (task count + schema version)."""
        self.append({"type": "campaign", "v": JOURNAL_VERSION,
                     "tasks": tasks})

    def record_done(self, key: str, label: str,
                    result: Dict[str, object]) -> None:
        """Append a completion record embedding the full result dict."""
        self.append({"type": "done", "key": key, "label": label,
                     "result": result})

    def record_failed(self, key: str, label: str, kind: str,
                      detail: str, attempts: int) -> None:
        """Append a terminal-failure record (retries exhausted or
        quarantined); replay reports these but re-simulates the task."""
        self.append({"type": "failed", "key": key, "label": label,
                     "kind": kind, "detail": detail, "attempts": attempts})

    # ------------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Read the journal back, verifying every record's CRC.

        Lines that do not parse or whose CRC mismatches are counted in
        ``corrupt`` and skipped — a torn tail from SIGKILL mid-append
        degrades to "that task re-simulates", never to a crash or a
        wrong result. A missing journal file replays empty.
        """
        replay = JournalReplay()
        try:
            with open(self.path, "rb") as handle:
                lines = handle.read().split(b"\n")
        except OSError:
            return replay
        for raw in lines:
            if not raw:
                continue
            crc_hex, _, data = raw.partition(b" ")
            record = None
            if len(crc_hex) == 8 and data:
                try:
                    if int(crc_hex, 16) == zlib.crc32(data):
                        record = json.loads(data)
                except ValueError:
                    record = None
            if not isinstance(record, dict):
                replay.corrupt += 1
                continue
            replay.records += 1
            kind = record.get("type")
            key = record.get("key")
            if kind == "done" and isinstance(key, str):
                result = record.get("result")
                if isinstance(result, dict):
                    replay.results[key] = result
                    replay.failed.pop(key, None)
            elif kind == "failed" and isinstance(key, str):
                if key not in replay.results:
                    replay.failed[key] = str(record.get("detail", ""))
        return replay
