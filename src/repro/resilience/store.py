"""The pluggable result-store seam under the campaign cache.

:class:`ResultStore` is the interface the campaign engine talks to —
the local content-addressed directory cache
(:class:`repro.experiments.campaign.ResultCache`) is one
implementation, the chaos wrapper
(:class:`repro.resilience.chaos.ChaosStore`) another, and the remote
HTTP backend the distributed-service roadmap item needs slots in here
without touching the engine.

The interface bakes in the crash-safety contract every implementation
must honour:

* ``put`` is atomic — a reader never observes a half-written entry
  (the directory store writes a temp file and ``os.replace``\\ s it);
* ``get`` never returns garbage — an entry that fails to decode is
  **quarantined** (renamed to ``*.corrupt`` by
  :func:`quarantine_entry`) and counted in :attr:`ResultStore.corrupt`,
  not silently re-simulated, so operators can see and inspect
  corruption instead of paying for it invisibly;
* ``put`` may raise ``OSError`` (disk full, permissions) — the engine
  degrades gracefully: the in-memory result survives, the write
  failure is counted, and the campaign completes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional


def quarantine_entry(path: Path) -> Optional[Path]:
    """Move a corrupt store entry aside as ``<name>.corrupt``.

    Atomic (``os.replace``), idempotent under races (the loser of two
    concurrent quarantines just finds the file gone), and non-fatal:
    returns the quarantine path, or ``None`` if the move failed (the
    entry is then simply treated as a miss).
    """
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


class ResultStore:
    """Abstract content-addressed store of run results.

    Keys are SHA-256 hexdigests (see
    :func:`repro.experiments.campaign.cache_key`); values are
    :class:`~repro.experiments.runner.RunResult` objects. Subclasses
    implement :meth:`get`, :meth:`put`, and :meth:`__contains__`, and
    maintain the ``hits`` / ``misses`` / ``corrupt`` counters.
    """

    #: cache probes that returned a stored result
    hits: int = 0
    #: cache probes that found nothing usable
    misses: int = 0
    #: entries found corrupt and quarantined (counted, never silent)
    corrupt: int = 0

    def get(self, key: str):
        """Return the stored result for ``key`` or ``None``.

        Implementations must quarantine-and-count undecodable entries
        rather than raising or silently missing.
        """
        raise NotImplementedError

    def put(self, key: str, result, task=None):
        """Atomically store ``result`` under ``key``.

        ``task`` optionally carries human-readable metadata to persist
        beside the result. May raise ``OSError`` on storage failure —
        callers are expected to degrade gracefully.
        """
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        raise NotImplementedError
