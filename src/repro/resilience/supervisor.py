"""Supervised process-pool execution: deadlines, backoff, pool reuse.

:class:`TaskSupervisor` owns the parallel execution loop the campaign
engine used to inline. It fixes the three failure modes the sharded
pool could not survive:

* **hung tasks** — with a :attr:`~repro.resilience.policies.RetryPolicy.
  deadline_s`, every submitted chunk carries a wall-clock budget; an
  overdue chunk's worker processes are killed, the pool is recycled,
  and the overdue tasks are requeued as ``timeout`` attempts (the old
  engine blocked on a hung shard forever);
* **pool churn** — one pool is created lazily and *reused* across
  retry rounds; it is recycled only after a worker crash or a deadline
  kill actually broke it (the old engine rebuilt the pool every retry
  round even when nothing crashed). A clean run creates exactly one
  pool (``stats.pools_created == 1``);
* **retry storms** — requeued tasks wait out a deterministic seeded
  backoff (see :meth:`RetryPolicy.backoff_s`) before resubmission, and
  a caller-supplied ``gate`` can quarantine tasks (circuit breaker)
  before they ever reach the pool.

The supervisor is deliberately generic: it moves opaque ``(key,
payload)`` pairs through a worker callable and reports outcomes via
callbacks, so the campaign engine, tests, and the chaos harness drive
the identical machinery.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.policies import RetryPolicy

#: One unit of submitted work: ``(key, payload, attempt)`` rows.
ChunkRow = Tuple[str, tuple, int]
#: Worker return rows: ``(key, result, error_repr)``.
ResultRow = Tuple[str, object, Optional[str]]
#: ``on_failure(key, kind, detail) -> may_retry``
FailureFn = Callable[[str, str, str], bool]


@dataclass
class SupervisorStats:
    """Execution accounting one :meth:`TaskSupervisor.run` collects."""

    #: pools constructed over the run (1 == no churn)
    pools_created: int = 0
    #: pools torn down after a crash or deadline kill
    pool_recycles: int = 0
    #: tasks whose wall-clock deadline expired (worker reaped)
    deadline_kills: int = 0
    #: tasks charged an attempt because their worker process died
    worker_crashes: int = 0
    #: retries that waited out a non-zero backoff interval
    backoff_waits: int = 0
    #: total scheduled backoff seconds
    backoff_total_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for summaries and JSON export."""
        return {
            "pools_created": self.pools_created,
            "pool_recycles": self.pool_recycles,
            "deadline_kills": self.deadline_kills,
            "worker_crashes": self.worker_crashes,
            "backoff_waits": self.backoff_waits,
            "backoff_total_s": self.backoff_total_s,
        }


class _Chunk:
    """Bookkeeping for one submitted batch of tasks."""

    __slots__ = ("rows", "submitted_at", "budget_s")

    def __init__(self, rows: List[ChunkRow], submitted_at: float,
                 budget_s: Optional[float]) -> None:
        self.rows = rows
        self.submitted_at = submitted_at
        self.budget_s = budget_s

    @property
    def keys(self) -> List[str]:
        """Task keys riding in this chunk."""
        return [row[0] for row in self.rows]


class TaskSupervisor:
    """Drives opaque task payloads through a supervised process pool.

    Parameters
    ----------
    jobs:
        Worker process count (and the chunking fan-out when no
        deadline is set).
    policy:
        The :class:`RetryPolicy` supplying deadline, backoff, and poll
        cadence. Retry *budgets* stay with the caller: the
        ``on_failure`` callback decides whether a failed task may be
        requeued.
    worker:
        Module-level callable executed in the pool:
        ``worker(rows) -> [(key, result, error_repr), ...]`` where
        ``rows`` is a list of :data:`ChunkRow`.
    initializer / initargs:
        Forwarded to the pool so per-process tables are installed once
        per worker.
    pool_factory:
        Injectable pool constructor for tests; defaults to
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    clock / sleep:
        Injectable time sources (wall-clock supervision is host-side
        orchestration, never simulated time).
    """

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy,
        worker: Callable[[List[ChunkRow]], List[ResultRow]],
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        pool_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.jobs = max(1, jobs)
        self.policy = policy
        self.worker = worker
        self.initializer = initializer
        self.initargs = initargs
        self.pool_factory = pool_factory or ProcessPoolExecutor
        self.clock = clock
        self.sleep = sleep
        self.stats = SupervisorStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self.pool_factory(
                max_workers=self.jobs, initializer=self.initializer,
                initargs=self.initargs)
            self.stats.pools_created += 1
        return self._pool

    def _recycle_pool(self, kill: bool = False) -> None:
        """Tear the pool down (optionally killing its workers first)."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        self.stats.pool_recycles += 1
        if kill:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                process.kill()
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception as error:  # noqa: BLE001 - already broken
            # A broken pool may refuse a clean shutdown; its processes
            # are dead either way and the replacement pool is fresh.
            del error

    def close(self) -> None:
        """Shut the pool down cleanly (end of campaign)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        payloads: Dict[str, tuple],
        on_success: Callable[[str, object], None],
        on_failure: FailureFn,
        gate: Optional[Callable[[str], Optional[str]]] = None,
    ) -> SupervisorStats:
        """Execute every payload to success or terminal failure.

        ``on_success(key, result)`` records a finished task;
        ``on_failure(key, kind, detail)`` charges one attempt and
        returns ``True`` if the task may be requeued. ``gate(key)``
        (checked immediately before each submission) returns a detail
        string to fail the task as ``quarantined`` without running it,
        or ``None`` to let it through.
        """
        pending: Dict[str, tuple] = dict(payloads)
        eligible_at: Dict[str, float] = {key: 0.0 for key in pending}
        attempts: Dict[str, int] = {key: 0 for key in pending}
        stash: Dict[str, tuple] = {}  # payloads of in-flight tasks
        in_flight: Dict[Future, _Chunk] = {}
        policy = self.policy

        def requeue(key: str, attempt: int, charge_backoff: bool) -> None:
            delay = policy.backoff_s(key, attempt) if charge_backoff else 0.0
            pending[key] = stash.pop(key)
            eligible_at[key] = self.clock() + delay
            if delay > 0:
                self.stats.backoff_waits += 1
                self.stats.backoff_total_s += delay

        def fail_or_requeue(key: str, kind: str, detail: str) -> None:
            if on_failure(key, kind, detail):
                requeue(key, attempts[key], charge_backoff=True)
            else:
                stash.pop(key, None)

        def harvest(future: Future, chunk: _Chunk, overdue: bool) -> bool:
            """Fold one finished/doomed future into the queues; returns
            True if its worker crashed (pool needs recycling)."""
            try:
                rows = future.result(timeout=0)
            except CancelledError:
                # Never started: requeue without charging an attempt.
                for key in chunk.keys:
                    attempts[key] -= 1
                    requeue(key, attempts[key], charge_backoff=False)
                return False
            except Exception as error:  # noqa: BLE001 - charged per task
                if overdue:
                    budget = chunk.budget_s or 0.0
                    detail = f"deadline exceeded ({budget:.1f}s); worker killed"
                    for key in chunk.keys:
                        fail_or_requeue(key, "timeout", detail)
                else:
                    for key in chunk.keys:
                        self.stats.worker_crashes += 1
                        fail_or_requeue(key, "crash", repr(error))
                return True
            for key, result, err in rows:
                if err is None:
                    stash.pop(key, None)
                    on_success(key, result)
                else:
                    fail_or_requeue(key, "error", err)
            return False

        def submit(ready: List[str]) -> None:
            # With no deadline, the initial wave is round-robin sharded
            # into one chunk per worker (pickling amortised across the
            # shard, exactly the pre-resilience fan-out); with a
            # deadline every task travels alone so reaping is per-task
            # precise. Retries always travel alone.
            pool = self._acquire_pool()
            if policy.deadline_s is None and len(ready) > self.jobs:
                groups = [ready[i::self.jobs] for i in range(self.jobs)]
            else:
                groups = [[key] for key in ready]
            submitted_at = self.clock()
            for group in groups:
                if not group:
                    continue
                rows: List[ChunkRow] = []
                for key in group:
                    attempts[key] += 1
                    stash[key] = pending.pop(key)
                    rows.append((key, stash[key], attempts[key]))
                budget = None
                if policy.deadline_s is not None:
                    budget = policy.deadline_s * len(rows)
                future = pool.submit(self.worker, rows)
                in_flight[future] = _Chunk(rows, submitted_at, budget)

        try:
            while pending or in_flight:
                now = self.clock()
                ready = [key for key in pending
                         if eligible_at.get(key, 0.0) <= now]
                if gate is not None and ready:
                    passed = []
                    for key in ready:
                        detail = gate(key)
                        if detail is None:
                            passed.append(key)
                        else:
                            pending.pop(key)
                            on_failure(key, "quarantined", detail)
                    ready = passed
                if ready:
                    submit(ready)
                if not in_flight:
                    if not pending:
                        break
                    wake = min(eligible_at[key] for key in pending)
                    delay = max(0.0, wake - self.clock())
                    if delay > 0:
                        self.sleep(delay)
                    continue

                # Block until a future completes, a backoff expires, or
                # the deadline poll tick elapses.
                timeout = policy.poll_s if policy.deadline_s is not None \
                    else None
                if pending:
                    wake = min(eligible_at[key] for key in pending)
                    until_wake = max(0.0, wake - self.clock())
                    timeout = until_wake if timeout is None \
                        else min(timeout, until_wake)
                wait(set(in_flight), timeout=timeout,
                     return_when=FIRST_COMPLETED)

                crashed = False
                for future in [f for f in in_flight if f.done()]:
                    chunk = in_flight.pop(future)
                    crashed |= harvest(future, chunk, overdue=False)
                if crashed:
                    self._recycle_pool()

                if policy.deadline_s is not None and in_flight:
                    now = self.clock()
                    overdue = {future for future, chunk in in_flight.items()
                               if chunk.budget_s is not None
                               and now - chunk.submitted_at > chunk.budget_s}
                    if overdue:
                        self.stats.deadline_kills += sum(
                            len(in_flight[f].rows) for f in overdue)
                        self._recycle_pool(kill=True)
                        for future in list(in_flight):
                            chunk = in_flight.pop(future)
                            harvest(future, chunk,
                                    overdue=future in overdue)
        finally:
            self.close()
        return self.stats
