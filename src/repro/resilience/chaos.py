"""Deterministic chaos injection for the campaign harness.

The same discipline the RAS subsystem applies inside the simulated
memory system — seeded faults, counted outcomes, bit-reproducible per
seed — applied to the host-side harness. A :class:`ChaosConfig`
describes a *schedule* of injected faults that is a pure function of
``(chaos seed, task key, attempt)``:

* **worker kills** — the worker process ``os._exit``\\ s before running
  the task (indistinguishable from SIGKILL / OOM-kill), breaking the
  whole pool exactly like a real crash;
* **task hangs** — the worker sleeps past any reasonable deadline, so
  only deadline reaping can recover the task;
* **corrupt cache bytes** — a just-written result-store entry is
  overwritten with garbage, exercising the quarantine path on the next
  read;
* **ENOSPC store errors** — the first ``put`` of selected keys raises
  ``OSError(ENOSPC)``, exercising graceful write degradation.

Because the schedule is seeded and faults are bounded to the first
``max_faulted_attempts`` attempts of each task, every chaos campaign
*terminates* with full results — and because simulations are seeded
per task, those results are bit-identical to a fault-free run. The
test suite and ``tdram-repro chaos`` both assert exactly that.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.resilience.store import ResultStore


def _decides(seed: int, kind: str, key: str, attempt: int,
             prob: float) -> bool:
    """Seeded coin flip for one injection site.

    The stream is keyed on ``(seed, kind, key, attempt)`` so every
    fault site draws independently and the whole schedule replays
    exactly for a given chaos seed.
    """
    if prob <= 0.0:
        return False
    if prob >= 1.0:
        return True
    rng = random.Random(f"chaos:{seed}:{kind}:{key}:{attempt}")
    return rng.random() < prob


@dataclass(frozen=True)
class ChaosConfig:
    """A seeded, bounded fault-injection schedule for the harness.

    All probabilities are per ``(task, attempt)`` (or per store entry
    for the store faults). Faults only fire on attempts up to
    :attr:`max_faulted_attempts`, which guarantees a campaign with a
    sufficient retry budget always completes.
    """

    #: seed of the whole injection schedule
    seed: int = 0
    #: probability a worker dies (``os._exit``) before running a task
    kill_prob: float = 0.0
    #: probability a task hangs (worker sleeps ``hang_s``)
    hang_prob: float = 0.0
    #: how long a hung task sleeps; pick well past the deadline
    hang_s: float = 30.0
    #: probability a store entry is corrupted right after being written
    corrupt_prob: float = 0.0
    #: probability the first put of an entry fails with ENOSPC
    enospc_prob: float = 0.0
    #: attempts (1-based) on which worker faults may fire; later
    #: attempts always run clean so retries converge
    max_faulted_attempts: int = 1

    @property
    def active(self) -> bool:
        """Whether any injection probability is non-zero."""
        return any(p > 0.0 for p in (self.kill_prob, self.hang_prob,
                                     self.corrupt_prob, self.enospc_prob))

    # ------------------------------------------------------------------
    def should_kill(self, key: str, attempt: int) -> bool:
        """Whether this task attempt's worker dies before executing."""
        return attempt <= self.max_faulted_attempts and \
            _decides(self.seed, "kill", key, attempt, self.kill_prob)

    def should_hang(self, key: str, attempt: int) -> bool:
        """Whether this task attempt hangs instead of executing."""
        return attempt <= self.max_faulted_attempts and \
            _decides(self.seed, "hang", key, attempt, self.hang_prob)

    def should_corrupt(self, key: str) -> bool:
        """Whether the store entry for ``key`` gets corrupted on write."""
        return _decides(self.seed, "corrupt", key, 1, self.corrupt_prob)

    def should_enospc(self, key: str) -> bool:
        """Whether the first put of ``key`` fails like a full disk."""
        return _decides(self.seed, "enospc", key, 1, self.enospc_prob)


def maybe_fault(chaos: Optional[ChaosConfig], key: str, attempt: int) -> None:
    """Worker-side injection hook, called before executing a task.

    A *kill* terminates the worker process with ``os._exit(137)`` —
    the exact signature of SIGKILL/OOM, which breaks the process pool
    and exercises the driver's crash-recovery path. A *hang* sleeps
    ``hang_s`` so only deadline reaping can reclaim the worker.
    """
    if chaos is None:
        return
    if chaos.should_kill(key, attempt):
        os._exit(137)
    if chaos.should_hang(key, attempt):
        time.sleep(chaos.hang_s)


class ChaosStore(ResultStore):
    """A :class:`ResultStore` wrapper that injects storage faults.

    Wraps any inner store; reads delegate untouched (the inner store
    owns quarantine accounting), writes may be corrupted after landing
    (``corrupt_prob``) or rejected with ``OSError(ENOSPC)`` on their
    first attempt (``enospc_prob`` — retried puts succeed, as a real
    operator freeing disk space would allow).
    """

    def __init__(self, inner, chaos: ChaosConfig) -> None:
        self.inner = inner
        self.chaos = chaos
        #: entries whose bytes were scrambled after a successful put
        self.injected_corrupt = 0
        #: puts rejected with a synthetic ENOSPC
        self.injected_enospc = 0
        self._put_attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:  # type: ignore[override]
        """Inner store's hit count (reads delegate untouched)."""
        return self.inner.hits

    @property
    def misses(self) -> int:  # type: ignore[override]
        """Inner store's miss count."""
        return self.inner.misses

    @property
    def corrupt(self) -> int:  # type: ignore[override]
        """Inner store's quarantined-entry count."""
        return self.inner.corrupt

    # ------------------------------------------------------------------
    def get(self, key: str):
        """Delegate to the inner store (its quarantine path applies)."""
        return self.inner.get(key)

    def put(self, key: str, result, task=None):
        """Store via the inner store, then maybe inject a fault."""
        self._put_attempts[key] = self._put_attempts.get(key, 0) + 1
        if self._put_attempts[key] == 1 and self.chaos.should_enospc(key):
            self.injected_enospc += 1
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        path = self.inner.put(key, result, task)
        if self.chaos.should_corrupt(key):
            self._scramble(key)
        return path

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    # ------------------------------------------------------------------
    def _scramble(self, key: str) -> None:
        """Overwrite the stored entry with undecodable bytes."""
        path_of = getattr(self.inner, "path", None)
        if path_of is None:
            return
        path = path_of(key)
        try:
            data = path.read_bytes()
            path.write_bytes(b"\xff\xfe" + data[2:max(2, len(data) // 2)])
        except OSError:
            return
        self.injected_corrupt += 1
