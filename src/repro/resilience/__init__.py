"""Fault tolerance for campaign execution: the harness-layer RAS story.

The paper's RAS subsystem (PR 1) injects seeded faults *inside* the
simulated memory system and proves the controller degrades gracefully.
This package applies the same discipline to the harness itself — the
layer that runs 10k-task sweeps and therefore meets every host-level
failure mode the simulator never sees: hung worker processes, SIGKILL
mid-campaign, corrupt cache bytes, full disks.

Modules:

* :mod:`repro.resilience.policies` — retry/backoff/deadline policy
  (:class:`RetryPolicy`, seeded jitter), the per-``(design, workload)``
  :class:`CircuitBreaker`, and the structured :class:`TaskFailure`
  error manifest;
* :mod:`repro.resilience.journal` — :class:`CampaignJournal`, a
  CRC-framed append-only JSONL log of task completions so ``--resume``
  after SIGKILL replays finished work exactly and re-simulates only
  what was in flight;
* :mod:`repro.resilience.store` — the :class:`ResultStore` seam the
  campaign cache implements (atomic writes, corrupt-entry quarantine),
  pluggable for remote backends and chaos wrappers;
* :mod:`repro.resilience.supervisor` — :class:`TaskSupervisor`, the
  process-pool execution loop with per-task wall-clock deadlines
  (hung workers are killed, their tasks requeued), pool reuse across
  retry rounds, and backoff scheduling;
* :mod:`repro.resilience.chaos` — deterministic seeded fault injection
  (worker kills, task hangs, corrupt cache bytes, ENOSPC store errors)
  used by the test suite and ``tdram-repro chaos`` to prove final
  results are bit-identical under any injected schedule.

Everything is deterministic given the policy/chaos seeds; see
``docs/resilience.md`` for semantics and knobs.
"""

from repro.resilience.chaos import ChaosConfig, ChaosStore
from repro.resilience.journal import CampaignJournal, JournalReplay
from repro.resilience.policies import (
    CircuitBreaker,
    RetryPolicy,
    TaskFailure,
    render_manifest,
)
from repro.resilience.store import ResultStore
from repro.resilience.supervisor import SupervisorStats, TaskSupervisor

__all__ = [
    "CampaignJournal",
    "ChaosConfig",
    "ChaosStore",
    "CircuitBreaker",
    "JournalReplay",
    "ResultStore",
    "RetryPolicy",
    "SupervisorStats",
    "TaskFailure",
    "TaskSupervisor",
    "render_manifest",
]
