"""Retry, backoff, deadline, and quarantine policy for campaigns.

A :class:`RetryPolicy` bundles every knob that governs how the
campaign engine responds to a failing task: how many extra attempts it
gets, how long a single attempt may run on the wall clock before its
worker is presumed hung, how long to wait between attempts
(exponential backoff with *seeded* jitter, so two runs of the same
campaign back off identically), and how many distinct-seed failures of
one ``(design, workload)`` combination trip the :class:`CircuitBreaker`
that quarantines the combo instead of burning retries on it.

Failures that survive the policy end up as :class:`TaskFailure` rows —
the structured error manifest a partial campaign returns instead of
raising (see ``docs/resilience.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Failure kinds a :class:`TaskFailure` may carry, in severity order.
FAILURE_KINDS = ("error", "crash", "timeout", "store", "quarantined")


@dataclass(frozen=True)
class RetryPolicy:
    """Everything that governs a campaign's response to failure.

    The defaults reproduce the pre-resilience engine exactly: two
    retries, no deadline, no backoff, breaker disabled.
    """

    #: extra attempts per task after the first one fails
    retries: int = 2
    #: per-task wall-clock budget in seconds; ``None`` disables
    #: deadline reaping (a chunk of N tasks gets ``N * deadline_s``)
    deadline_s: Optional[float] = None
    #: first-retry backoff in seconds; 0 retries immediately
    backoff_base_s: float = 0.0
    #: exponential backoff ceiling
    backoff_cap_s: float = 30.0
    #: +/- fraction of jitter applied to each backoff interval
    backoff_jitter: float = 0.1
    #: seed for the jitter stream (per-task, per-attempt deterministic)
    jitter_seed: int = 0
    #: distinct-seed failures of one (design, workload) combo that trip
    #: the circuit breaker; 0 disables quarantining
    breaker_threshold: int = 0
    #: how often the supervisor wakes to check deadlines (seconds)
    poll_s: float = 0.05

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based) of
        the task identified by ``key``.

        ``base * 2**(attempt-1)`` capped at :attr:`backoff_cap_s`, with
        multiplicative jitter drawn from a generator seeded by
        ``(jitter_seed, key, attempt)`` — re-running the campaign
        replays the identical wait schedule.
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        raw = min(self.backoff_base_s * (2 ** max(0, attempt - 1)),
                  self.backoff_cap_s)
        if self.backoff_jitter <= 0.0:
            return raw
        rng = random.Random(f"{self.jitter_seed}:{key}:{attempt}")
        spread = self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw * (1.0 + spread))


class CircuitBreaker:
    """Quarantines a ``(design, workload)`` combo after repeated
    distinct-seed failures.

    One bad seed can be noise; the same combo failing under
    ``threshold`` *different* seeds is a broken configuration, and
    burning ``retries`` attempts on every remaining seed of a 10k-task
    sweep multiplies the waste. Once open for a combo, every pending
    task of that combo fails immediately with kind ``"quarantined"``.
    """

    def __init__(self, threshold: int = 0) -> None:
        self.threshold = threshold
        self._failed_seeds: Dict[Tuple[str, str], Set[int]] = {}

    def record_failure(self, design: str, workload: str, seed: int) -> None:
        """Note one failed attempt of ``design/workload`` under ``seed``."""
        self._failed_seeds.setdefault((design, workload), set()).add(seed)

    def is_open(self, design: str, workload: str) -> bool:
        """Whether the combo is quarantined (enough distinct seeds failed)."""
        if self.threshold <= 0:
            return False
        seeds = self._failed_seeds.get((design, workload))
        return seeds is not None and len(seeds) >= self.threshold

    def quarantined(self) -> Dict[str, List[int]]:
        """Open combos as ``{"design/workload": sorted failed seeds}``."""
        return {
            f"{design}/{workload}": sorted(seeds)
            for (design, workload), seeds in sorted(self._failed_seeds.items())
            if self.threshold > 0 and len(seeds) >= self.threshold
        }


@dataclass(frozen=True)
class TaskFailure:
    """One row of the structured error manifest.

    ``kind`` is one of :data:`FAILURE_KINDS`: ``error`` (the task
    raised), ``crash`` (its worker process died), ``timeout`` (its
    deadline expired and the worker was reaped), ``store`` (the result
    store rejected the write), ``quarantined`` (its combo's circuit
    breaker was open).
    """

    key: str
    label: str
    kind: str
    attempts: int
    detail: str


def render_manifest(failures: Sequence[TaskFailure]) -> str:
    """Human-readable per-failure table for CLI output.

    One aligned row per failure: label, kind, attempts consumed, and
    the (truncated) last error detail.
    """
    if not failures:
        return "no failures"
    rows = [("TASK", "KIND", "ATTEMPTS", "DETAIL")]
    for failure in failures:
        detail = failure.detail
        if len(detail) > 60:
            detail = detail[:57] + "..."
        rows.append((failure.label, failure.kind, str(failure.attempts),
                     detail))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for label, kind, attempts, detail in rows:
        lines.append(f"{label:<{widths[0]}}  {kind:<{widths[1]}}  "
                     f"{attempts:<{widths[2]}}  {detail}")
    return "\n".join(lines)
