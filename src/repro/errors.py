"""Exception hierarchy for the TDRAM reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class TimingError(ConfigError):
    """A DRAM timing table is internally inconsistent (e.g. tRCD > tRAS).

    Raised at :class:`~repro.config.system.SystemConfig` construction so
    a bad sweep configuration fails fast with the violated constraint
    named, instead of simulating quiet nonsense."""


class SimulationError(ReproError):
    """The simulation reached an illegal state (e.g. time went backwards)."""


class ProtocolError(ReproError):
    """A DRAM protocol rule was violated (e.g. overlapping bus grants)."""


class CapacityError(ReproError):
    """A bounded hardware structure (queue, buffer) was overfilled."""


class WorkloadError(ReproError):
    """A workload generator was misconfigured or produced an invalid record."""


class RasError(ReproError):
    """A reliability/availability/serviceability operation was invalid
    (e.g. disabling the last remaining way of a tag store)."""


class RetryExhaustedError(RasError):
    """An uncorrectable error survived every configured re-read attempt.

    Only raised in strict mode (:attr:`RasConfig.strict`); the default
    policy degrades gracefully and counts the event instead."""


class CampaignError(SimulationError):
    """A campaign finished with tasks that exhausted their retries.

    Only raised in strict mode (``run_campaign(strict=True)``); the
    default CLI path degrades gracefully instead — partial results plus
    a structured error manifest (:attr:`manifest`, a list of
    :class:`repro.resilience.policies.TaskFailure` rows) and a nonzero
    exit code."""

    def __init__(self, message: str, manifest=()):
        super().__init__(message)
        #: the structured per-task failure rows behind the message
        self.manifest = list(manifest)


class JournalError(ReproError):
    """The campaign journal could not be written (not merely resumed:
    corrupt *reads* degrade to re-simulation and are only counted)."""
