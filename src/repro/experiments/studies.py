"""Sensitivity and ablation studies from §V-D/E/F and §V-A.

* :func:`predictor_study` — §V-D: MAP-I gives only ~1.03-1.04x.
* :func:`flush_buffer_sensitivity` — §V-E: sizes 8/16/32/64; 16 entries
  never stall, mean occupancy ~5, max ~12.
* :func:`set_associativity_study` — §V-F: 1/2/4/8/16 ways perform alike
  on these workloads.
* :func:`probing_ablation` — §V-A/V-B: TDRAM without early tag probing
  behaves like NDC.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.system import SystemConfig
from repro.experiments.figures import ExperimentContext, FigureResult, geomean
from repro.experiments.runner import run_experiment
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import representative_suite
from repro.workloads.synthetic import write_storm_spec


def predictor_study(
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 600,
    seed: int = 7,
) -> FigureResult:
    """§V-D: Cascade Lake with and without the MAP-I predictor."""
    config = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()
    rows = []
    speedups = []
    for spec in specs:
        base = run_experiment("cascade_lake", spec, config=config,
                              demands_per_core=demands_per_core, seed=seed)
        pred = run_experiment("cascade_lake", spec,
                              config=config.with_(use_predictor=True),
                              demands_per_core=demands_per_core, seed=seed)
        speedup = pred.speedup_over(base)
        speedups.append(speedup)
        rows.append({
            "workload": spec.name,
            "base_runtime_us": base.runtime_ps / 1e6,
            "predictor_runtime_us": pred.runtime_ps / 1e6,
            "speedup": speedup,
            "speculative_fetches": pred.events.get("speculative_fetch", 0),
        })
    rows.append({"workload": "geomean", "speedup": geomean(speedups)})
    return FigureResult(
        figure="Section V-D",
        title="MAP-I predictor impact on Cascade Lake",
        columns=["workload", "base_runtime_us", "predictor_runtime_us",
                 "speedup", "speculative_fetches"],
        rows=rows,
        notes="Paper: predictors give only ~1.03-1.04x and add bandwidth bloat.",
    )


def prefetcher_study(
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 600,
    seed: int = 7,
    degree: int = 2,
) -> FigureResult:
    """§V-D (prefetchers): TDRAM with and without a stride prefetcher.

    The paper's preliminary analysis: prefetchers give only incremental
    gains at the DRAM-cache level because they interfere with demands
    and consume bandwidth, especially at low accuracy.
    """
    config = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()
    rows = []
    speedups = []
    for spec in specs:
        base = run_experiment("tdram", spec, config=config,
                              demands_per_core=demands_per_core, seed=seed)
        pref = run_experiment(
            "tdram", spec,
            config=config.with_(use_prefetcher=True, prefetch_degree=degree),
            demands_per_core=demands_per_core, seed=seed,
        )
        speedup = pref.speedup_over(base)
        speedups.append(speedup)
        rows.append({
            "workload": spec.name,
            "speedup": speedup,
            "prefetches": pref.prefetches,
            "useful": pref.prefetch_useful,
            "extra_bloat": pref.bloat_factor - base.bloat_factor,
        })
    rows.append({"workload": "geomean", "speedup": geomean(speedups)})
    return FigureResult(
        figure="Section V-D (prefetchers)",
        title=f"Stride prefetcher (degree {degree}) on TDRAM",
        columns=["workload", "speedup", "prefetches", "useful", "extra_bloat"],
        rows=rows,
        notes="Paper: prefetchers give incremental gains and add bloat.",
    )


def flush_buffer_sensitivity(
    config: Optional[SystemConfig] = None,
    sizes: tuple = (8, 16, 32, 64),
    spec: Optional[WorkloadSpec] = None,
    demands_per_core: int = 800,
    seed: int = 7,
) -> FigureResult:
    """§V-E: flush-buffer occupancy/stalls across buffer sizes.

    Defaults to ft.D — a write-heavy high-miss workload that exercises
    write-miss-dirty traffic the way the paper's stressors (lu.D, bc)
    do. ``repro.workloads.write_storm_spec()`` provides an adversarial
    stressor well beyond anything in the suite.
    """
    config = config or SystemConfig.small()
    if spec is None:
        from repro.workloads.suite import workload
        spec = workload("ft.D")
    rows = []
    for size in sizes:
        result = run_experiment(
            "tdram", spec, config=config.with_(flush_buffer_entries=size),
            demands_per_core=demands_per_core, seed=seed,
        )
        rows.append({
            "entries": size,
            "stalls": result.flush_stalls,
            "mean_occupancy": result.flush_mean_occupancy,
            "max_occupancy": result.flush_max_occupancy,
            "unload_read_miss_clean": result.flush_unloads.get(
                "unload_read_miss_clean", 0),
            "unload_refresh": result.flush_unloads.get("unload_refresh", 0),
            "unload_forced": result.flush_unloads.get("unload_forced", 0),
            "runtime_us": result.runtime_ps / 1e6,
        })
    return FigureResult(
        figure="Section V-E",
        title="Flush buffer size sensitivity (TDRAM, write-heavy workload)",
        columns=["entries", "stalls", "mean_occupancy", "max_occupancy",
                 "unload_read_miss_clean", "unload_refresh", "unload_forced",
                 "runtime_us"],
        rows=rows,
        notes=("Paper: only lu.D at 8 entries ever stalled (13 times); "
               "mean occupancy ~5, max ~12; 16 entries never stall."),
    )


def set_associativity_study(
    config: Optional[SystemConfig] = None,
    ways: tuple = (1, 2, 4, 8, 16),
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 600,
    seed: int = 7,
) -> FigureResult:
    """§V-F: direct-mapped vs set-associative TDRAM.

    The paper finds the HPC workloads have negligible conflict misses,
    so all associativities achieve similar speedups over main memory.
    """
    config = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()
    rows = []
    for n_ways in ways:
        cfg = config.with_(cache_ways=n_ways)
        speedups = []
        miss_ratios = []
        for spec in specs:
            baseline = run_experiment("no_cache", spec, config=cfg,
                                      demands_per_core=demands_per_core,
                                      seed=seed)
            result = run_experiment("tdram", spec, config=cfg,
                                    demands_per_core=demands_per_core,
                                    seed=seed)
            speedups.append(result.speedup_over(baseline))
            miss_ratios.append(result.miss_ratio)
        rows.append({
            "ways": n_ways,
            "speedup_vs_no_cache": geomean(speedups),
            "mean_miss_ratio": sum(miss_ratios) / len(miss_ratios),
        })
    return FigureResult(
        figure="Section V-F",
        title="Set-associative TDRAM (geomean speedup over main memory only)",
        columns=["ways", "speedup_vs_no_cache", "mean_miss_ratio"],
        rows=rows,
        notes="Paper: direct-mapped and 2/4/8/16-way perform similarly.",
    )


def way_select_study(ways_list=(1, 2, 4, 8, 16)) -> FigureResult:
    """§V-F/Table I: in-DRAM vs controller-side way selection (analytic).

    TDRAM's per-way comparators keep set-associative accesses at
    direct-mapped latency; shipping all tags to the controller adds an
    HM round trip that grows with associativity.
    """
    from repro.core.ways import way_select_comparison
    from repro.dram.timing import hbm3_cache_timing, rldram_like_tag_timing

    rows = way_select_comparison(hbm3_cache_timing(),
                                 rldram_like_tag_timing(), ways_list)
    return FigureResult(
        figure="Section V-F (way selection)",
        title="Per-access overhead of way-selection implementations",
        columns=["ways", "in_dram_latency_ns", "controller_latency_ns",
                 "in_dram_energy_pj", "controller_energy_pj"],
        rows=rows,
        notes=("Paper: implementations without in-DRAM comparators send all "
               "set tags to the controller, incurring extra latency/energy."),
    )


def probing_ablation(
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 600,
    seed: int = 7,
) -> FigureResult:
    """§V-A/V-B: TDRAM without early tag probing ~ NDC."""
    config = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()
    rows = []
    for spec in specs:
        tdram = run_experiment("tdram", spec, config=config,
                               demands_per_core=demands_per_core, seed=seed)
        no_probe = run_experiment("tdram", spec,
                                  config=config.with_(enable_probing=False),
                                  demands_per_core=demands_per_core, seed=seed)
        ndc = run_experiment("ndc", spec, config=config,
                             demands_per_core=demands_per_core, seed=seed)
        rows.append({
            "workload": spec.name,
            "tdram_tag_ns": tdram.tag_check_ns,
            "tdram_noprobe_tag_ns": no_probe.tag_check_ns,
            "ndc_tag_ns": ndc.tag_check_ns,
            "probing_gain": (no_probe.tag_check_ns / tdram.tag_check_ns
                             if tdram.tag_check_ns else 0.0),
        })
    return FigureResult(
        figure="Section V-A (ablation)",
        title="Early tag probing ablation: TDRAM vs TDRAM-no-probe vs NDC",
        columns=["workload", "tdram_tag_ns", "tdram_noprobe_tag_ns",
                 "ndc_tag_ns", "probing_gain"],
        rows=rows,
        notes=("Paper: TDRAM without probing has tag-check latency similar to "
               "NDC; probing improves tag checks up to 70% on large workloads."),
    )
