"""Experiment harness: runner, campaign engine, figures, sweeps, CLI."""

from repro.experiments.campaign import (
    CampaignOutcome,
    CampaignTask,
    ResultCache,
    cache_key,
    run_campaign,
    tasks_for,
)
from repro.experiments.runner import RunResult, run_experiment, run_matrix
from repro.experiments.sweeps import channel_sweep, config_sweep, mlp_sweep

__all__ = [
    "CampaignOutcome",
    "CampaignTask",
    "ResultCache",
    "RunResult",
    "cache_key",
    "channel_sweep",
    "config_sweep",
    "mlp_sweep",
    "run_campaign",
    "run_experiment",
    "run_matrix",
    "tasks_for",
]
