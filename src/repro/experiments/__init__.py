"""Experiment harness: runner, figures, studies, sweeps, CLI."""

from repro.experiments.runner import RunResult, run_experiment, run_matrix
from repro.experiments.sweeps import channel_sweep, config_sweep, mlp_sweep

__all__ = [
    "RunResult",
    "run_experiment",
    "run_matrix",
    "channel_sweep",
    "config_sweep",
    "mlp_sweep",
]
