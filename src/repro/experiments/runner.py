"""Experiment runner: one (design, workload) simulation -> RunResult.

Mirrors the paper's methodology (§IV): every design sees the identical
demand stream (same seed), statistics cover only the post-warm-up
region, and runtime is the completion time of a fixed work quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cache import DESIGNS
from repro.cache.no_cache import NoCacheSystem
from repro.config.system import SystemConfig
from repro.energy.power_model import EnergyMeter
from repro.errors import ConfigError, SimulationError
from repro.frontend.core_model import build_cores
from repro.memory.backend import MemoryBackend, build_backend
from repro.sim import sampling
from repro.sim.kernel import Simulator, ns, to_ns
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import demand_stream, workload as lookup_workload

#: Simulated time per watchdog check.
_CHUNK_PS = ns(200_000)
#: Abort after this many chunks without any new submission.
_STALL_CHUNKS = 50


def _pythonify(value):
    """Recursively convert numpy scalars/arrays to builtin types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_pythonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {_pythonify(k): _pythonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_pythonify(v) for v in value)
    return value


@dataclass
class RunResult:
    """Measured quantities of one simulation run."""

    design: str
    workload: str
    demands: int
    runtime_ps: int
    # latencies (ns, post-warm-up means)
    tag_check_ns: float
    queue_delay_ns: float
    read_latency_ns: float
    mm_read_latency_ns: float
    # architectural mix
    miss_ratio: float
    read_miss_ratio: float
    breakdown: Dict[str, float]
    # bandwidth
    bloat_factor: float
    unuseful_fraction: float
    useful_bytes: int
    total_bytes: int
    # energy
    energy_pj: float            #: whole memory subsystem (cache + DDR5)
    cache_energy_pj: float = 0.0  #: DRAM-cache device + interface only
    # design-specific extras
    probes: int = 0
    probe_bank_conflicts: int = 0
    prefetches: int = 0
    prefetch_useful: int = 0
    flush_mean_occupancy: float = 0.0
    flush_max_occupancy: int = 0
    flush_stalls: int = 0
    flush_unloads: Dict[str, int] = field(default_factory=dict)
    writebacks: int = 0
    events: Dict[str, int] = field(default_factory=dict)
    #: kernel events dispatched over the whole run (incl. warm-up) —
    #: the simulator-throughput denominator for events/sec benchmarks
    sim_events: int = 0
    #: RAS campaign counters + degradation state (empty when disabled)
    ras: Dict[str, int] = field(default_factory=dict)
    #: backing-store backend counters (MSHR/coalesce/write-queue/wear;
    #: empty for the DDR5 backends) — see docs/backends.md
    backend: Dict[str, int] = field(default_factory=dict)
    #: columnar epoch time series (empty unless config.obs.epoch_us > 0);
    #: schema in docs/tracing.md — pandas.DataFrame(result.epochs) works
    epochs: Dict[str, List[float]] = field(default_factory=dict)
    #: kernel-profiler digest (empty unless config.obs.profile)
    profile: Dict[str, object] = field(default_factory=dict)
    #: sampled-simulation estimate quality (empty for exact runs):
    #: window count, coverage, and per-metric mean/half-width at the
    #: configured confidence — see docs/performance.md
    sampling: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coerce_builtin()

    def coerce_builtin(self) -> "RunResult":
        """Coerce every field (recursively) to builtin Python types.

        Metrics computed with numpy leak ``np.float64``/``np.int64``
        scalars into result fields; they bloat/break JSON export and
        must not be relied on to pickle across the campaign process
        pool. Called at construction and again by the runner after the
        design-specific extras are filled in.
        """
        for spec in fields(self):
            setattr(self, spec.name, _pythonify(getattr(self, spec.name)))
        return self

    @property
    def runtime_ns(self) -> float:
        return to_ns(self.runtime_ps)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Fixed-work speedup of this run relative to ``baseline``."""
        if self.runtime_ps <= 0:
            raise ConfigError("runtime must be positive for a speedup")
        return baseline.runtime_ps / self.runtime_ps


def run_experiment(
    design: str,
    spec: Union[WorkloadSpec, str],
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 2000,
    seed: int = 42,
    trace_out: Optional[str] = None,
) -> RunResult:
    """Simulate ``design`` under one workload and collect every metric.

    Parameters
    ----------
    design:
        One of ``repro.cache.DESIGNS`` ("cascade_lake", "alloy", "bear",
        "ndc", "tdram", "ideal", "no_cache").
    spec:
        A :class:`WorkloadSpec` or a suite name like ``"ft.D"``.
    demands_per_core:
        The fixed work quantum each simulated core executes.
    trace_out:
        Path to write a Chrome/Perfetto trace to after the run; only
        meaningful when ``config.obs.trace`` is on (see docs/tracing.md).
    """
    if isinstance(spec, str):
        spec = lookup_workload(spec)
    config = config or SystemConfig()
    streams = [
        demand_stream(spec, config, core_id, config.cores, seed)
        for core_id in range(config.cores)
    ]
    return _run(design, spec, config, streams, demands_per_core, seed,
                trace_out=trace_out)


def _run(
    design: str,
    spec: WorkloadSpec,
    config: SystemConfig,
    streams,
    demands_per_core: int,
    seed: int,
    prewarm_blocks=None,
    trace_out: Optional[str] = None,
) -> RunResult:
    """Shared simulation core for generator- and trace-driven runs."""
    if design not in DESIGNS:
        raise ConfigError(f"unknown design {design!r}; choose from {sorted(DESIGNS)}")
    if config.sampling.enabled:
        return _run_sampled(design, spec, config, streams, demands_per_core,
                            seed, prewarm_blocks=prewarm_blocks,
                            trace_out=trace_out)
    sim = Simulator(step_mode=config.step_mode)
    mm_meter = EnergyMeter(config.energy_model, config.mm_channels, False)
    main_memory = build_backend(sim, config, meter=mm_meter)
    sink = DESIGNS[design](sim, config, main_memory)
    _prewarm(sink, spec, config, seed, blocks=prewarm_blocks)

    cores, progress = build_cores(
        sim, sink, streams, demands_per_core,
        config.max_outstanding_reads_per_core, config.warmup_fraction,
    )

    measure_start = 0

    def on_warm() -> None:
        nonlocal measure_start
        measure_start = sim.now
        _reset_measurement(sink, mm_meter, main_memory)

    progress.on_warm = on_warm
    progress.on_all_done = sim.stop

    for core in cores:
        core.start()

    sim_events = _drive(sim, progress, design, spec)

    runtime = max(1, sim.now - measure_start)
    return _harvest(design, spec, sink, main_memory, mm_meter, runtime,
                    sim_events, trace_out)


def _drive(sim: Simulator, progress, design: str, spec: WorkloadSpec) -> int:
    """Advance the kernel in watchdog chunks until all cores finish.

    Returns the number of events dispatched. Raises
    :class:`SimulationError` on a drained-but-unfinished kernel or on
    ``_STALL_CHUNKS`` consecutive chunks without a new submission.
    """
    last_submitted = -1
    stall_chunks = 0
    sim_events = 0
    while not progress.all_done:
        dispatched = sim.run(until=sim.now + _CHUNK_PS)
        sim_events += dispatched
        if progress.all_done:
            break
        if dispatched == 0 and sim.pending() == 0:
            raise SimulationError(
                f"{design}/{spec.name}: simulation drained with cores unfinished"
            )
        if progress.submitted == last_submitted:
            stall_chunks += 1
            if stall_chunks >= _STALL_CHUNKS:
                raise SimulationError(
                    f"{design}/{spec.name}: no forward progress "
                    f"({progress.submitted}/{progress.total_demands} submitted)"
                )
        else:
            stall_chunks = 0
            last_submitted = progress.submitted
    return sim_events


def _reset_measurement(sink, mm_meter: EnergyMeter,
                       main_memory: MemoryBackend) -> None:
    """Zero every measured statistic at the warm-up boundary."""
    sink.metrics.reset()
    if sink.meter is not None:
        sink.meter.reset()
    mm_meter.reset()
    main_memory.reset_measurement()
    flush = getattr(sink, "flush", None)
    if flush is not None:
        flush.occupancy.reset()
        flush.events.reset()
        flush.stalls = 0
    obs = getattr(sink, "obs", None)
    if obs is not None:
        obs.on_warm()


def _harvest(design: str, spec: WorkloadSpec, sink,
             main_memory: MemoryBackend, mm_meter: EnergyMeter,
             runtime: int, sim_events: int,
             trace_out: Optional[str]) -> RunResult:
    """Collect every RunResult field from a finished simulation."""
    metrics = sink.metrics
    energy = mm_meter.total_pj(runtime)
    cache_energy = 0.0
    if sink.meter is not None:
        cache_energy = sink.meter.total_pj(runtime)
        energy += cache_energy

    result = RunResult(
        design=design,
        workload=spec.name,
        demands=metrics.demands,
        runtime_ps=runtime,
        tag_check_ns=metrics.tag_check.mean_ns,
        queue_delay_ns=_queue_delay_ns(design, sink, main_memory),
        read_latency_ns=metrics.read_latency.mean_ns,
        mm_read_latency_ns=main_memory.mean_read_latency_ns,
        miss_ratio=metrics.miss_ratio,
        read_miss_ratio=metrics.read_miss_ratio,
        breakdown=metrics.breakdown(),
        bloat_factor=metrics.ledger.bloat_factor,
        unuseful_fraction=metrics.ledger.unuseful_fraction,
        useful_bytes=metrics.ledger.useful_bytes,
        total_bytes=metrics.ledger.total_bytes,
        energy_pj=energy,
        cache_energy_pj=cache_energy,
        writebacks=getattr(sink, "writebacks", 0),
        events=metrics.events.as_dict(),
        sim_events=sim_events,
    )
    probe_engine = getattr(sink, "probe_engine", None)
    if probe_engine is not None:
        result.probes = probe_engine.probes
        result.probe_bank_conflicts = probe_engine.bank_conflicts
    prefetcher = getattr(sink, "prefetcher", None)
    if prefetcher is not None:
        result.prefetches = prefetcher.issued
        result.prefetch_useful = prefetcher.stats["useful"]
    flush = getattr(sink, "flush", None)
    if flush is not None:
        result.flush_mean_occupancy = flush.occupancy.mean_level
        result.flush_max_occupancy = flush.occupancy.max_level
        result.flush_stalls = flush.stalls
        result.flush_unloads = {
            name: flush.events[name]
            for name in flush.events.names()
            if name.startswith("unload_")
        }
    ras = getattr(sink, "ras", None)
    if ras is not None:
        result.ras = ras.snapshot()
    result.backend = main_memory.snapshot()
    obs = getattr(sink, "obs", None)
    if obs is not None:
        obs.finalize()
        result.epochs = obs.epoch_series()
        result.profile = obs.profile_summary()
        if trace_out is not None:
            obs.write_trace(trace_out)
    return result.coerce_builtin()


def _window_snapshot(sink, sim: Simulator) -> Dict[str, int]:
    """Cumulative counters at a window boundary (deltas = one window).

    Snapshot/delta instead of per-window resets: resetting
    ``CacheMetrics`` mid-run would also clobber the epoch time-series
    and observer state, and the pooled post-warm statistics double as
    the RunResult's standard fields.
    """
    metrics = sink.metrics
    return {
        "now": sim.now,
        "demands": metrics.outcomes["demands"],
        "misses": metrics.outcomes["misses"],
        "read_latency_ps": metrics.read_latency.total_ps,
        "read_latency_n": metrics.read_latency.count,
        "tag_check_ps": metrics.tag_check.total_ps,
        "tag_check_n": metrics.tag_check.count,
    }


def _append_window(samples: Dict[str, List[float]],
                   before: Dict[str, int], after: Dict[str, int]) -> None:
    """Turn two cumulative snapshots into one window's sample points."""
    demands = after["demands"] - before["demands"]
    if demands <= 0:
        return  # an empty window carries no information
    samples["miss_ratio"].append(
        (after["misses"] - before["misses"]) / demands)
    samples["demand_period_ps"].append(
        (after["now"] - before["now"]) / demands)
    reads = after["read_latency_n"] - before["read_latency_n"]
    if reads > 0:
        samples["read_latency_ns"].append(to_ns(
            after["read_latency_ps"] - before["read_latency_ps"]) / reads)
    tags = after["tag_check_n"] - before["tag_check_n"]
    if tags > 0:
        samples["tag_check_ns"].append(to_ns(
            after["tag_check_ps"] - before["tag_check_ps"]) / tags)


def _run_sampled(
    design: str,
    spec: WorkloadSpec,
    config: SystemConfig,
    streams,
    demands_per_core: int,
    seed: int,
    prewarm_blocks=None,
    trace_out: Optional[str] = None,
) -> RunResult:
    """SMARTS-style sampled run: detailed windows + functional warming.

    Alternates exactly-simulated measurement windows with
    :func:`repro.sim.sampling.functional_fastforward` phases that keep
    the tag store architecturally warm at zero timing cost. Pooled
    post-warm statistics fill the standard RunResult fields;
    ``runtime_ps`` and the energy totals are extrapolated to the full
    post-warm quantum, and per-window dispersion lands on
    ``RunResult.sampling`` as mean ± CI half-width per tracked metric.
    """
    cfg = config.sampling
    windows = sampling.plan(demands_per_core, cfg)
    if cfg.warmup_windows >= len(windows):
        raise ConfigError(
            f"sampling.warmup_windows={cfg.warmup_windows} consumes all "
            f"{len(windows)} windows of a {demands_per_core}-demand "
            f"quantum; lower it or raise demands_per_core")

    sim = Simulator(step_mode=config.step_mode)
    mm_meter = EnergyMeter(config.energy_model, config.mm_channels, False)
    main_memory = build_backend(sim, config, meter=mm_meter)
    sink = DESIGNS[design](sim, config, main_memory)
    _prewarm(sink, spec, config, seed, blocks=prewarm_blocks)

    samples: Dict[str, List[float]] = {
        "miss_ratio": [], "demand_period_ps": [],
        "read_latency_ns": [], "tag_check_ns": [],
    }
    measure_start = 0
    fastforwarded = 0  # post-warm demands replayed functionally
    sim_events = 0

    for index, (detail, fastforward) in enumerate(windows):
        before = _window_snapshot(sink, sim)
        cores, progress = build_cores(
            sim, sink, streams, detail,
            config.max_outstanding_reads_per_core, 0.0,
        )
        progress.on_all_done = sim.stop
        for core in cores:
            core.start()
        sim_events += _drive(sim, progress, design, spec)

        if index + 1 == cfg.warmup_windows:
            # Last warm-up window just finished: start measuring here.
            measure_start = sim.now
            _reset_measurement(sink, mm_meter, main_memory)
        elif index >= cfg.warmup_windows:
            _append_window(samples, before, _window_snapshot(sink, sim))
        if fastforward > 0:
            consumed = sampling.functional_fastforward(
                sink, streams, fastforward)
            if index >= cfg.warmup_windows - 1:
                fastforwarded += consumed

    measured_runtime = max(1, sim.now - measure_start)
    measured_demands = sink.metrics.demands
    if measured_demands == 0:
        raise SimulationError(
            f"{design}/{spec.name}: sampled run measured zero demands")
    # Extrapolate time-proportional totals to the full post-warm
    # quantum: the fast-forwarded demands took zero simulated time, so
    # scale by (measured + fast-forwarded) / measured.
    factor = (measured_demands + fastforwarded) / measured_demands

    result = _harvest(design, spec, sink, main_memory, mm_meter,
                      measured_runtime, sim_events, trace_out)
    result.runtime_ps = int(measured_runtime * factor)
    result.energy_pj *= factor
    result.cache_energy_pj *= factor
    result.sampling = {
        "windows": len(windows) - cfg.warmup_windows,
        "warmup_windows": cfg.warmup_windows,
        "detail_demands": cfg.detail_demands,
        "fastforward_demands": cfg.fastforward_demands,
        "confidence": cfg.confidence,
        "measured_demands": measured_demands,
        "fastforwarded_demands": fastforwarded,
        "coverage": measured_demands / (measured_demands + fastforwarded),
        "extrapolation": factor,
        "ci": sampling.estimate(samples, cfg.confidence),
    }
    return result.coerce_builtin()


def _prewarm(sink, spec: WorkloadSpec, config: SystemConfig, seed: int,
             blocks=None) -> None:
    """Install the steady-state resident set (warmed checkpoint, §IV-B).

    Workload generators place their reused ("hot") data at the low end
    of the footprint, so installing the first ``min(footprint, frames)``
    blocks reproduces the steady state: fitting workloads become fully
    resident, over-sized ones leave the cold tail to conflict as usual.
    Trace replays pass their own ``blocks`` (the trace's resident set).
    Lines are dirtied with the workload's write probability.
    """
    tags = getattr(sink, "tags", None)
    if tags is None:
        return
    if blocks is None:
        footprint = spec.footprint_blocks(config)
        blocks = range(min(footprint, tags.num_frames))
    rng = np.random.default_rng(seed ^ 0x5EED)
    # Steady-state dirtiness is well below the write fraction: fills are
    # clean and rewrites re-dirty the same hot lines, so misses landing
    # on dirty victims stay rare (§II-B: "write demands that miss to a
    # dirty line are very rare").
    dirty = rng.random(len(blocks)) < 0.3 * (1.0 - spec.read_fraction)
    tags.bulk_install(blocks, dirty)


def _queue_delay_ns(design: str, sink, main_memory: MemoryBackend) -> float:
    """Read-buffer queueing delay; the no-cache system reports the
    main-memory read queue instead (Fig. 2's rightmost bars)."""
    if isinstance(sink, NoCacheSystem):
        return main_memory.read_queue_delay_ns
    return sink.metrics.read_queue_delay.mean_ns


def run_trace_experiment(
    design: str,
    trace_path,
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 2000,
    seed: int = 42,
    name: Optional[str] = None,
) -> RunResult:
    """Replay a recorded demand trace through one design.

    The trace (see :mod:`repro.workloads.trace`) is split round-robin
    across the configured cores; the cache is pre-warmed from the
    trace's own footprint. All RunResult metrics apply as usual.
    """
    from repro.workloads.base import MissClass, WorkloadSpec
    from repro.workloads.trace import trace_stats, trace_streams

    config = config or SystemConfig()
    stats = trace_stats(trace_path)
    # A surrogate spec: footprint expressed so that the scaled footprint
    # equals the trace's actual footprint under this configuration.
    scale = config.scale
    surrogate = WorkloadSpec(
        name=name or f"trace:{trace_path}",
        suite="synthetic",
        kernel="trace",
        variant="-",
        paper_footprint_bytes=max(64 * 64, int(stats.footprint_bytes / scale)),
        read_fraction=min(1.0, max(0.0, stats.read_fraction)),
        hot_fraction=1.0,
        hot_probability=0.0,
        sequential_run=1.0,
        mean_gap_ns=max(0.1, stats.mean_gap_ns),
        miss_class=MissClass.HIGH
        if stats.footprint_bytes > config.cache_capacity_bytes else MissClass.LOW,
    )
    # The trace's own touched blocks form the warmed resident set.
    from repro.workloads.trace import read_trace

    touched = sorted({block for _g, _op, block, _pc in read_trace(trace_path)})
    streams = trace_streams(trace_path, config.cores)
    return _run(design, surrogate, config, streams, demands_per_core, seed,
                prewarm_blocks=touched)


def run_matrix(
    designs: List[str],
    specs: List[WorkloadSpec],
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 2000,
    seed: int = 42,
) -> Dict[str, Dict[str, RunResult]]:
    """Run a designs x workloads sweep: ``results[workload][design]``."""
    results: Dict[str, Dict[str, RunResult]] = {}
    for spec in specs:
        row: Dict[str, RunResult] = {}
        for design in designs:
            row[design] = run_experiment(
                design, spec, config=config,
                demands_per_core=demands_per_core, seed=seed,
            )
        results[spec.name] = row
    return results
