"""Backend comparison: the paper's speedup figure over hybrid memory.

The paper evaluates TDRAM over DDR5 only (Fig. 12). This figure reruns
that comparison over each backing-store backend (``ddr5``,
``pcm_like``, ``cxl_like``) and — per backend — ablates TDRAM's two
latency-hiding mechanisms, answering the question the hybrid-memory
literature (TicToc, eDRAM-over-PCM) raises: do the flush buffer and
early-probe miss detection matter *more* when the backend has slow,
asymmetric writes?

Per backend the figure reports geomean speedups over that backend's own
``no_cache`` baseline for Cascade Lake, full TDRAM, TDRAM without
probing, and TDRAM with forced-only flush unloads, plus the two deltas
(``probe_delta``, ``flush_delta``) that isolate each mechanism's
contribution. Exposed as ``tdram-repro backends``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.system import SystemConfig
from repro.experiments.campaign import CampaignTask, run_campaign
from repro.experiments.figures import FigureResult, geomean
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import representative_suite

#: Backends the comparison sweeps (order = figure row order).
COMPARED_BACKENDS = ("ddr5", "pcm_like", "cxl_like")

#: column name -> (design, SystemConfig overrides); no_cache is implicit.
_VARIANTS: Tuple[Tuple[str, str, Dict[str, object]], ...] = (
    ("cascade_lake", "cascade_lake", {}),
    ("tdram", "tdram", {}),
    ("tdram_no_probe", "tdram", {"enable_probing": False}),
    ("tdram_forced_flush", "tdram", {"flush_unload_policy": "forced_only"}),
)


def backends_comparison(
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 400,
    seed: int = 7,
    jobs: int = 1,
    cache=None,
    progress=None,
) -> FigureResult:
    """Speedup-vs-no_cache per backend, with per-mechanism deltas.

    The backends x variants x workloads matrix runs as one campaign:
    ``jobs`` fans it out over worker processes and ``cache`` persists
    results (the backend knobs are ``SystemConfig`` fields, so every
    point has a distinct cache key).
    """
    base = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()[:4]

    tasks: List[CampaignTask] = []
    index: Dict[Tuple[str, str, str], CampaignTask] = {}
    for backend in COMPARED_BACKENDS:
        backend_config = base.with_(memory_backend=backend)
        for spec in specs:
            baseline = CampaignTask(
                design="no_cache", workload=spec, config=backend_config,
                demands_per_core=demands_per_core, seed=seed)
            tasks.append(baseline)
            index[(backend, "no_cache", spec.name)] = baseline
        for column, design, overrides in _VARIANTS:
            variant_config = (backend_config.with_(**overrides)
                              if overrides else backend_config)
            for spec in specs:
                task = CampaignTask(
                    design=design, workload=spec, config=variant_config,
                    demands_per_core=demands_per_core, seed=seed)
                tasks.append(task)
                index[(backend, column, spec.name)] = task

    outcome = run_campaign(tasks, jobs=jobs, cache=cache, progress=progress)

    rows: List[Dict[str, object]] = []
    for backend in COMPARED_BACKENDS:
        row: Dict[str, object] = {"backend": backend}
        mm_lat: List[float] = []
        for column, _design, _overrides in _VARIANTS:
            speedups = []
            for spec in specs:
                result = outcome.by_key[index[(backend, column, spec.name)].key]
                baseline = outcome.by_key[
                    index[(backend, "no_cache", spec.name)].key]
                speedups.append(result.speedup_over(baseline))
                if column == "tdram":
                    mm_lat.append(result.mm_read_latency_ns)
            row[column] = geomean(speedups)
        row["probe_delta"] = float(row["tdram"]) - float(row["tdram_no_probe"])
        row["flush_delta"] = (float(row["tdram"])
                              - float(row["tdram_forced_flush"]))
        row["mm_read_ns"] = geomean(mm_lat)
        rows.append(row)

    columns = (["backend"] + [column for column, _d, _o in _VARIANTS]
               + ["probe_delta", "flush_delta", "mm_read_ns"])
    return FigureResult(
        figure="Backends",
        title="Speedup over no_cache per backing-store backend",
        columns=columns,
        rows=rows,
        notes=("probe_delta / flush_delta isolate early probing and "
               "opportunistic flush unloading per backend; the hybrid "
               "backends (slow asymmetric writes, serialized link) show "
               "how much more a fast-miss-path cache buys over non-DDR5 "
               "media. See docs/backends.md."),
    )
