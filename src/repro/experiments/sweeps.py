"""Generic design-space sweeps over SystemConfig parameters.

Beyond the paper's own sensitivity studies (§V-D/E/F), these helpers
let a user sweep *any* configuration axis — cache capacity, channel
count, MLP, buffer sizes — and get a :class:`FigureResult` back. Used
by ``examples/design_space.py`` and the ablation benches.

Every sweep point is an independent simulation, so the whole sweep is
executed as one campaign (:mod:`repro.experiments.campaign`): pass
``jobs=N`` to fan the points out over worker processes and ``cache``
(a :class:`~repro.experiments.campaign.ResultCache` or directory) to
persist results — the campaign key covers the swept ``SystemConfig``,
so distinct points can never alias.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.experiments.campaign import CampaignTask, run_campaign
from repro.experiments.figures import FigureResult, geomean
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import representative_suite


def config_sweep(
    parameter: str,
    values: Sequence,
    design: str = "tdram",
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    baseline_design: Optional[str] = "no_cache",
    demands_per_core: int = 400,
    seed: int = 7,
    hold_footprint: bool = False,
    jobs: int = 1,
    cache=None,
    progress=None,
) -> FigureResult:
    """Sweep one ``SystemConfig`` field and report per-point geomeans.

    Parameters
    ----------
    parameter:
        Field name of :class:`SystemConfig` (e.g. ``cache_capacity_bytes``,
        ``max_outstanding_reads_per_core``, ``flush_buffer_entries``).
    hold_footprint:
        When sweeping the cache capacity, keep the *absolute* workload
        footprint fixed (workload footprints otherwise scale with the
        configured capacity).
    jobs / cache / progress:
        Campaign execution knobs (worker processes, on-disk result
        cache, progress callback); see :func:`run_campaign`.
    """
    base_config = config or SystemConfig.small()
    if not hasattr(base_config, parameter):
        raise ConfigError(f"SystemConfig has no field {parameter!r}")
    specs = specs if specs is not None else representative_suite()[:4]

    # Enumerate every (point, spec) simulation up front so the whole
    # sweep runs as one campaign.
    points = []
    tasks: List[CampaignTask] = []
    for value in values:
        point = base_config.with_(**{parameter: value})
        point_tasks = []
        for spec in specs:
            run_spec = spec
            if hold_footprint and parameter == "cache_capacity_bytes":
                run_spec = replace(
                    spec,
                    paper_footprint_bytes=int(
                        spec.paper_footprint_bytes
                        * base_config.cache_capacity_bytes / value
                    ),
                )
            design_task = CampaignTask(
                design=design, workload=run_spec, config=point,
                demands_per_core=demands_per_core, seed=seed,
            )
            baseline_task = None
            if baseline_design is not None:
                baseline_task = CampaignTask(
                    design=baseline_design, workload=run_spec, config=point,
                    demands_per_core=demands_per_core, seed=seed,
                )
                tasks.append(baseline_task)
            tasks.append(design_task)
            point_tasks.append((design_task, baseline_task))
        points.append((value, point_tasks))

    outcome = run_campaign(tasks, jobs=jobs, cache=cache, progress=progress)

    rows = []
    for value, point_tasks in points:
        speedups = []
        tag_checks = []
        miss_ratios = []
        for design_task, baseline_task in point_tasks:
            result = outcome.by_key[design_task.key]
            tag_checks.append(result.tag_check_ns)
            miss_ratios.append(result.miss_ratio)
            if baseline_task is not None:
                baseline = outcome.by_key[baseline_task.key]
                speedups.append(result.speedup_over(baseline))
        row = {
            parameter: value,
            "tag_check_ns": geomean(tag_checks),
            "mean_miss_ratio": sum(miss_ratios) / len(miss_ratios),
        }
        if speedups:
            row[f"speedup_vs_{baseline_design}"] = geomean(speedups)
        rows.append(row)
    columns = list(rows[0].keys())
    return FigureResult(
        figure=f"Sweep: {parameter}",
        title=f"{design} across {parameter} = {list(values)}",
        columns=columns,
        rows=rows,
    )


def mlp_sweep(values: Iterable[int] = (1, 2, 4, 8, 16), **kwargs) -> FigureResult:
    """How sensitive are the results to the front end's per-core MLP?"""
    return config_sweep("max_outstanding_reads_per_core", list(values),
                        **kwargs)


def channel_sweep(values: Iterable[int] = (2, 4, 8), **kwargs) -> FigureResult:
    """DRAM-cache channel-count sweep (bandwidth scaling)."""
    return config_sweep("cache_channels", list(values), **kwargs)


def backend_sweep(
    values: Iterable[str] = ("ddr5", "pcm_like", "cxl_like"), **kwargs
) -> FigureResult:
    """Swap the backing-store media model behind the cache.

    Sweeps ``SystemConfig.memory_backend`` — see ``docs/backends.md``
    for what each backend models and the knobs that shape it. The
    richer per-mechanism comparison is ``tdram-repro backends``
    (:func:`repro.experiments.backends_figure.backends_comparison`).
    """
    return config_sweep("memory_backend", list(values), **kwargs)


def gemini_fraction_sweep(
    values: Iterable[float] = (0.25, 0.5, 0.75), **kwargs
) -> FigureResult:
    """Gemini hybrid: sweep the direct-mapped region's share of frames."""
    kwargs.setdefault("design", "gemini_hybrid")
    return config_sweep("gemini_direct_fraction", list(values), **kwargs)


def tictoc_tag_cache_sweep(
    values: Iterable[int] = (256, 1024, 4096, 16384), **kwargs
) -> FigureResult:
    """TicToc: sweep the SRAM tag-cache size (probe-avoidance reach)."""
    kwargs.setdefault("design", "tictoc")
    return config_sweep("tictoc_tag_cache_entries", list(values), **kwargs)
