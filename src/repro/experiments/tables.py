"""Table I — qualitative design-space comparison, as executable data.

The paper's Table I compares tag-management approaches along six axes.
Encoding it as data lets the test suite assert the claimed properties
against the *implemented* designs (e.g. only TDRAM gates the data-bank
column operation on the tag result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.figures import FigureResult


@dataclass(frozen=True)
class DesignTraits:
    """One column of Table I."""

    name: str
    tag_storage: str            #: where tags live
    tag_check_location: str     #: "before MC" | "in MC" | "in DRAM" | "in RRAM"
    processor_die_area: str     #: "high" | "low"
    no_extra_hw: bool           #: no extra hardware structures needed
    tags_scale_with_data: bool
    conditional_column_op: bool
    low_hit_miss_latency: bool


TABLE1: Dict[str, DesignTraits] = {
    "tags_in_sram": DesignTraits(
        name="Tags-in-SRAM", tag_storage="SRAM on processor die",
        tag_check_location="before MC", processor_die_area="high",
        no_extra_hw=True, tags_scale_with_data=False,
        conditional_column_op=False, low_hit_miss_latency=True),
    "etag": DesignTraits(
        name="eTag", tag_storage="eDRAM on processor die",
        tag_check_location="before MC", processor_die_area="high",
        no_extra_hw=False, tags_scale_with_data=False,
        conditional_column_op=False, low_hit_miss_latency=True),
    "tags_in_row": DesignTraits(
        name="Tag&data in same row (CL/Alloy/BEAR)", tag_storage="DRAM",
        tag_check_location="in MC", processor_die_area="low",
        no_extra_hw=False, tags_scale_with_data=True,
        conditional_column_op=False, low_hit_miss_latency=False),
    "r_cache": DesignTraits(
        name="R-Cache", tag_storage="RRAM",
        tag_check_location="in RRAM", processor_die_area="low",
        no_extra_hw=False, tags_scale_with_data=True,
        conditional_column_op=False, low_hit_miss_latency=False),
    "ndc": DesignTraits(
        name="NDC", tag_storage="DRAM (CAM-like)",
        tag_check_location="in DRAM", processor_die_area="low",
        no_extra_hw=True, tags_scale_with_data=True,
        conditional_column_op=False, low_hit_miss_latency=True),
    "tdram": DesignTraits(
        name="TDRAM", tag_storage="DRAM (fast tag mats)",
        tag_check_location="in DRAM", processor_die_area="low",
        no_extra_hw=True, tags_scale_with_data=True,
        conditional_column_op=True, low_hit_miss_latency=True),
}


def table1_comparison() -> FigureResult:
    """Render Table I."""
    columns = ["design", "tag_storage", "tag_check", "die_area",
               "no_extra_hw", "tags_scale", "cond_col_op", "low_latency"]
    rows: List[dict] = []
    for traits in TABLE1.values():
        rows.append({
            "design": traits.name,
            "tag_storage": traits.tag_storage,
            "tag_check": traits.tag_check_location,
            "die_area": traits.processor_die_area,
            "no_extra_hw": "yes" if traits.no_extra_hw else "no",
            "tags_scale": "yes" if traits.tags_scale_with_data else "no",
            "cond_col_op": "yes" if traits.conditional_column_op else "no",
            "low_latency": "yes" if traits.low_hit_miss_latency else "no",
        })
    return FigureResult(
        figure="Table I",
        title="Comparison of TDRAM with related work (qualitative)",
        columns=columns,
        rows=rows,
        notes="Only TDRAM combines in-DRAM checks, scaling tags, no extra "
              "processor-side hardware, conditional column ops, and low latency.",
    )
