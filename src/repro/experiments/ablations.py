"""TDRAM mechanism ablation: what does each feature buy?

TDRAM stacks several mechanisms on the base in-DRAM-tags idea. This
matrix removes them one at a time (and all at once) to attribute the
end-to-end benefit, the way an artifact evaluation would:

* ``full``           — everything on (the paper's TDRAM);
* ``no_probing``     — §III-E off (the paper's own ablation: ~NDC);
* ``forced_unloads`` — flush buffer drains only via explicit commands
  (NDC's RES-style policy) instead of free read-miss-clean/refresh slots;
* ``per_bank_refresh`` — no channel-wide refresh windows to unload in;
* ``base``           — probing off *and* forced-only unloads: in-DRAM
  tags with none of TDRAM's opportunistic machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config.system import SystemConfig
from repro.experiments.campaign import CampaignTask, run_campaign
from repro.experiments.figures import ExperimentContext, FigureResult, geomean
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import representative_suite

#: variant name -> SystemConfig overrides
ABLATION_VARIANTS: Dict[str, Dict[str, object]] = {
    "full": {},
    "no_probing": {"enable_probing": False},
    "forced_unloads": {"flush_unload_policy": "forced_only"},
    "per_bank_refresh": {"cache_refresh_policy": "per_bank"},
    "base": {"enable_probing": False, "flush_unload_policy": "forced_only"},
}


def tdram_ablation(
    config: Optional[SystemConfig] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    demands_per_core: int = 500,
    seed: int = 7,
    jobs: int = 1,
    cache=None,
    progress=None,
) -> FigureResult:
    """Run every ablation variant and report geomean deltas vs full.

    The variants x workloads matrix runs as one campaign: ``jobs`` fans
    it out over worker processes, ``cache`` persists the results (each
    variant's modified ``SystemConfig`` is part of the cache key).
    """
    config = config or SystemConfig.small()
    specs = specs if specs is not None else representative_suite()
    variant_tasks: Dict[str, List[CampaignTask]] = {
        variant: [
            CampaignTask(design="tdram", workload=spec,
                         config=config.with_(**overrides),
                         demands_per_core=demands_per_core, seed=seed)
            for spec in specs
        ]
        for variant, overrides in ABLATION_VARIANTS.items()
    }
    all_tasks = [task for tasks in variant_tasks.values() for task in tasks]
    outcome = run_campaign(all_tasks, jobs=jobs, cache=cache,
                           progress=progress)
    per_variant: Dict[str, Dict[str, float]] = {}
    for variant, tasks in variant_tasks.items():
        runtimes = []
        tag_checks = []
        queue_delays = []
        forced = 0
        for task in tasks:
            result = outcome.by_key[task.key]
            runtimes.append(result.runtime_ps)
            tag_checks.append(result.tag_check_ns)
            queue_delays.append(result.queue_delay_ns)
            forced += result.flush_unloads.get("unload_forced", 0)
        per_variant[variant] = {
            "runtime": geomean(runtimes),
            "tag": geomean(tag_checks),
            "queue": geomean(queue_delays),
            "forced_unloads": forced,
        }
    full = per_variant["full"]
    rows = []
    for variant, values in per_variant.items():
        rows.append({
            "variant": variant,
            "runtime_vs_full": values["runtime"] / full["runtime"],
            "tag_check_ns": values["tag"],
            "queue_delay_ns": values["queue"],
            "forced_unloads": values["forced_unloads"],
        })
    return FigureResult(
        figure="TDRAM ablation",
        title="Per-mechanism contribution (geomean over the workload set)",
        columns=["variant", "runtime_vs_full", "tag_check_ns",
                 "queue_delay_ns", "forced_unloads"],
        rows=rows,
        notes=("runtime_vs_full > 1 means the removed mechanism was "
               "helping. Paper reference points: no-probing ~ NDC (§V-A); "
               "opportunistic unloads keep forced drains near zero (§V-E)."),
    )
