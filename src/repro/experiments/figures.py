"""Regeneration of every table and figure in the paper's evaluation.

Each ``figNN_*`` / ``tableN_*`` function runs (or reuses) the needed
(design, workload) simulations through an :class:`ExperimentContext`
and returns a :class:`FigureResult` — the same rows/series the paper
reports, printable with :meth:`FigureResult.render`.

The default workload set is :func:`repro.workloads.representative_suite`
(six workloads spanning both miss groups); pass
``specs=repro.workloads.full_suite()`` for the complete 28-workload
sweep the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.cache.metrics import BREAKDOWN_CATEGORIES
from repro.config.system import SystemConfig
from repro.core.area import die_area_report, signal_report
from repro.experiments.campaign import (
    CampaignTask,
    ResultCache,
    cache_key,
    execute_cached,
    run_campaign,
)
from repro.experiments.runner import RunResult
from repro.workloads.base import MissClass, WorkloadSpec
from repro.workloads.suite import representative_suite

#: Designs compared in the latency/speedup figures (order = paper's).
EVALUATED_DESIGNS = ("cascade_lake", "alloy", "bear", "ndc", "tdram")

#: Design-zoo frontier: the paper's designs plus the related-work
#: organizations riding the pluggable seam, bounded by Ideal.
FRONTIER_DESIGNS = EVALUATED_DESIGNS + ("gemini_hybrid", "tictoc", "ideal")

#: Designs each context figure/table needs — lets the CLI warm the
#: context with one parallel campaign before generating a figure.
FIGURE_DESIGNS: Dict[str, Sequence[str]] = {
    "fig1": ("cascade_lake",),
    "fig2": ("no_cache", "cascade_lake", "alloy", "bear"),
    "fig3": ("cascade_lake", "alloy", "bear"),
    "fig9": EVALUATED_DESIGNS,
    "fig10": EVALUATED_DESIGNS,
    "fig11": EVALUATED_DESIGNS + ("ideal",),
    "fig12": EVALUATED_DESIGNS + ("ideal", "no_cache"),
    "fig13": EVALUATED_DESIGNS,
    "table4": EVALUATED_DESIGNS,
    "frontier": FRONTIER_DESIGNS,
}


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (ignores non-positive values defensively)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


@dataclass
class FigureResult:
    """One regenerated table/figure: labelled rows of numbers."""

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    notes: str = ""

    def render(self) -> str:
        """Format as an aligned text table (the bench targets print this)."""
        widths = {c: len(c) for c in self.columns}
        formatted: List[Dict[str, str]] = []
        for row in self.rows:
            out = {}
            for column in self.columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    out[column] = f"{value:.3f}"
                else:
                    out[column] = str(value)
                widths[column] = max(widths[column], len(out[column]))
            formatted.append(out)
        lines = [f"== {self.figure}: {self.title} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for out in formatted:
            lines.append("  ".join(out[c].ljust(widths[c]) for c in self.columns))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


class ExperimentContext:
    """Runs and memoises (design, workload) simulations for the figures.

    Memoisation keys on the full campaign :func:`cache_key` — design,
    workload spec, ``SystemConfig``, work quantum, and seed — so a
    context whose configuration changes (or two contexts sharing one
    on-disk cache with different configs) can never return a stale
    :class:`RunResult`. Pass ``cache`` (a :class:`ResultCache` or a
    directory path) to persist results across processes, and ``jobs``
    plus :meth:`warm` to fan simulations out over worker processes.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        specs: Optional[List[WorkloadSpec]] = None,
        demands_per_core: int = 600,
        seed: int = 7,
        jobs: int = 1,
        cache: Optional[Union[ResultCache, str, Path]] = None,
    ) -> None:
        self.config = config or SystemConfig.small()
        self.specs = specs if specs is not None else representative_suite()
        self.demands_per_core = demands_per_core
        self.seed = seed
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self._cache: Dict[str, RunResult] = {}

    def task(self, design: str, spec: WorkloadSpec) -> CampaignTask:
        return CampaignTask(design=design, workload=spec, config=self.config,
                            demands_per_core=self.demands_per_core,
                            seed=self.seed)

    def result(self, design: str, spec: WorkloadSpec) -> RunResult:
        key = cache_key(design, spec, self.config, self.demands_per_core,
                        self.seed)
        if key not in self._cache:
            self._cache[key] = execute_cached(self.task(design, spec),
                                              cache=self.cache)
        return self._cache[key]

    def warm(self, designs: Sequence[str], jobs: Optional[int] = None,
             progress=None):
        """Populate the memo for ``designs`` x ``self.specs`` with one
        (optionally parallel) campaign; returns its outcome."""
        tasks = [self.task(design, spec)
                 for design in designs for spec in self.specs]
        outcome = run_campaign(tasks, jobs=jobs if jobs is not None
                               else self.jobs, cache=self.cache,
                               progress=progress)
        for task, result in zip(tasks, outcome.results):
            self._cache[task.key] = result
        return outcome

    def by_group(self, group: MissClass) -> List[WorkloadSpec]:
        return [s for s in self.specs if s.miss_class is group]


# ---------------------------------------------------------------------------
# Figure 1 — hit/miss breakdown of the DRAM cache
# ---------------------------------------------------------------------------
def fig01_hit_miss_breakdown(ctx: ExperimentContext) -> FigureResult:
    """Fig. 1: per-workload breakdown into the six Table II categories."""
    columns = ["workload", "group"] + list(BREAKDOWN_CATEGORIES) + ["miss_ratio"]
    rows = []
    for spec in ctx.specs:
        result = ctx.result("cascade_lake", spec)
        row: Dict[str, object] = {
            "workload": spec.name,
            "group": spec.miss_class.value,
            "miss_ratio": result.miss_ratio,
        }
        row.update(result.breakdown)
        rows.append(row)
    return FigureResult(
        figure="Figure 1",
        title="DRAM cache hit/miss breakdown (fractions of demands)",
        columns=columns,
        rows=rows,
        notes="Paper: low-miss group < 30%, high-miss group > 50%, none between.",
    )


# ---------------------------------------------------------------------------
# Figure 2 — queueing delay of DRAM reads, baselines vs no-cache
# ---------------------------------------------------------------------------
def fig02_queueing_baselines(ctx: ExperimentContext) -> FigureResult:
    """Fig. 2: existing caches queue reads far longer than plain DDR5."""
    designs = ["no_cache", "cascade_lake", "alloy", "bear"]
    columns = ["workload"] + designs
    rows = []
    for spec in ctx.specs:
        row: Dict[str, object] = {"workload": spec.name}
        for design in designs:
            row[design] = ctx.result(design, spec).queue_delay_ns
        rows.append(row)
    means = {d: geomean([r[d] for r in rows if r[d]]) for d in designs}
    rows.append({"workload": "geomean", **means})
    return FigureResult(
        figure="Figure 2",
        title="Average queueing delay of DRAM reads (ns)",
        columns=columns,
        rows=rows,
        notes="Paper: the DRAM-cache bars exceed the no-DRAM-cache system.",
    )


# ---------------------------------------------------------------------------
# Figure 3 — useful vs unuseful data movement
# ---------------------------------------------------------------------------
def fig03_wasted_movement(ctx: ExperimentContext) -> FigureResult:
    """Fig. 3: share of moved bytes that served no purpose."""
    designs = ["cascade_lake", "alloy", "bear"]
    columns = ["workload"] + [f"{d}_unuseful" for d in designs]
    rows = []
    for spec in ctx.specs:
        row: Dict[str, object] = {"workload": spec.name}
        for design in designs:
            row[f"{design}_unuseful"] = ctx.result(design, spec).unuseful_fraction
        rows.append(row)
    return FigureResult(
        figure="Figure 3",
        title="Unuseful fraction of data movement (of total bytes moved)",
        columns=columns,
        rows=rows,
        notes=("Paper: ft/is/mg/ua waste the most; Alloy/BEAR's 80 B bursts "
               "raise the unuseful share over Cascade Lake."),
    )


# ---------------------------------------------------------------------------
# Figure 4A — overhead tables (analytic)
# ---------------------------------------------------------------------------
def fig04_overheads() -> FigureResult:
    """Fig. 4A + §III-C5: signal-count and die-area overheads."""
    area = die_area_report()
    signals = signal_report()
    rows = [
        {"quantity": "extra bus signals per 32-bit channel",
         "value": float(signals.extra_per_channel), "paper": 6.0},
        {"quantity": "extra CA+HM signals per stack",
         "value": float(signals.extra_channel_signals), "paper": 192.0},
        {"quantity": "total signals per stack",
         "value": float(signals.total_signals), "paper": 2164.0},
        {"quantity": "signal overhead vs HBM3 (frac)",
         "value": signals.overhead_fraction, "paper": 0.097},
        {"quantity": "fits in HBM3 unused bumps (1=yes)",
         "value": float(signals.fits_in_unused_bumps), "paper": 1.0},
        {"quantity": "tag-mat area overhead in even banks (frac)",
         "value": area.tag_mat_area_overhead, "paper": 0.243},
        {"quantity": "total die-area overhead (frac)",
         "value": area.total_die_overhead, "paper": 0.0824},
    ]
    return FigureResult(
        figure="Figure 4A",
        title="TDRAM interface and die-area overheads vs HBM3",
        columns=["quantity", "value", "paper"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 9 — tag check latency
# ---------------------------------------------------------------------------
def fig09_tag_check(ctx: ExperimentContext) -> FigureResult:
    """Fig. 9: TDRAM's tag check is 2.6x/2.65x/2x/1.82x faster."""
    columns = ["workload"] + list(EVALUATED_DESIGNS)
    rows = []
    for spec in ctx.specs:
        row: Dict[str, object] = {"workload": spec.name}
        for design in EVALUATED_DESIGNS:
            row[design] = ctx.result(design, spec).tag_check_ns
        rows.append(row)
    means = {d: geomean([r[d] for r in rows]) for d in EVALUATED_DESIGNS}
    rows.append({"workload": "geomean", **means})
    tdram = means["tdram"] or 1.0
    ratios = {d: means[d] / tdram for d in EVALUATED_DESIGNS}
    rows.append({"workload": "ratio_vs_tdram", **ratios})
    return FigureResult(
        figure="Figure 9",
        title="Tag check latency (ns); last row = slowdown vs TDRAM",
        columns=columns,
        rows=rows,
        notes="Paper ratios vs TDRAM: CL 2.6x, Alloy 2.65x, BEAR 2x, NDC 1.82x.",
    )


# ---------------------------------------------------------------------------
# Figure 10 — read-buffer queueing delay, all designs
# ---------------------------------------------------------------------------
def fig10_queueing(ctx: ExperimentContext) -> FigureResult:
    """Fig. 10: TDRAM's queueing delay is the shortest of all designs."""
    columns = ["workload"] + list(EVALUATED_DESIGNS)
    rows = []
    for spec in ctx.specs:
        row: Dict[str, object] = {"workload": spec.name}
        for design in EVALUATED_DESIGNS:
            row[design] = ctx.result(design, spec).queue_delay_ns
        rows.append(row)
    means = {d: geomean([r[d] for r in rows if r[d]]) for d in EVALUATED_DESIGNS}
    rows.append({"workload": "geomean", **means})
    return FigureResult(
        figure="Figure 10",
        title="Average queueing delay in the read buffer (ns)",
        columns=columns,
        rows=rows,
        notes="Paper: TDRAM shortest (early probing frees queue entries).",
    )


# ---------------------------------------------------------------------------
# Figures 11/12 — speedups
# ---------------------------------------------------------------------------
def fig11_speedup_vs_cl(ctx: ExperimentContext) -> FigureResult:
    """Fig. 11: speedup normalised to Cascade Lake (higher is better)."""
    designs = ["alloy", "bear", "ndc", "tdram", "ideal"]
    columns = ["workload"] + designs
    rows = []
    for spec in ctx.specs:
        baseline = ctx.result("cascade_lake", spec)
        row: Dict[str, object] = {"workload": spec.name}
        for design in designs:
            row[design] = ctx.result(design, spec).speedup_over(baseline) \
                if design != "cascade_lake" else 1.0
        rows.append(row)
    means = {d: geomean([r[d] for r in rows]) for d in designs}
    rows.append({"workload": "geomean", **means})
    return FigureResult(
        figure="Figure 11",
        title="Speedup over Cascade Lake (fixed work quantum)",
        columns=columns,
        rows=rows,
        notes=("Paper geomeans: TDRAM 1.20x over CL, 1.23x over Alloy, "
               "1.13x over BEAR, 1.08x over NDC; Ideal is the upper bound."),
    )


def fig12_speedup_vs_nocache(ctx: ExperimentContext) -> FigureResult:
    """Fig. 12: speedup normalised to a system with main memory only."""
    designs = ["cascade_lake", "alloy", "bear", "ndc", "tdram", "ideal"]
    columns = ["workload"] + designs
    rows = []
    for spec in ctx.specs:
        baseline = ctx.result("no_cache", spec)
        row: Dict[str, object] = {"workload": spec.name}
        for design in designs:
            row[design] = ctx.result(design, spec).speedup_over(baseline)
        rows.append(row)
    means = {d: geomean([r[d] for r in rows]) for d in designs}
    rows.append({"workload": "geomean", **means})
    return FigureResult(
        figure="Figure 12",
        title="Speedup over the no-DRAM-cache system",
        columns=columns,
        rows=rows,
        notes=("Paper geomeans: CL 0.92x, Alloy 0.90x, BEAR 0.98x (slowdowns); "
               "NDC 1.03x, TDRAM 1.11x (speedups)."),
    )


# ---------------------------------------------------------------------------
# Figure 13 — relative energy
# ---------------------------------------------------------------------------
def fig13_energy(ctx: ExperimentContext) -> FigureResult:
    """Fig. 13: energy (power x runtime) normalised to Cascade Lake.

    The figure compares the DRAM-cache device + interface energy (the
    part the designs change); main-memory energy is a common cost.
    """
    designs = ["bear", "ndc", "tdram"]
    columns = ["workload", "alloy"] + designs
    rows = []
    for spec in ctx.specs:
        baseline = ctx.result("cascade_lake", spec).cache_energy_pj
        row: Dict[str, object] = {"workload": spec.name}
        row["alloy"] = ctx.result("alloy", spec).cache_energy_pj / baseline
        for design in designs:
            row[design] = ctx.result(design, spec).cache_energy_pj / baseline
        rows.append(row)
    means = {d: geomean([r[d] for r in rows]) for d in ["alloy"] + designs}
    rows.append({"workload": "geomean", **means})
    return FigureResult(
        figure="Figure 13",
        title="Relative energy vs Cascade Lake (lower is better)",
        columns=columns,
        rows=rows,
        notes=("Paper: TDRAM -21% vs CL and -12% vs BEAR (geomean); Alloy is "
               "higher than CL; NDC is comparable to TDRAM."),
    )


# ---------------------------------------------------------------------------
# Design-zoo frontier — hit latency vs bandwidth bloat vs capacity overhead
# ---------------------------------------------------------------------------
def capacity_overhead(design: str, config: SystemConfig) -> float:
    """Fraction of cache data capacity spent on metadata structures.

    Analytic (not simulated): the storage cost of each organization's
    tag/metadata scheme, the third axis of the frontier figure.
    """
    if design in ("cascade_lake", "gemini_hybrid"):
        # Tags ride the spare ECC bits of the line's own DRAM row; the
        # hybrid additionally keeps a ~2-byte hotness counter per frame.
        base = 0.0
        if design == "gemini_hybrid":
            base += 2.0 / 64.0
        return base
    if design in ("alloy", "bear"):
        # 80 B TADs: 16 bytes of tag+metadata transferred per 64 B line.
        return 16.0 / 64.0
    if design in ("ndc", "tdram"):
        # Dedicated tag mats on die (Fig. 4A total die-area overhead).
        return die_area_report().total_die_overhead
    if design == "tictoc":
        # Tags in ECC bits (CL array) + the on-die SRAM structures:
        # ~8 bytes per tag-cache entry, amortised over the data capacity.
        sram_bytes = 8.0 * config.tictoc_tag_cache_entries
        return sram_bytes / max(1, config.cache_capacity_bytes)
    return 0.0


def frontier_design_zoo(ctx: ExperimentContext) -> FigureResult:
    """Cross-design frontier: latency vs bloat vs capacity overhead.

    The scenario-diversity figure ROADMAP item 4 asks for — every
    organization in the zoo on the three axes a deployment trades
    between. All per-workload values are geomean-aggregated; a design
    that completed zero demands (an empty measured region) reports 0.0
    rather than dividing by nothing.
    """
    columns = ["design", "tag_check_ns", "read_latency_ns", "bloat_factor",
               "miss_ratio", "capacity_overhead"]
    rows: List[Dict[str, object]] = []
    for design in FRONTIER_DESIGNS:
        results = [ctx.result(design, spec) for spec in ctx.specs]
        rows.append({
            "design": design,
            "tag_check_ns": geomean([r.tag_check_ns for r in results]),
            "read_latency_ns": geomean([r.read_latency_ns for r in results]),
            "bloat_factor": geomean([r.bloat_factor for r in results]),
            "miss_ratio": geomean([r.miss_ratio for r in results]),
            "capacity_overhead": capacity_overhead(design, ctx.config),
        })
    return FigureResult(
        figure="Frontier",
        title="Design-zoo frontier: hit latency / bandwidth bloat / capacity",
        columns=columns,
        rows=rows,
        notes=("gemini_hybrid and tictoc ride the organization seam; "
               "capacity_overhead is analytic (metadata bytes per data byte)."),
    )


# ---------------------------------------------------------------------------
# Table IV — bandwidth bloat factor
# ---------------------------------------------------------------------------
PAPER_TABLE4 = {
    "cascade_lake": {"low": 1.35, "high": 2.75},
    "alloy": {"low": 1.68, "high": 3.43},
    "bear": {"low": 1.41, "high": 2.40},
    "ndc": {"low": 1.13, "high": 2.06},
    "tdram": {"low": 1.13, "high": 2.06},
}


def table4_bloat(ctx: ExperimentContext) -> FigureResult:
    """Table IV: geomean bandwidth-bloat factor per miss-ratio group."""
    rows = []
    group_specs = {
        "low": ctx.by_group(MissClass.LOW),
        "high": ctx.by_group(MissClass.HIGH),
    }
    measured: Dict[str, Dict[str, float]] = {}
    for design in EVALUATED_DESIGNS:
        measured[design] = {}
        row: Dict[str, object] = {"design": design}
        for group, specs in group_specs.items():
            value = geomean([ctx.result(design, s).bloat_factor for s in specs]) \
                if specs else 0.0
            measured[design][group] = value
            row[f"{group}_miss"] = value
            row[f"paper_{group}"] = PAPER_TABLE4[design][group]
        rows.append(row)
    tdram = measured["tdram"]
    for design in ("cascade_lake", "alloy", "bear", "ndc"):
        row = {"design": f"tdram_reduction_vs_{design}"}
        for group in ("low", "high"):
            base = measured[design][group]
            row[f"{group}_miss"] = (base - tdram[group]) / base if base else 0.0
            paper_base = PAPER_TABLE4[design][group]
            row[f"paper_{group}"] = (
                (paper_base - PAPER_TABLE4["tdram"][group]) / paper_base
            )
        rows.append(row)
    return FigureResult(
        figure="Table IV",
        title="Bandwidth bloat factor (geomean per miss group)",
        columns=["design", "low_miss", "paper_low", "high_miss", "paper_high"],
        rows=rows,
    )
