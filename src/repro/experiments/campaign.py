"""Parallel campaign engine with a content-addressed on-disk cache.

The paper's evaluation is a 28-workload x 7-design sweep (§IV); every
figure, sweep, and ablation is ultimately a batch of independent
``(design, workload, seed)`` simulations. This module turns such a
batch into a *campaign*:

* each run is a :class:`CampaignTask`, identified by a stable
  content-addressed :func:`cache_key` over everything that determines
  its outcome (design, workload spec, full :class:`SystemConfig`,
  work quantum, seed);
* :func:`run_campaign` fans tasks out over a supervised process pool
  (:class:`repro.resilience.supervisor.TaskSupervisor`): one pool,
  reused across retry rounds, with per-task wall-clock deadlines,
  seeded exponential backoff between attempts, and a circuit breaker
  that quarantines a ``(design, workload)`` combo after repeated
  distinct-seed failures — results are bit-identical to the serial
  path because every simulation is seeded explicitly per task;
* a :class:`ResultCache` persists each :class:`RunResult` as JSON
  under its key (atomic writes, corrupt entries quarantined and
  counted), and an optional
  :class:`~repro.resilience.journal.CampaignJournal` makes progress
  durable: ``--resume`` after SIGKILL replays completed tasks exactly
  and re-simulates only what was in flight;
* a campaign that exhausts retries degrades gracefully: partial
  results plus a structured error manifest
  (:class:`~repro.resilience.policies.TaskFailure` rows) instead of an
  exception, unless ``strict``.

The engine is deliberately dependency-free: tasks and results are
plain dataclasses, keys are SHA-256 hexdigests, and the cache is a
directory of small JSON files safe to rsync or commit to CI artifact
storage. Fault-tolerance semantics are specified in
``docs/resilience.md``.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.config.system import SystemConfig
from repro.errors import CampaignError
from repro.experiments.runner import RunResult, run_experiment
from repro.obs.campaign import CampaignSeries
from repro.resilience.chaos import ChaosConfig, maybe_fault
from repro.resilience.journal import CampaignJournal
from repro.resilience.policies import CircuitBreaker, RetryPolicy, TaskFailure
from repro.resilience.store import ResultStore, quarantine_entry
from repro.resilience.supervisor import TaskSupervisor
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import workload as lookup_workload

#: Bump to invalidate every existing cache entry (simulator behaviour
#: changes that alter results without touching any key ingredient).
CACHE_VERSION = 1

#: ``progress(done, total, label, source, eta_s)`` — ``source`` is one
#: of "cached", "simulated", "replayed", "retried", "failed", or
#: "quarantined"; ``eta_s`` is the estimated remaining wall-clock
#: (None until one simulation finished).
ProgressFn = Callable[[int, int, str, str, Optional[float]], None]


# ---------------------------------------------------------------------------
# Content-addressed keys
# ---------------------------------------------------------------------------
def _canonical(value):
    """Reduce any config/spec value to a canonical JSON-able form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            spec.name: _canonical(getattr(value, spec.name))
            for spec in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(
    design: str,
    spec: Union[WorkloadSpec, str],
    config: SystemConfig,
    demands_per_core: int,
    seed: int,
) -> str:
    """Stable SHA-256 key over everything that determines a RunResult.

    Two invocations share a key iff they would produce bit-identical
    results: the key covers the design, the *full* workload spec (not
    just its name), every ``SystemConfig`` field (timings, energy
    model, RAS campaign, geometry), the work quantum, the seed, and
    :data:`CACHE_VERSION`.
    """
    if isinstance(spec, str):
        spec = lookup_workload(spec)
    payload = {
        "v": CACHE_VERSION,
        "design": design,
        "workload": _canonical(spec),
        "config": _canonical(config),
        "demands_per_core": demands_per_core,
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignTask:
    """One fully-specified simulation: ``(design, workload, seed)``
    under a given configuration and work quantum.

    ``trace_dir`` requests a per-run Chrome trace artifact written
    beside the cached result (``<trace_dir>/<key[:2]>/<key>.trace.json``)
    when ``config.obs.trace`` is on. It is a *destination*, not an
    outcome ingredient, so it is deliberately outside the cache key —
    the obs settings themselves (which do change the RunResult) are
    covered because the key canonicalises the full ``SystemConfig``.
    """

    design: str
    workload: WorkloadSpec
    config: SystemConfig
    demands_per_core: int = 600
    seed: int = 7
    trace_dir: Optional[str] = None

    @property
    def key(self) -> str:
        # Memoised: canonicalising the full SystemConfig and hashing it
        # is expensive, and a campaign touches every task's key several
        # times (dedupe, cache probe, result alignment). The fields are
        # frozen, so the key can never go stale.
        key = self.__dict__.get("_key")
        if key is None:
            key = cache_key(self.design, self.workload, self.config,
                            self.demands_per_core, self.seed)
            object.__setattr__(self, "_key", key)
        return key

    @property
    def label(self) -> str:
        return f"{self.design}/{self.workload.name}@{self.seed}"


def trace_artifact_path(root: Union[str, Path], key: str) -> Path:
    """Where a task's Chrome trace lands: sharded like the result cache
    (``<root>/<key[:2]>/<key>.trace.json``)."""
    return Path(root) / key[:2] / f"{key}.trace.json"


def tasks_for(
    designs: Sequence[str],
    specs: Sequence[Union[WorkloadSpec, str]],
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 600,
    seeds: Sequence[int] = (7,),
    trace_dir: Optional[str] = None,
) -> List[CampaignTask]:
    """The deterministic task list of a designs x workloads x seeds
    campaign (iteration order: design-major, then workload, then seed).

    Seeding is explicit and per-task: each task carries its own seed
    drawn from ``seeds``, so results never depend on pool scheduling.
    """
    resolved = [lookup_workload(s) if isinstance(s, str) else s for s in specs]
    config = config or SystemConfig.small()
    return [
        CampaignTask(design=design, workload=spec, config=config,
                     demands_per_core=demands_per_core, seed=seed,
                     trace_dir=trace_dir)
        for design in designs
        for spec in resolved
        for seed in seeds
    ]


def _execute_task(task: CampaignTask) -> RunResult:
    """Worker entry point (module-level so it pickles under any start
    method); runs one simulation exactly as the serial path would."""
    trace_out = None
    if task.trace_dir is not None and task.config.obs.trace:
        path = trace_artifact_path(task.trace_dir, task.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        trace_out = str(path)
    return run_experiment(task.design, task.workload, config=task.config,
                          demands_per_core=task.demands_per_core,
                          seed=task.seed, trace_out=trace_out)


#: Per-process tables installed by :func:`_pool_init`; task payloads
#: reference configs/specs by index so the (identical, often large)
#: objects are pickled once per worker instead of once per task.
_POOL_CONFIGS: List[SystemConfig] = []
_POOL_SPECS: List[WorkloadSpec] = []
_POOL_CHAOS: Optional[ChaosConfig] = None


def _pool_init(configs: List[SystemConfig], specs: List[WorkloadSpec],
               chaos: Optional[ChaosConfig] = None) -> None:
    """Worker initializer: install the campaign's shared config and
    workload-spec tables (and any chaos schedule) once per process."""
    global _POOL_CONFIGS, _POOL_SPECS, _POOL_CHAOS
    _POOL_CONFIGS = configs
    _POOL_SPECS = specs
    _POOL_CHAOS = chaos


def _execute_shard(runner: Callable[[CampaignTask], RunResult],
                   rows: List[tuple]) -> List[tuple]:
    """Worker entry for one chunk of ``(key, payload, attempt)`` rows.

    Rebuilds each task from the per-process tables and runs it; a
    per-task exception is caught and reported as a ``(key, None,
    repr)`` row so one bad task cannot poison the rest of its chunk.
    The chaos hook runs first so injected kills/hangs hit before any
    simulation work, exactly like a real crash would.
    """
    out: List[tuple] = []
    for key, payload, attempt in rows:
        design, config_idx, spec_idx, demands, seed, trace_dir = payload
        maybe_fault(_POOL_CHAOS, key, attempt)
        task = CampaignTask(
            design=design, workload=_POOL_SPECS[spec_idx],
            config=_POOL_CONFIGS[config_idx], demands_per_core=demands,
            seed=seed, trace_dir=trace_dir,
        )
        try:
            out.append((key, runner(task), None))
        except Exception as error:  # noqa: BLE001 - retried by the driver
            out.append((key, None, repr(error)))
    return out


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------
class ResultCache(ResultStore):
    """Content-addressed JSON store of :class:`RunResult`s.

    Layout: ``<root>/<key[:2]>/<key>.json`` — each file holds the task
    metadata (for human inspection) and the result fields. Writes are
    atomic (temp file + ``os.replace``), so a campaign killed mid-write
    never leaves a corrupt entry. An entry that nevertheless fails to
    decode (bit rot, torn copy, chaos injection) is **quarantined** to
    ``<key>.json.corrupt`` and counted in :attr:`corrupt` — visible in
    the campaign summary as ``cache_corrupt`` — never silently
    re-simulated; stale-schema entries are ordinary misses.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        """Where a Chrome trace for ``key`` lands when a campaign runs
        with tracing on (see :func:`trace_artifact_path`)."""
        return trace_artifact_path(self.root, key)

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # Undecodable bytes under a complete file: quarantine the
            # entry where an operator can inspect it and count it.
            self.corrupt += 1
            self.misses += 1
            quarantine_entry(path)
            return None
        if not isinstance(payload, dict):
            self.corrupt += 1
            self.misses += 1
            quarantine_entry(path)
            return None
        result = result_from_dict(payload.get("result", {}))
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: RunResult,
            task: Optional[CampaignTask] = None) -> Path:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "version": CACHE_VERSION,
            "result": dataclasses.asdict(result),
        }
        if task is not None:
            payload["task"] = {
                "design": task.design,
                "workload": task.workload.name,
                "demands_per_core": task.demands_per_core,
                "seed": task.seed,
            }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def result_from_dict(data: Dict[str, object]) -> Optional[RunResult]:
    """Rebuild a :class:`RunResult` from its JSON dict, or ``None`` if
    the entry predates the current schema (missing required fields)."""
    if not isinstance(data, dict):
        return None
    names = {spec.name for spec in dataclasses.fields(RunResult)}
    kwargs = {k: v for k, v in data.items() if k in names}
    try:
        return RunResult(**kwargs)
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# Campaign execution
# ---------------------------------------------------------------------------
@dataclass
class CampaignOutcome:
    """What a campaign did: results aligned with the input task list
    plus execution accounting and the structured error manifest."""

    results: List[Optional[RunResult]]
    by_key: Dict[str, RunResult]
    simulated: int = 0
    cached: int = 0
    #: tasks served from the campaign journal on resume
    replayed: int = 0
    retried: int = 0
    failures: Dict[str, str] = field(default_factory=dict)
    #: structured failure rows (kind, attempts, detail) behind
    #: ``failures`` — the error manifest of a degraded campaign
    manifest: List[TaskFailure] = field(default_factory=list)
    #: circuit-breaker state: ``{"design/workload": [failed seeds]}``
    quarantined: Dict[str, List[int]] = field(default_factory=dict)
    #: corrupt cache entries quarantined during this campaign
    cache_corrupt: int = 0
    #: result-store writes that failed (ENOSPC and friends); the
    #: in-memory results are unaffected
    store_errors: int = 0
    #: supervisor accounting (pools created/recycled, deadline kills,
    #: worker crashes, backoff totals); empty for serial runs
    stats: Dict[str, float] = field(default_factory=dict)
    #: campaign-level progress time series (see repro.obs.campaign)
    series: Dict[str, List[float]] = field(default_factory=dict)
    wall_s: float = 0.0
    #: worker count actually used (after the cpu_count clamp); 0 until
    #: run_campaign fills it in
    jobs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self, jobs: Optional[int] = None) -> str:
        jobs = self.jobs if jobs is None else jobs
        return (f"campaign: tasks={len(self.results)} "
                f"simulated={self.simulated} cached={self.cached} "
                f"replayed={self.replayed} retried={self.retried} "
                f"failures={len(self.failures)} "
                f"quarantined={len(self.quarantined)} "
                f"cache_corrupt={self.cache_corrupt} "
                f"store_errors={self.store_errors} "
                f"wall={self.wall_s:.1f}s jobs={jobs}")


def run_campaign(
    tasks: Sequence[CampaignTask],
    jobs: int = 1,
    cache: Optional[ResultStore] = None,
    reuse_cache: bool = True,
    retries: int = 2,
    progress: Optional[ProgressFn] = None,
    strict: bool = True,
    runner: Callable[[CampaignTask], RunResult] = _execute_task,
    clamp_jobs: bool = True,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[CampaignJournal] = None,
    chaos: Optional[ChaosConfig] = None,
    pool_factory=None,
    sleep: Callable[[float], None] = time.sleep,
) -> CampaignOutcome:
    """Execute a batch of simulations, in parallel, resumably.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` runs everything in-process (no pool,
        no pickling) and is bit-identical to calling
        :func:`~repro.experiments.runner.run_experiment` in a loop.
        Values above ``os.cpu_count()`` are clamped (see
        ``clamp_jobs``): oversubscribed workers only add pickling and
        context-switch cost, they cannot add parallelism.
    cache:
        Optional :class:`~repro.resilience.store.ResultStore` (usually
        a :class:`ResultCache`). Fresh results are always written to
        it; existing entries are only *read* when ``reuse_cache``. A
        failing write (disk full) is counted in
        ``outcome.store_errors`` and degrades gracefully.
    retries:
        Extra attempts per task after a worker crash or error
        (shorthand for ``policy.retries`` when no ``policy`` is
        given). Retries re-run the identical task (explicit seed), so
        a retried result is indistinguishable from a first-attempt one.
    progress:
        Optional callback, see :data:`ProgressFn`.
    strict:
        Raise :class:`~repro.errors.CampaignError` (carrying the error
        manifest) if any task exhausts its retries; otherwise its slot
        in ``results`` is ``None``, the error text lands in
        ``outcome.failures``, and the structured row in
        ``outcome.manifest``.
    runner:
        Task executor (module-level for process pools); injectable for
        tests.
    clamp_jobs:
        Clamp ``jobs`` to the host's CPU count (default). Pass
        ``False`` to force the pool path regardless — used by tests
        that must exercise the parallel machinery on small hosts.
    policy:
        Full :class:`~repro.resilience.policies.RetryPolicy` (deadline,
        backoff, circuit breaker). Defaults to
        ``RetryPolicy(retries=retries)`` — the historical behaviour.
    journal:
        Optional :class:`~repro.resilience.journal.CampaignJournal`.
        Completions are durably appended as they happen; when
        ``reuse_cache`` is on, tasks the cache cannot serve are
        recovered exactly from their journal records instead of
        re-simulating (``outcome.replayed``) — resume works even with
        the cache disabled or lost.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosConfig` injected
        into pool workers (kills/hangs). Store-level chaos is applied
        by wrapping ``cache`` in a
        :class:`~repro.resilience.chaos.ChaosStore` instead. Worker
        faults need ``jobs > 1``; the serial path ignores them.
    pool_factory / sleep:
        Injectable pool constructor and sleep (supervisor plumbing,
        for tests).
    """
    tasks = list(tasks)
    if clamp_jobs:
        jobs = max(1, min(jobs, os.cpu_count() or 1))
    policy = policy if policy is not None else RetryPolicy(retries=retries)
    breaker = CircuitBreaker(policy.breaker_threshold)
    series = CampaignSeries()
    start = time.monotonic()
    outcome = CampaignOutcome(results=[None] * len(tasks), by_key={},
                              jobs=jobs)
    corrupt_before = getattr(cache, "corrupt", 0) if cache is not None else 0

    # Dedupe on key: figure batches repeat baselines; simulate once.
    unique: Dict[str, CampaignTask] = {}
    for task in tasks:
        unique.setdefault(task.key, task)

    done = 0
    total = len(unique)
    sim_done = 0

    def eta() -> Optional[float]:
        if sim_done == 0:
            return None
        per_task = (time.monotonic() - start) / sim_done
        return per_task * (total - done)

    def report(label: str, source: str) -> None:
        outcome.cache_corrupt = (getattr(cache, "corrupt", 0)
                                 - corrupt_before) if cache is not None else 0
        series.sample(
            time.monotonic() - start, done=done, simulated=outcome.simulated,
            cached=outcome.cached, replayed=outcome.replayed,
            retried=outcome.retried, failed=len(outcome.failures),
            quarantined=sum(1 for f in outcome.manifest
                            if f.kind == "quarantined"),
            cache_corrupt=outcome.cache_corrupt,
            store_errors=outcome.store_errors,
        )
        if progress is not None:
            progress(done, total, label, source, eta())

    # Pass 0: serve from the cache.
    maybe_pending: Dict[str, CampaignTask] = {}
    for key, task in unique.items():
        hit = cache.get(key) if (cache is not None and reuse_cache) else None
        if hit is not None:
            outcome.by_key[key] = hit
            outcome.cached += 1
            done += 1
            report(task.label, "cached")
        else:
            maybe_pending[key] = task

    # Pass 1: replay the journal — tasks the cache could not serve
    # (cache disabled, lost, or quarantined-corrupt) are recovered
    # exactly from their embedded journal records, without simulating.
    pending: Dict[str, CampaignTask] = {}
    replayed = journal.replay() if (journal is not None and reuse_cache) \
        else None
    for key, task in maybe_pending.items():
        data = replayed.results.get(key) if replayed is not None else None
        result = result_from_dict(data) if data is not None else None
        if result is not None:
            outcome.by_key[key] = result
            outcome.replayed += 1
            done += 1
            report(task.label, "replayed")
        else:
            pending[key] = task
    if journal is not None:
        journal.record_start(total)

    # Pass 2: simulate what's left, under the retry/deadline/breaker
    # policy, journaling every terminal outcome.
    attempts: Dict[str, int] = {key: 0 for key in pending}

    def record(key: str, task: CampaignTask, result: RunResult) -> None:
        nonlocal done, sim_done
        outcome.by_key[key] = result
        outcome.simulated += 1
        done += 1
        sim_done += 1
        if cache is not None:
            try:
                cache.put(key, result, task)
            except OSError:
                # Graceful degradation: the in-memory result stands,
                # the failed write is counted and visible.
                outcome.store_errors += 1
        if journal is not None:
            journal.record_done(key, task.label, dataclasses.asdict(result))
        report(task.label, "simulated")

    def record_failure(key: str, task: CampaignTask, kind: str,
                       detail: str) -> bool:
        """Consume one attempt; return True if the task may retry."""
        nonlocal done
        attempts[key] += 1
        if kind != "quarantined":
            breaker.record_failure(task.design, task.workload.name, task.seed)
        if kind != "quarantined" and attempts[key] <= policy.retries:
            outcome.retried += 1
            report(task.label, "retried")
            return True
        outcome.failures[key] = f"{task.label}: {detail}"
        outcome.manifest.append(TaskFailure(
            key=key, label=task.label, kind=kind,
            attempts=attempts[key], detail=detail))
        done += 1
        if journal is not None:
            journal.record_failed(key, task.label, kind, detail,
                                  attempts[key])
        report(task.label, "failed" if kind != "quarantined"
               else "quarantined")
        return False

    def gate(key: str) -> Optional[str]:
        task = unique[key]
        if breaker.is_open(task.design, task.workload.name):
            seeds = breaker.quarantined().get(
                f"{task.design}/{task.workload.name}", [])
            return (f"circuit breaker open for {task.design}/"
                    f"{task.workload.name} (failed seeds: {seeds})")
        return None

    if jobs <= 1:
        for key, task in pending.items():
            while key not in outcome.by_key and key not in outcome.failures:
                blocked = gate(key)
                if blocked is not None:
                    record_failure(key, task, "quarantined", blocked)
                    break
                try:
                    record(key, task, runner(task))
                except Exception as error:  # noqa: BLE001 - retried/reported
                    if not record_failure(key, task, "error", repr(error)):
                        break
                    delay = policy.backoff_s(key, attempts[key])
                    if delay > 0:
                        sleep(delay)
    elif pending:
        # Index the shared config/spec objects once: payloads reference
        # them by table position, the tables ride the pool initializer,
        # so each worker unpickles them once regardless of task count.
        configs: List[SystemConfig] = []
        config_index: Dict[int, int] = {}
        specs: List[WorkloadSpec] = []
        spec_index: Dict[int, int] = {}
        payloads: Dict[str, tuple] = {}
        for key, task in pending.items():
            ci = config_index.get(id(task.config))
            if ci is None:
                ci = config_index[id(task.config)] = len(configs)
                configs.append(task.config)
            si = spec_index.get(id(task.workload))
            if si is None:
                si = spec_index[id(task.workload)] = len(specs)
                specs.append(task.workload)
            payloads[key] = (task.design, ci, si, task.demands_per_core,
                             task.seed, task.trace_dir)
        supervisor = TaskSupervisor(
            jobs=min(jobs, len(pending)),
            policy=policy,
            worker=functools.partial(_execute_shard, runner),
            initializer=_pool_init,
            initargs=(configs, specs, chaos),
            pool_factory=(pool_factory if pool_factory is not None
                          else ProcessPoolExecutor),
            sleep=sleep,
        )
        supervisor.run(
            payloads,
            on_success=lambda key, result: record(key, pending[key], result),
            on_failure=lambda key, kind, detail: record_failure(
                key, pending[key], kind, detail),
            gate=gate,
        )
        outcome.stats = supervisor.stats.as_dict()

    outcome.results = [
        outcome.by_key.get(task.key) for task in tasks
    ]
    outcome.quarantined = breaker.quarantined()
    outcome.cache_corrupt = (getattr(cache, "corrupt", 0)
                             - corrupt_before) if cache is not None else 0
    outcome.series = series.as_dict()
    outcome.wall_s = time.monotonic() - start
    if strict and outcome.failures:
        raise CampaignError(
            "campaign failed for "
            + "; ".join(sorted(outcome.failures.values())),
            manifest=outcome.manifest,
        )
    return outcome


def execute_cached(
    task: CampaignTask,
    cache: Optional[ResultStore] = None,
    reuse_cache: bool = True,
) -> RunResult:
    """Run (or fetch) a single task through the cache — the one-task
    fast path :class:`~repro.experiments.figures.ExperimentContext`
    uses for lazy, serial figure generation."""
    key = task.key
    if cache is not None and reuse_cache:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = _execute_task(task)
    if cache is not None:
        cache.put(key, result, task)
    return result
