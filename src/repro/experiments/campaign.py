"""Parallel campaign engine with a content-addressed on-disk cache.

The paper's evaluation is a 28-workload x 7-design sweep (§IV); every
figure, sweep, and ablation is ultimately a batch of independent
``(design, workload, seed)`` simulations. This module turns such a
batch into a *campaign*:

* each run is a :class:`CampaignTask`, identified by a stable
  content-addressed :func:`cache_key` over everything that determines
  its outcome (design, workload spec, full :class:`SystemConfig`,
  work quantum, seed);
* :func:`run_campaign` fans tasks out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers,
  clamped to the host's CPU count) with bounded retry on worker
  crashes and live progress/ETA callbacks — tasks are sharded into one
  batch per worker submitted once, so pickling and pool dispatch are
  amortised across the shard and the shared ``SystemConfig``/workload
  objects travel once per process via the pool initializer; results
  are bit-identical to the serial path because every simulation is
  seeded explicitly per task;
* a :class:`ResultCache` persists each :class:`RunResult` as JSON
  under its key, so re-running a figure or a sweep only simulates
  what changed (``tdram-repro campaign --resume`` completes with zero
  new simulations when nothing did).

The engine is deliberately dependency-free: tasks and results are
plain dataclasses, keys are SHA-256 hexdigests, and the cache is a
directory of small JSON files safe to rsync or commit to CI artifact
storage.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.experiments.runner import RunResult, run_experiment
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import workload as lookup_workload

#: Bump to invalidate every existing cache entry (simulator behaviour
#: changes that alter results without touching any key ingredient).
CACHE_VERSION = 1

#: ``progress(done, total, label, source, eta_s)`` — ``source`` is one
#: of "cached", "simulated", "retried", or "failed"; ``eta_s`` is the
#: estimated remaining wall-clock (None until one simulation finished).
ProgressFn = Callable[[int, int, str, str, Optional[float]], None]


# ---------------------------------------------------------------------------
# Content-addressed keys
# ---------------------------------------------------------------------------
def _canonical(value):
    """Reduce any config/spec value to a canonical JSON-able form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            spec.name: _canonical(getattr(value, spec.name))
            for spec in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(
    design: str,
    spec: Union[WorkloadSpec, str],
    config: SystemConfig,
    demands_per_core: int,
    seed: int,
) -> str:
    """Stable SHA-256 key over everything that determines a RunResult.

    Two invocations share a key iff they would produce bit-identical
    results: the key covers the design, the *full* workload spec (not
    just its name), every ``SystemConfig`` field (timings, energy
    model, RAS campaign, geometry), the work quantum, the seed, and
    :data:`CACHE_VERSION`.
    """
    if isinstance(spec, str):
        spec = lookup_workload(spec)
    payload = {
        "v": CACHE_VERSION,
        "design": design,
        "workload": _canonical(spec),
        "config": _canonical(config),
        "demands_per_core": demands_per_core,
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignTask:
    """One fully-specified simulation: ``(design, workload, seed)``
    under a given configuration and work quantum.

    ``trace_dir`` requests a per-run Chrome trace artifact written
    beside the cached result (``<trace_dir>/<key[:2]>/<key>.trace.json``)
    when ``config.obs.trace`` is on. It is a *destination*, not an
    outcome ingredient, so it is deliberately outside the cache key —
    the obs settings themselves (which do change the RunResult) are
    covered because the key canonicalises the full ``SystemConfig``.
    """

    design: str
    workload: WorkloadSpec
    config: SystemConfig
    demands_per_core: int = 600
    seed: int = 7
    trace_dir: Optional[str] = None

    @property
    def key(self) -> str:
        # Memoised: canonicalising the full SystemConfig and hashing it
        # is expensive, and a campaign touches every task's key several
        # times (dedupe, cache probe, result alignment). The fields are
        # frozen, so the key can never go stale.
        key = self.__dict__.get("_key")
        if key is None:
            key = cache_key(self.design, self.workload, self.config,
                            self.demands_per_core, self.seed)
            object.__setattr__(self, "_key", key)
        return key

    @property
    def label(self) -> str:
        return f"{self.design}/{self.workload.name}@{self.seed}"


def trace_artifact_path(root: Union[str, Path], key: str) -> Path:
    """Where a task's Chrome trace lands: sharded like the result cache
    (``<root>/<key[:2]>/<key>.trace.json``)."""
    return Path(root) / key[:2] / f"{key}.trace.json"


def tasks_for(
    designs: Sequence[str],
    specs: Sequence[Union[WorkloadSpec, str]],
    config: Optional[SystemConfig] = None,
    demands_per_core: int = 600,
    seeds: Sequence[int] = (7,),
    trace_dir: Optional[str] = None,
) -> List[CampaignTask]:
    """The deterministic task list of a designs x workloads x seeds
    campaign (iteration order: design-major, then workload, then seed).

    Seeding is explicit and per-task: each task carries its own seed
    drawn from ``seeds``, so results never depend on pool scheduling.
    """
    resolved = [lookup_workload(s) if isinstance(s, str) else s for s in specs]
    config = config or SystemConfig.small()
    return [
        CampaignTask(design=design, workload=spec, config=config,
                     demands_per_core=demands_per_core, seed=seed,
                     trace_dir=trace_dir)
        for design in designs
        for spec in resolved
        for seed in seeds
    ]


def _execute_task(task: CampaignTask) -> RunResult:
    """Worker entry point (module-level so it pickles under any start
    method); runs one simulation exactly as the serial path would."""
    trace_out = None
    if task.trace_dir is not None and task.config.obs.trace:
        path = trace_artifact_path(task.trace_dir, task.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        trace_out = str(path)
    return run_experiment(task.design, task.workload, config=task.config,
                          demands_per_core=task.demands_per_core,
                          seed=task.seed, trace_out=trace_out)


#: Per-process tables installed by :func:`_pool_init`; shard descriptors
#: reference configs/specs by index so the (identical, often large)
#: objects are pickled once per worker instead of once per task.
_POOL_CONFIGS: List[SystemConfig] = []
_POOL_SPECS: List[WorkloadSpec] = []


def _pool_init(configs: List[SystemConfig], specs: List[WorkloadSpec]) -> None:
    """Worker initializer: install the campaign's shared config and
    workload-spec tables once per process."""
    global _POOL_CONFIGS, _POOL_SPECS
    _POOL_CONFIGS = configs
    _POOL_SPECS = specs


def _execute_shard(runner: Callable[[CampaignTask], RunResult],
                   shard: List[tuple]) -> List[tuple]:
    """Worker entry for one shard of task descriptors.

    Rebuilds each task from the per-process tables and runs it; a
    per-task exception is caught and reported as a ``(key, None,
    repr)`` row so one bad task cannot poison the rest of its shard.
    """
    rows: List[tuple] = []
    for key, design, config_idx, spec_idx, demands, seed, trace_dir in shard:
        task = CampaignTask(
            design=design, workload=_POOL_SPECS[spec_idx],
            config=_POOL_CONFIGS[config_idx], demands_per_core=demands,
            seed=seed, trace_dir=trace_dir,
        )
        try:
            rows.append((key, runner(task), None))
        except Exception as error:  # noqa: BLE001 - retried by the driver
            rows.append((key, None, repr(error)))
    return rows


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store of :class:`RunResult`s.

    Layout: ``<root>/<key[:2]>/<key>.json`` — each file holds the task
    metadata (for human inspection) and the result fields. Writes are
    atomic (temp file + ``os.replace``), so a campaign killed mid-write
    never leaves a corrupt entry; corrupt or stale-schema entries are
    treated as misses and re-simulated.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        """Where a Chrome trace for ``key`` lands when a campaign runs
        with tracing on (see :func:`trace_artifact_path`)."""
        return trace_artifact_path(self.root, key)

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        result = result_from_dict(payload.get("result", {}))
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: RunResult,
            task: Optional[CampaignTask] = None) -> Path:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "version": CACHE_VERSION,
            "result": dataclasses.asdict(result),
        }
        if task is not None:
            payload["task"] = {
                "design": task.design,
                "workload": task.workload.name,
                "demands_per_core": task.demands_per_core,
                "seed": task.seed,
            }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def result_from_dict(data: Dict[str, object]) -> Optional[RunResult]:
    """Rebuild a :class:`RunResult` from its JSON dict, or ``None`` if
    the entry predates the current schema (missing required fields)."""
    if not isinstance(data, dict):
        return None
    names = {spec.name for spec in dataclasses.fields(RunResult)}
    kwargs = {k: v for k, v in data.items() if k in names}
    try:
        return RunResult(**kwargs)
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# Campaign execution
# ---------------------------------------------------------------------------
@dataclass
class CampaignOutcome:
    """What a campaign did: results aligned with the input task list
    plus execution accounting."""

    results: List[Optional[RunResult]]
    by_key: Dict[str, RunResult]
    simulated: int = 0
    cached: int = 0
    retried: int = 0
    failures: Dict[str, str] = field(default_factory=dict)
    wall_s: float = 0.0
    #: worker count actually used (after the cpu_count clamp); 0 until
    #: run_campaign fills it in
    jobs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self, jobs: Optional[int] = None) -> str:
        jobs = self.jobs if jobs is None else jobs
        return (f"campaign: tasks={len(self.results)} "
                f"simulated={self.simulated} cached={self.cached} "
                f"retried={self.retried} failures={len(self.failures)} "
                f"wall={self.wall_s:.1f}s jobs={jobs}")


def run_campaign(
    tasks: Sequence[CampaignTask],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    reuse_cache: bool = True,
    retries: int = 2,
    progress: Optional[ProgressFn] = None,
    strict: bool = True,
    runner: Callable[[CampaignTask], RunResult] = _execute_task,
    clamp_jobs: bool = True,
) -> CampaignOutcome:
    """Execute a batch of simulations, in parallel, resumably.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` runs everything in-process (no pool,
        no pickling) and is bit-identical to calling
        :func:`~repro.experiments.runner.run_experiment` in a loop.
        Values above ``os.cpu_count()`` are clamped (see
        ``clamp_jobs``): oversubscribed workers only add pickling and
        context-switch cost, they cannot add parallelism.
    cache:
        Optional :class:`ResultCache`. Fresh results are always written
        to it; existing entries are only *read* when ``reuse_cache``.
    retries:
        Extra attempts per task after a worker crash or error. Retries
        re-run the identical task (explicit seed), so a retried result
        is indistinguishable from a first-attempt one.
    progress:
        Optional callback, see :data:`ProgressFn`.
    strict:
        Raise :class:`SimulationError` if any task exhausts its
        retries; otherwise its slot in ``results`` is ``None`` and the
        error text lands in ``outcome.failures``.
    runner:
        Task executor (module-level for process pools); injectable for
        tests.
    clamp_jobs:
        Clamp ``jobs`` to the host's CPU count (default). Pass
        ``False`` to force the pool path regardless — used by tests
        that must exercise the parallel machinery on small hosts.
    """
    tasks = list(tasks)
    if clamp_jobs:
        jobs = max(1, min(jobs, os.cpu_count() or 1))
    start = time.monotonic()
    outcome = CampaignOutcome(results=[None] * len(tasks), by_key={},
                              jobs=jobs)

    # Dedupe on key: figure batches repeat baselines; simulate once.
    unique: Dict[str, CampaignTask] = {}
    for task in tasks:
        unique.setdefault(task.key, task)

    done = 0
    total = len(unique)
    sim_done = 0

    def eta() -> Optional[float]:
        if sim_done == 0:
            return None
        per_task = (time.monotonic() - start) / sim_done
        return per_task * (total - done)

    def report(label: str, source: str) -> None:
        if progress is not None:
            progress(done, total, label, source, eta())

    # Pass 1: serve from the cache.
    pending: Dict[str, CampaignTask] = {}
    for key, task in unique.items():
        hit = cache.get(key) if (cache is not None and reuse_cache) else None
        if hit is not None:
            outcome.by_key[key] = hit
            outcome.cached += 1
            done += 1
            report(task.label, "cached")
        else:
            pending[key] = task

    # Pass 2: simulate what's left, with bounded retry.
    attempts: Dict[str, int] = {key: 0 for key in pending}

    def record(key: str, task: CampaignTask, result: RunResult) -> None:
        nonlocal done, sim_done
        outcome.by_key[key] = result
        outcome.simulated += 1
        done += 1
        sim_done += 1
        if cache is not None:
            cache.put(key, result, task)
        report(task.label, "simulated")

    def record_failure(key: str, task: CampaignTask, detail: str) -> bool:
        """Consume one attempt; return True if the task may retry."""
        nonlocal done
        attempts[key] += 1
        if attempts[key] <= retries:
            outcome.retried += 1
            report(task.label, "retried")
            return True
        outcome.failures[key] = f"{task.label}: {detail}"
        done += 1
        report(task.label, "failed")
        return False

    if jobs <= 1:
        for key, task in pending.items():
            while key not in outcome.by_key and key not in outcome.failures:
                try:
                    record(key, task, runner(task))
                except Exception as error:  # noqa: BLE001 - retried/reported
                    if not record_failure(key, task, repr(error)):
                        break
    else:
        # Shard the round's tasks into one batch per worker, submitted
        # once: pool dispatch and argument pickling are paid per shard
        # (== per worker), not per task, and the shared config/spec
        # objects ride the pool initializer so each worker unpickles
        # them once. Round-robin sharding keeps the per-worker load
        # roughly balanced across design x workload matrices.
        remaining = dict(pending)
        while remaining:
            configs: List[SystemConfig] = []
            config_index: Dict[int, int] = {}
            specs: List[WorkloadSpec] = []
            spec_index: Dict[int, int] = {}
            descriptors = []
            for key, task in remaining.items():
                ci = config_index.get(id(task.config))
                if ci is None:
                    ci = config_index[id(task.config)] = len(configs)
                    configs.append(task.config)
                si = spec_index.get(id(task.workload))
                if si is None:
                    si = spec_index[id(task.workload)] = len(specs)
                    specs.append(task.workload)
                descriptors.append((key, task.design, ci, si,
                                    task.demands_per_core, task.seed,
                                    task.trace_dir))
            shards = [descriptors[i::jobs] for i in range(jobs)]
            shards = [shard for shard in shards if shard]
            # A fresh pool per round: a crashed worker breaks the whole
            # pool, poisoning every outstanding future in it.
            with ProcessPoolExecutor(max_workers=len(shards),
                                     initializer=_pool_init,
                                     initargs=(configs, specs)) as pool:
                futures = {pool.submit(_execute_shard, runner, shard): shard
                           for shard in shards}
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done,
                                              return_when=FIRST_COMPLETED)
                    for future in finished:
                        shard = futures[future]
                        try:
                            rows = future.result()
                        except Exception as error:  # noqa: BLE001
                            # The whole shard died (worker crash /
                            # BrokenProcessPool): every task in it
                            # consumes an attempt; survivors re-run in
                            # the next round's fresh pool.
                            for item in shard:
                                key = item[0]
                                task = remaining.get(key)
                                if task is None:
                                    continue
                                if not record_failure(key, task, repr(error)):
                                    remaining.pop(key, None)
                            continue
                        for key, result, err in rows:
                            task = remaining[key]
                            if err is not None:
                                if not record_failure(key, task, err):
                                    remaining.pop(key, None)
                                continue
                            record(key, task, result)
                            remaining.pop(key, None)

    outcome.results = [
        outcome.by_key.get(task.key) for task in tasks
    ]
    outcome.wall_s = time.monotonic() - start
    if strict and outcome.failures:
        raise SimulationError(
            "campaign failed for "
            + "; ".join(sorted(outcome.failures.values()))
        )
    return outcome


def execute_cached(
    task: CampaignTask,
    cache: Optional[ResultCache] = None,
    reuse_cache: bool = True,
) -> RunResult:
    """Run (or fetch) a single task through the cache — the one-task
    fast path :class:`~repro.experiments.figures.ExperimentContext`
    uses for lazy, serial figure generation."""
    key = task.key
    if cache is not None and reuse_cache:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = _execute_task(task)
    if cache is not None:
        cache.put(key, result, task)
    return result
