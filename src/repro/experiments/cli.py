"""Command-line interface: regenerate any table/figure from a terminal.

Installed as ``tdram-repro``::

    tdram-repro list
    tdram-repro fig9                 # representative workload subset
    tdram-repro fig9 --jobs 4        # same, simulations fanned out
    tdram-repro fig11 --full-suite   # all 28 workloads (slow)
    tdram-repro run tdram ft.D       # one simulation, all metrics
    tdram-repro campaign --jobs 4    # designs x workloads sweep, cached
    tdram-repro campaign --resume    # reuse cache + replay the journal
    tdram-repro campaign --backend pcm_like
                                     # same sweep over a PCM-like store
    tdram-repro campaign --step-mode batched
                                     # batched kernel stepping (faster,
                                     # bit-identical results)
    tdram-repro run tdram ft.D --sampled
                                     # SMARTS-style sampled estimate
                                     # with confidence intervals
    tdram-repro backends --jobs 4    # DDR5 vs PCM vs CXL speedup figure
    tdram-repro chaos --jobs 2       # prove bit-identical results under
                                     # injected crashes/corruption
    tdram-repro trace --workload synthetic --out trace.json
                                     # Perfetto-loadable lifecycle trace

Simulation-backed targets share a content-addressed on-disk result
cache (``--cache-dir``, default ``.tdram_cache``; ``--no-cache``
disables it), so re-running a figure or sweep only simulates what
changed. See ``docs/campaign.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.config.system import SystemConfig
from repro.experiments.campaign import ResultCache, run_campaign, tasks_for
from repro.sim.sampling import SamplingConfig
from repro.resilience import (
    CampaignJournal,
    ChaosConfig,
    ChaosStore,
    RetryPolicy,
    render_manifest,
)
from repro.experiments.figures import (
    EVALUATED_DESIGNS,
    FIGURE_DESIGNS,
    ExperimentContext,
    fig01_hit_miss_breakdown,
    fig02_queueing_baselines,
    fig03_wasted_movement,
    fig04_overheads,
    fig09_tag_check,
    fig10_queueing,
    fig11_speedup_vs_cl,
    fig12_speedup_vs_nocache,
    fig13_energy,
    frontier_design_zoo,
    table4_bloat,
)
from repro.experiments.runner import run_experiment
from repro.experiments.studies import (
    flush_buffer_sensitivity,
    predictor_study,
    prefetcher_study,
    probing_ablation,
    set_associativity_study,
    way_select_study,
)
from repro.experiments.tables import table1_comparison
from repro.workloads.suite import (
    any_workload,
    demand_stream,
    full_suite,
    representative_suite,
    workload,
)
from repro.workloads.trace import capture_trace, trace_stats


def _tdram_ablation_lazy(**kwargs):
    from repro.experiments.ablations import tdram_ablation

    return tdram_ablation(**kwargs)


def _backends_lazy(**kwargs):
    from repro.experiments.backends_figure import backends_comparison

    return backends_comparison(**kwargs)

_CONTEXT_FIGURES: Dict[str, Callable] = {
    "fig1": fig01_hit_miss_breakdown,
    "fig2": fig02_queueing_baselines,
    "fig3": fig03_wasted_movement,
    "fig9": fig09_tag_check,
    "fig10": fig10_queueing,
    "fig11": fig11_speedup_vs_cl,
    "fig12": fig12_speedup_vs_nocache,
    "fig13": fig13_energy,
    "table4": table4_bloat,
    "frontier": frontier_design_zoo,
}

#: One-line summary per registered design, shown by ``tdram-repro list``.
#: Lint rule SIM013 (dead-design guard) fails the build if this table
#: and ``repro.cache.DESIGNS`` ever disagree — every design a campaign
#: can run must be discoverable from the CLI, and vice versa.
_DESIGN_SUMMARIES: Dict[str, str] = {
    "cascade_lake": "tags in ECC bits, direct-mapped (paper baseline)",
    "alloy": "tag+data TAD in one 80 B burst",
    "bear": "Alloy + bandwidth-efficient fill/writeback probes",
    "ndc": "dedicated tag mats, same-bank tag+data",
    "tdram": "the paper's tag-enhanced DRAM (parallel tag+data, HM bus)",
    "ideal": "perfect tag knowledge, zero tag cost (upper bound)",
    "no_cache": "main memory only (no DRAM cache)",
    "gemini_hybrid": "hot lines direct-mapped, cold lines set-associative",
    "tictoc": "SRAM tag cache + dirty-region list deciding probe-vs-bypass",
}

_STANDALONE: Dict[str, Callable] = {
    "fig4": fig04_overheads,
    "table1": table1_comparison,
    "predictor": predictor_study,
    "prefetcher": prefetcher_study,
    "flush": flush_buffer_sensitivity,
    "setassoc": set_associativity_study,
    "ways": way_select_study,
    "ablation": probing_ablation,
    "tdram-ablation": _tdram_ablation_lazy,
    "backends": _backends_lazy,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdram-repro",
        description="Regenerate the TDRAM paper's tables and figures.",
    )
    parser.add_argument("target", help="figure/table name, 'list', or 'run'")
    parser.add_argument("args", nargs="*", help="for 'run': DESIGN WORKLOAD")
    parser.add_argument("--full-suite", action="store_true",
                        help="use all 28 workloads instead of the fast subset")
    parser.add_argument("--demands", type=int, default=600,
                        help="work quantum per core (default 600)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ras-mode", default="single",
                        choices=("random", "single", "double"),
                        help="fault campaign for 'ras' (default single)")
    parser.add_argument("--ras-rate", type=float, default=0.5,
                        help="per-tick injection probability (default 0.5)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation batches "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory (default "
                             "$TDRAM_CACHE_DIR or .tdram_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache entirely")
    parser.add_argument("--resume", action="store_true",
                        help="campaign: reuse cached results instead of "
                             "re-simulating every task")
    parser.add_argument("--designs", default=None,
                        help="campaign: comma-separated designs "
                             "(default: the five evaluated designs)")
    parser.add_argument("--workloads", default=None,
                        help="campaign: comma-separated workload names "
                             "(default: representative suite)")
    parser.add_argument("--retries", type=int, default=2,
                        help="campaign: extra attempts per crashed task "
                             "(default 2)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="campaign: per-task wall-clock budget in "
                             "seconds; hung workers are killed and the "
                             "task retried (default: no deadline)")
    parser.add_argument("--backoff", type=float, default=0.0,
                        help="campaign: base seconds of exponential "
                             "backoff between retries of one task "
                             "(default 0 = retry immediately)")
    parser.add_argument("--breaker", type=int, default=0,
                        help="campaign: quarantine a design/workload "
                             "combo after this many distinct-seed "
                             "failures (default 0 = disabled)")
    parser.add_argument("--journal", default=None,
                        help="campaign: journal file path (default "
                             "campaign.journal.jsonl inside the cache dir)")
    parser.add_argument("--no-journal", action="store_true",
                        help="campaign: disable the crash-recovery journal")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="chaos: seed of the fault-injection schedule")
    parser.add_argument("--chaos-kill", type=float, default=0.5,
                        help="chaos: per-task worker-kill probability "
                             "(default 0.5)")
    parser.add_argument("--chaos-hang", type=float, default=0.0,
                        help="chaos: per-task hang probability; needs "
                             "--deadline (default 0)")
    parser.add_argument("--chaos-corrupt", type=float, default=0.5,
                        help="chaos: probability a stored result is "
                             "corrupted after writing (default 0.5)")
    parser.add_argument("--chaos-enospc", type=float, default=0.5,
                        help="chaos: probability the first write of a "
                             "result fails like a full disk (default 0.5)")
    parser.add_argument("--out", default=None,
                        help="campaign: write all RunResults to this JSON "
                             "file; trace: output path (default trace.json)")
    parser.add_argument("--workload", default="synthetic",
                        help="trace: workload name — suite (e.g. ft.D) or "
                             "synthetic (default synthetic)")
    parser.add_argument("--design", default="tdram",
                        help="trace: cache design to trace (default tdram)")
    parser.add_argument("--epoch-us", type=float, default=5.0,
                        help="trace: epoch sampling period in simulated "
                             "microseconds, 0 disables (default 5)")
    parser.add_argument("--profile", action="store_true",
                        help="trace: also profile the event kernel")
    parser.add_argument("--trace", action="store_true",
                        help="campaign: record a Chrome trace per run "
                             "beside its cached result")
    parser.add_argument("--backend", default="ddr5",
                        help="campaign/run: backing-store backend model "
                             "(ddr5, pcm_like, cxl_like; default ddr5 — "
                             "see docs/backends.md)")
    parser.add_argument("--determinism", action="store_true",
                        help="selfcheck: also run one synthetic workload "
                             "twice with the same seed and require "
                             "bit-identical counters/epochs")
    parser.add_argument("--step-mode", default="event",
                        choices=("event", "batched"),
                        help="campaign/run: kernel stepping mode; batched "
                             "drains same-bucket event groups for "
                             "throughput, bit-identical to event (default "
                             "event — see docs/performance.md)")
    parser.add_argument("--sampled", action="store_true",
                        help="campaign/run: SMARTS-style sampled "
                             "simulation — detailed windows + functional "
                             "fast-forward; results carry per-metric "
                             "confidence intervals and are cached under "
                             "their own key, never served for exact "
                             "requests (see docs/performance.md)")
    parser.add_argument("--sample-detail", type=int, default=100,
                        help="sampled: demands per core simulated in "
                             "detail per window (default 100)")
    parser.add_argument("--sample-fastforward", type=int, default=400,
                        help="sampled: demands per core fast-forwarded "
                             "between windows (default 400)")
    parser.add_argument("--sample-confidence", type=float, default=0.95,
                        help="sampled: confidence level of the reported "
                             "intervals (0.90, 0.95, or 0.99; default "
                             "0.95)")
    return parser


def _speed_config(config: SystemConfig, args) -> SystemConfig:
    """Apply the --step-mode/--sampled speed knobs to a base config."""
    if args.step_mode != "event":
        config = config.with_(step_mode=args.step_mode)
    if args.sampled:
        config = config.with_(sampling=SamplingConfig(
            enabled=True,
            detail_demands=args.sample_detail,
            fastforward_demands=args.sample_fastforward,
            confidence=args.sample_confidence,
        ))
    return config


def _cache(args) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    root = (args.cache_dir or os.environ.get("TDRAM_CACHE_DIR")
            or ".tdram_cache")
    return ResultCache(root)


def _progress(done: int, total: int, label: str, source: str,
              eta_s: Optional[float]) -> None:
    eta = f"  eta {eta_s:.0f}s" if eta_s is not None else ""
    print(f"[{done}/{total}] {label} {source}{eta}", file=sys.stderr)


def _chaos(args) -> int:
    """The ``chaos`` target: run one small campaign twice — clean, then
    under a seeded fault schedule (worker kills, hangs, corrupt cache
    bytes, ENOSPC writes) — and prove the final results are
    bit-identical. Exits 0 only if they are."""
    designs = (args.designs.split(",") if args.designs
               else ["tdram", "no_cache"])
    if args.workloads:
        specs = [workload(name) for name in args.workloads.split(",")]
    else:
        specs = [workload("bfs.22")]
    jobs = max(2, args.jobs)
    tasks = tasks_for(designs, specs, config=SystemConfig.small(),
                      demands_per_core=args.demands, seeds=[args.seed])
    root = Path(args.cache_dir or os.environ.get("TDRAM_CACHE_DIR")
                or ".tdram_chaos")
    chaos = ChaosConfig(seed=args.chaos_seed, kill_prob=args.chaos_kill,
                        hang_prob=args.chaos_hang,
                        corrupt_prob=args.chaos_corrupt,
                        enospc_prob=args.chaos_enospc)
    deadline = args.deadline
    if chaos.hang_prob > 0 and deadline is None:
        deadline = 10.0
    policy = RetryPolicy(retries=max(args.retries, 2), deadline_s=deadline,
                         backoff_base_s=args.backoff, jitter_seed=args.seed,
                         breaker_threshold=args.breaker)
    print(f"# chaos: {len(tasks)} tasks jobs={jobs} "
          f"schedule-seed={args.chaos_seed} kill={chaos.kill_prob} "
          f"hang={chaos.hang_prob} corrupt={chaos.corrupt_prob} "
          f"enospc={chaos.enospc_prob}", file=sys.stderr)
    clean = run_campaign(tasks, jobs=jobs, cache=ResultCache(root / "clean"),
                         reuse_cache=False, strict=False, clamp_jobs=False,
                         progress=_progress)
    store = ChaosStore(ResultCache(root / "faulty"), chaos)
    journal = CampaignJournal(root / "faulty" / "campaign.journal.jsonl")
    faulty = run_campaign(tasks, jobs=jobs, cache=store, reuse_cache=False,
                          strict=False, clamp_jobs=False, policy=policy,
                          journal=journal, chaos=chaos, progress=_progress)
    # Read-back pass: corrupted entries are detected and quarantined
    # here, proving the store never serves scrambled bytes.
    recovered = sum(1 for task in tasks if store.get(task.key) is not None)
    identical = all(
        clean.by_key.get(task.key) is not None
        and faulty.by_key.get(task.key) is not None
        and dataclasses.asdict(clean.by_key[task.key])
        == dataclasses.asdict(faulty.by_key[task.key])
        for task in tasks)
    print("clean  " + clean.summary(), file=sys.stderr)
    print("chaos  " + faulty.summary(), file=sys.stderr)
    print(f"injected: store_corrupt={store.injected_corrupt} "
          f"enospc={store.injected_enospc}; survived: "
          f"worker_crashes={faulty.stats.get('worker_crashes', 0):.0f} "
          f"deadline_kills={faulty.stats.get('deadline_kills', 0):.0f} "
          f"store_errors={faulty.store_errors} "
          f"quarantined_entries={store.corrupt} "
          f"recovered_reads={recovered}/{len(tasks)}")
    print(f"bit-identical under chaos: {identical}")
    return 0 if identical and faulty.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint engine owns its own flags (--json, --select, ...),
        # so it gets the raw argv tail instead of this parser.
        from repro.analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    target = args.target.lower()
    if target == "list":
        names = sorted(list(_CONTEXT_FIGURES) + list(_STANDALONE)
                       + ["campaign", "chaos", "lint", "ras", "run",
                          "report", "selfcheck", "suite", "trace",
                          "trace-capture", "trace-stats"])
        print("available targets:", ", ".join(names))
        print("designs (for run/campaign/--designs):")
        for name in sorted(_DESIGN_SUMMARIES):
            print(f"  {name:<14} {_DESIGN_SUMMARIES[name]}")
        return 0
    if target == "selfcheck":
        from repro.validation import render_selfcheck, run_selfcheck

        results = run_selfcheck()
        if args.determinism:
            from repro.validation import run_determinism_check

            results = results + run_determinism_check(seed=args.seed)
        print(render_selfcheck(results))
        return 0 if all(r.passed for r in results) else 1
    if target == "suite":
        from repro.workloads.suite import suite_summary

        print(suite_summary().render())
        return 0
    if target == "report":
        if len(args.args) != 1:
            print("usage: tdram-repro report OUTPUT.md", file=sys.stderr)
            return 2
        from repro.experiments.report_gen import generate_report

        specs = full_suite() if args.full_suite else None
        ctx = ExperimentContext(specs=specs, demands_per_core=args.demands,
                                seed=args.seed, jobs=args.jobs,
                                cache=_cache(args))
        if args.jobs > 1:
            needed = sorted({design for designs in FIGURE_DESIGNS.values()
                             for design in designs})
            ctx.warm(needed, jobs=args.jobs, progress=_progress)
        titles = generate_report(args.args[0], ctx)
        print(f"wrote {len(titles)} sections to {args.args[0]}")
        return 0
    if target == "trace":
        from repro.obs import ObsConfig

        config = SystemConfig.small().with_(obs=ObsConfig(
            trace=True, epoch_us=args.epoch_us, profile=args.profile,
        ))
        out = args.out or "trace.json"
        result = run_experiment(args.design, any_workload(args.workload),
                                config=config, demands_per_core=args.demands,
                                seed=args.seed, trace_out=out)
        with open(out, "r", encoding="utf-8") as handle:
            events = len(json.load(handle)["traceEvents"])
        print(f"# {args.design}/{args.workload} seed={args.seed}")
        print(f"wrote {events} trace events to {out} "
              "(load at https://ui.perfetto.dev)")
        if result.epochs:
            print(f"epoch series: {len(result.epochs['t_us'])} rows x "
                  f"{len(result.epochs)} columns "
                  f"(every {args.epoch_us} us)")
        if result.profile:
            from repro.obs.profiler import render_profile

            print(render_profile(result.profile))
        return 0
    if target == "campaign":
        designs = (args.designs.split(",") if args.designs
                   else list(EVALUATED_DESIGNS))
        if args.workloads:
            specs = [workload(name) for name in args.workloads.split(",")]
        elif args.full_suite:
            specs = full_suite()
        else:
            specs = representative_suite()
        config = _speed_config(
            SystemConfig.small().with_(memory_backend=args.backend), args)
        trace_dir = None
        if args.trace:
            from repro.obs import ObsConfig

            config = config.with_(obs=ObsConfig(trace=True))
            cache = _cache(args)
            trace_dir = str(cache.root) if cache is not None else ".tdram_cache"
        tasks = tasks_for(designs, specs, config=config,
                          demands_per_core=args.demands, seeds=[args.seed],
                          trace_dir=trace_dir)
        cache = _cache(args)
        policy = RetryPolicy(retries=args.retries, deadline_s=args.deadline,
                             backoff_base_s=args.backoff,
                             jitter_seed=args.seed,
                             breaker_threshold=args.breaker)
        journal = None
        if not args.no_journal:
            if args.journal:
                journal = CampaignJournal(args.journal)
            elif cache is not None:
                journal = CampaignJournal(
                    Path(cache.root) / "campaign.journal.jsonl")
        outcome = run_campaign(
            tasks, jobs=args.jobs, cache=cache,
            reuse_cache=args.resume, policy=policy, journal=journal,
            progress=_progress, strict=False,
        )
        if args.out:
            payload = [
                {"design": task.design, "workload": task.workload.name,
                 "seed": task.seed, "key": task.key,
                 "result": dataclasses.asdict(result)
                 if result is not None else None}
                for task, result in zip(tasks, outcome.results)
            ]
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            print(f"wrote {len(payload)} results to {args.out}")
        for key, message in sorted(outcome.failures.items()):
            print(f"FAILED {message}", file=sys.stderr)
        if outcome.manifest:
            print(render_manifest(outcome.manifest), file=sys.stderr)
        print(outcome.summary())
        return 0 if outcome.ok else 1
    if target == "chaos":
        return _chaos(args)
    if target == "trace-capture":
        if len(args.args) != 3:
            print("usage: tdram-repro trace-capture WORKLOAD PATH COUNT",
                  file=sys.stderr)
            return 2
        name, path, count = args.args
        stream = demand_stream(workload(name), SystemConfig.small(), 0, 8,
                               seed=args.seed)
        written = capture_trace(path, stream, int(count),
                                header=f"workload: {name}  seed: {args.seed}")
        print(f"wrote {written} records to {path}")
        return 0
    if target == "trace-stats":
        if len(args.args) != 1:
            print("usage: tdram-repro trace-stats PATH", file=sys.stderr)
            return 2
        stats = trace_stats(args.args[0])
        print(f"records: {stats.records}  reads: {stats.reads}  "
              f"writes: {stats.writes}")
        print(f"footprint: {stats.footprint_bytes / 2**20:.1f} MiB  "
              f"mean gap: {stats.mean_gap_ns:.1f} ns")
        return 0
    if target == "ras":
        from repro.ras.config import RasConfig
        from repro.stats.report import ras_report

        if len(args.args) > 2:
            print("usage: tdram-repro ras [DESIGN] [WORKLOAD]",
                  file=sys.stderr)
            return 2
        design = args.args[0] if len(args.args) > 0 else "tdram"
        workload_name = args.args[1] if len(args.args) > 1 else "bfs.22"
        campaign = RasConfig.campaign(args.seed, mode=args.ras_mode,
                                      rate=args.ras_rate)
        config = SystemConfig.small().with_(cache_ways=4, ras=campaign)
        result = run_experiment(design, workload_name, config=config,
                                demands_per_core=args.demands, seed=args.seed)
        print(f"# {design}/{workload_name} campaign={args.ras_mode} "
              f"rate={args.ras_rate} seed={args.seed}")
        print(ras_report(result.ras))
        return 0
    if target == "run":
        if len(args.args) != 2:
            print("usage: tdram-repro run DESIGN WORKLOAD", file=sys.stderr)
            return 2
        design, workload_name = args.args
        config = _speed_config(
            SystemConfig.small().with_(memory_backend=args.backend), args)
        result = run_experiment(design, workload_name, config=config,
                                demands_per_core=args.demands, seed=args.seed)
        for key, value in sorted(vars(result).items()):
            print(f"{key}: {value}")
        return 0
    if target in _STANDALONE:
        kwargs = {}
        if target in ("tdram-ablation", "backends"):
            kwargs = {"jobs": args.jobs, "cache": _cache(args)}
            if args.jobs > 1:
                kwargs["progress"] = _progress
            if target == "backends":
                kwargs["demands_per_core"] = args.demands
        print(_STANDALONE[target](**kwargs).render())
        return 0
    if target in _CONTEXT_FIGURES:
        specs = full_suite() if args.full_suite else None
        ctx = ExperimentContext(specs=specs, demands_per_core=args.demands,
                                seed=args.seed, jobs=args.jobs,
                                cache=_cache(args))
        if args.jobs > 1 and target in FIGURE_DESIGNS:
            ctx.warm(FIGURE_DESIGNS[target], jobs=args.jobs,
                     progress=_progress)
        print(_CONTEXT_FIGURES[target](ctx).render())
        return 0
    print(f"unknown target {target!r}; try 'tdram-repro list'", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
