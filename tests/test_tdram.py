"""Behavioural tests for the TDRAM cache — Table II, the flush buffer
(§III-D2), and early tag probing (§III-E)."""

import pytest

from repro.cache.request import Op, Outcome
from repro.cache.tdram import TdramCache
from repro.dram.device import HM_PACKET_TIME
from repro.sim.kernel import ns


class TestTable2ReadOperations:
    def test_read_hit_streams_data_and_nothing_else(self, make_system):
        system = make_system(TdramCache)
        system.cache.tags.install(5, dirty=False)
        system.read(5)
        system.run()
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("hit_data") == 64
        assert system.main_memory.reads_issued == 0
        assert system.cache.metrics.outcomes["read_hit"] == 1

    def test_read_hit_dirty_behaves_like_hit(self, make_system):
        system = make_system(TdramCache)
        system.cache.tags.install(5, dirty=True)
        system.read(5)
        system.run()
        assert system.cache.metrics.outcomes["read_hit"] == 1
        assert system.main_memory.writes_issued == 0

    def test_read_miss_clean_moves_no_cache_data(self, make_system):
        """The conditional column operation: no DQ transfer on miss-clean."""
        system = make_system(TdramCache)
        system.read(5)
        system.run()
        ledger = system.cache.metrics.ledger.by_category()
        assert "hit_data" not in ledger
        assert "tag_check_discard" not in ledger  # unlike CL/Alloy/BEAR
        assert ledger.get("mm_fetch") == 64
        assert ledger.get("fill") == 64

    def test_read_miss_clean_tag_known_before_data_slot(self, make_system):
        system = make_system(TdramCache)
        request = system.read(5)
        system.run()
        # HM result at tRCD_TAG + tHM + packet = 15.75 ns (unloaded).
        assert request.tag_result_time == ns(15) + HM_PACKET_TIME

    def test_read_miss_dirty_streams_victim_and_writes_back(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.read(5)
        system.run()
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("victim_readout") == 64
        assert ledger.get("mm_writeback") == 64
        assert system.cache.metrics.outcomes["read_miss_dirty"] == 1
        assert not system.cache.tags.contains(victim)

    def test_miss_fetch_starts_at_hm_not_at_data(self, make_system):
        """TDRAM's miss-latency win: the mm read launches at HM time."""
        tdram = make_system(TdramCache)
        tdram.read(5)
        tdram.run()
        from repro.cache.cascade_lake import CascadeLakeCache
        cl = make_system(CascadeLakeCache)
        cl.read(5)
        cl.run()
        # Unloaded gap: CL waits tRCD+tCL+tBURST (32 ns) for tag data,
        # TDRAM only tRCD_TAG+tHM (~15.75 ns).
        assert cl.completed[0][1] - tdram.completed[0][1] >= ns(14)


class TestTable2WriteOperations:
    def test_write_is_a_single_actwr(self, make_system):
        system = make_system(TdramCache)
        system.write(5)
        system.run()
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("demand_write") == 64
        assert "tag_check_discard" not in ledger
        assert system.cache.tags.is_dirty(5)
        assert system.cache.metrics.outcomes["write_miss_clean"] == 1

    def test_write_hit_updates_in_place(self, make_system):
        system = make_system(TdramCache)
        system.cache.tags.install(5, dirty=False)
        system.write(5)
        system.run()
        assert system.cache.metrics.outcomes["write_hit"] == 1
        assert system.main_memory.writes_issued == 0

    def test_write_miss_dirty_victim_goes_to_flush_buffer(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run(100)  # before any unload opportunity
        assert system.cache.metrics.events["victim_to_flush_buffer"] == 1
        # No DQ read of the victim: only the write data moved.
        ledger = system.cache.metrics.ledger.by_category()
        assert "victim_readout" not in ledger

    def test_flush_buffer_entry_eventually_written_back(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run(20000)  # long enough for a refresh-window unload
        assert system.main_memory.writes_issued == 1
        assert len(system.cache.flush) == 0


class TestFlushBufferCoherence:
    def test_read_to_buffered_victim_served_from_buffer(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run(50)
        assert system.cache.flush.contains(victim)
        system.read(victim)
        system.run(100)
        assert system.cache.metrics.events["flush_buffer_read_hit"] == 1
        assert len(system.completed) == 1
        # The entry stays buffered: main memory still lacks the data.
        assert system.cache.flush.contains(victim)

    def test_write_to_buffered_victim_supersedes_entry(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run(50)
        assert system.cache.flush.contains(victim)
        system.write(victim)
        system.run(50)
        assert not system.cache.flush.contains(victim)

    def test_read_miss_clean_slot_unloads_an_entry(self, make_system):
        system = make_system(TdramCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run(100)
        # A read miss (to an empty frame) frees its DQ slot for an unload.
        system.read(21)
        system.run(200)
        assert system.cache.flush.events["unload_read_miss_clean"] == 1
        assert not system.cache.flush.contains(victim)

    def test_forced_drain_when_buffer_fills(self, make_system):
        system = make_system(TdramCache, flush_buffer_entries=2,
                             enable_probing=False)
        sets = system.cache.tags.num_sets
        for i in range(4):
            block = 5 + i * 8  # distinct frames on nearby banks
            system.cache.tags.install(block + sets, dirty=True)
            system.write(block)
        system.run(2000)
        assert system.cache.metrics.events.as_dict().get(
            "flush_forced_drain", 0) >= 1
        assert system.cache.flush.events["unload_forced"] >= 1


class TestEarlyTagProbing:
    def _queued_reads(self, system, count):
        # Same channel, same bank, different rows: genuine bank
        # conflicts that keep reads waiting in the queue.
        stride = (system.config.cache_channels
                  * system.config.cache_banks_per_channel)
        for i in range(count):
            system.read(i * stride)

    def test_probes_fire_when_reads_queue_up(self, make_system):
        system = make_system(TdramCache)
        self._queued_reads(system, 12)
        system.run()
        assert system.cache.probe_engine.probes > 0

    def test_probed_miss_clean_leaves_queue_and_fetches_early(self, make_system):
        system = make_system(TdramCache)
        self._queued_reads(system, 12)
        system.run()
        assert system.cache.metrics.events["probe_miss_clean"] > 0
        assert len(system.completed) == 12

    def test_probing_disabled_issues_no_probes(self, make_system):
        system = make_system(TdramCache, enable_probing=False)
        self._queued_reads(system, 12)
        system.run()
        assert system.cache.probe_engine.probes == 0

    def test_probing_reduces_tag_check_latency(self, make_system):
        with_probe = make_system(TdramCache)
        self._queued_reads(with_probe, 16)
        with_probe.run()
        without = make_system(TdramCache, enable_probing=False)
        self._queued_reads(without, 16)
        without.run()
        assert with_probe.cache.metrics.tag_check.mean_ns < \
            without.cache.metrics.tag_check.mean_ns

    def test_probed_hit_still_streams_data_in_main_slot(self, make_system):
        system = make_system(TdramCache)
        for i in range(12):
            block = i * system.config.cache_channels
            system.cache.tags.install(block, dirty=False)
            system.read(block)
        system.run()
        assert len(system.completed) == 12
        assert system.cache.metrics.outcomes["read_hit"] == 12
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("hit_data") == 12 * 64

    def test_probe_conflicts_are_bounded_even_single_bank(self, make_system):
        """Worst case — every read hammers one bank — still bounded.

        (The paper's <1 % claim holds for real workloads that spread
        across banks; the integration suite checks that separately.)
        """
        system = make_system(TdramCache)
        self._queued_reads(system, 32)
        system.run()
        engine = system.cache.probe_engine
        assert engine.bank_conflicts <= engine.probes


class TestFillPath:
    def test_fill_is_an_actwr(self, make_system):
        system = make_system(TdramCache)
        system.read(5)
        system.run()
        assert system.cache.metrics.ledger.by_category().get("fill") == 64
        assert system.cache.tags.contains(5)

    def test_fill_evicting_dirty_line_uses_flush_buffer(self, make_system):
        system = make_system(TdramCache)
        system.read(5)              # miss -> fetch in flight
        system.run(40)
        conflicting = 5 + system.cache.tags.num_sets
        system.write(conflicting)   # installs dirty into the same frame
        system.run(5000)
        # The fill displaced the dirty write via the flush buffer, never
        # over the DQ bus as a read.
        assert system.cache.metrics.events["victim_to_flush_buffer"] >= 1
