"""Scheduler corner cases and randomised protocol stress tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import DESIGNS
from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.controller import CacheOp, OpKind
from repro.cache.ideal import IdealCache
from repro.cache.ndc import NdcCache
from repro.cache.tdram import TdramCache
from repro.config.system import MIB, SystemConfig
from repro.dram.monitor import ProtocolChecker
from repro.errors import CapacityError


class TestChannelSchedulerMechanics:
    def test_write_buffer_capacity_enforced(self, make_system):
        system = make_system(IdealCache)
        scheduler = system.cache.schedulers[0]
        scheduler.write_capacity = 2
        scheduler.push_write(CacheOp(OpKind.DATA_WRITE, 0, 0, 0))
        # fill without letting the sim drain
        scheduler.write_q.append(CacheOp(OpKind.DATA_WRITE, 8, 1, 0))
        scheduler.write_q.append(CacheOp(OpKind.DATA_WRITE, 16, 2, 0))
        with pytest.raises(CapacityError):
            scheduler.push_write(CacheOp(OpKind.DATA_WRITE, 24, 3, 0))
        # forced pushes (fills) bypass the bound instead of deadlocking
        scheduler.push_write(CacheOp(OpKind.DATA_WRITE, 24, 3, 0, is_fill=True),
                             forced=True)

    def test_write_drain_hysteresis(self, make_system):
        system = make_system(IdealCache)
        scheduler = system.cache.schedulers[0]
        scheduler.high_watermark = 4
        scheduler.low_watermark = 1
        for i in range(4):
            scheduler.write_q.append(CacheOp(OpKind.DATA_WRITE, i * 8, i, 0))
        scheduler._update_drain_mode()
        assert scheduler.draining
        scheduler.write_q[:] = scheduler.write_q[:1]
        scheduler._update_drain_mode()
        assert not scheduler.draining

    def test_fr_fcfs_prefers_ready_bank(self, make_system):
        system = make_system(IdealCache)
        scheduler = system.cache.schedulers[0]
        channel = system.cache.channels[0]
        channel.banks[0].block_until(1_000_000)
        blocked = CacheOp(OpKind.DATA_WRITE, 0, 0, 0)
        ready = CacheOp(OpKind.DATA_WRITE, 8, 1, 0)
        selected = scheduler._select([blocked, ready], at=0)
        assert selected is ready

    def test_fr_fcfs_falls_back_to_oldest(self, make_system):
        system = make_system(IdealCache)
        scheduler = system.cache.schedulers[0]
        channel = system.cache.channels[0]
        channel.banks[0].block_until(1_000_000)
        channel.banks[1].block_until(1_000_000)
        first = CacheOp(OpKind.DATA_WRITE, 0, 0, 0)
        second = CacheOp(OpKind.DATA_WRITE, 8, 1, 0)
        assert scheduler._select([first, second], at=0) is first

    def test_mshr_bound_gates_read_acceptance(self, make_system):
        from repro.cache.request import Op

        system = make_system(TdramCache)
        system.cache.mshr_limit = 2
        system.cache._mshrs = {1: [], 2: []}
        assert not system.cache.can_accept(Op.READ, 0)
        system.cache._mshrs.clear()
        assert system.cache.can_accept(Op.READ, 0)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    design_name=st.sampled_from(["cascade_lake", "ndc", "tdram", "ideal"]),
)
def test_property_random_traffic_is_protocol_clean(seed, design_name):
    """Random demand sequences never violate DRAM protocol rules.

    A ProtocolChecker is attached to every cache channel; any illegal
    command stream (overlapping CA grants, tRC violations, inverted
    data windows) raises at the offending commit.
    """
    import numpy as np

    from tests.conftest import System

    config = SystemConfig(cache_capacity_bytes=1 * MIB,
                          mm_capacity_bytes=16 * MIB, cores=2)
    system = System(DESIGNS[design_name], config)
    timing = config.cache_timing
    for channel in system.cache.channels:
        channel.observers.append(
            ProtocolChecker(t_rc=timing.tRC, t_cmd=timing.tCMD))
    rng = np.random.default_rng(seed)
    for _ in range(60):
        block = int(rng.integers(0, 2048))
        if rng.random() < 0.35:
            system.write(block)
        else:
            system.read(block)
        system.run(float(rng.integers(5, 300)))
    system.run(100_000)
    # All reads eventually completed despite the random interleaving.
    reads = system.cache.metrics.outcomes["reads"]
    assert len(system.completed) == reads
