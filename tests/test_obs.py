"""Tests for the observability layer (repro.obs).

Covers the Chrome trace-event export (schema validity, span
nesting/containment and lane-exclusivity invariants), the epoch
series reconciling exactly with the run's final aggregates, the
zero-perturbation guarantee (observability on does not change any
simulated quantity), the kernel profiler, and the CLI/campaign
plumbing that writes trace artifacts.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.experiments.campaign import (
    run_campaign,
    tasks_for,
    trace_artifact_path,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import run_experiment
from repro.obs import ObsConfig
from repro.obs.epochs import COLUMNS, DELTA_COLUMNS, LEVEL_COLUMNS
from repro.obs.profiler import KernelProfiler, handler_name, render_profile
from repro.obs.trace import PID_REQUESTS, CHILD_SPANS
from repro.workloads.suite import any_workload

DEMANDS = 150
SEED = 11


def _small(obs: ObsConfig) -> SystemConfig:
    return SystemConfig.small().with_(obs=obs)


def _run(design="tdram", workload="synthetic", obs=None, trace_out=None,
         demands=DEMANDS):
    config = _small(obs) if obs is not None else SystemConfig.small()
    return run_experiment(design, any_workload(workload), config=config,
                          demands_per_core=demands, seed=SEED,
                          trace_out=trace_out)


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One traced+epoch+profiled run shared by the assertion tests."""
    path = tmp_path_factory.mktemp("obs") / "trace.json"
    obs = ObsConfig(trace=True, epoch_us=2.0, profile=True)
    result = _run(obs=obs, trace_out=str(path))
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return result, payload


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------
def test_obs_config_defaults_off():
    config = ObsConfig()
    assert not config.any_enabled
    assert SystemConfig.small().obs == config


def test_obs_config_validation():
    with pytest.raises(ConfigError):
        ObsConfig(epoch_us=-1.0)
    with pytest.raises(ConfigError):
        ObsConfig(trace_limit=0)


def test_disabled_obs_attaches_nothing():
    from repro.cache import DESIGNS
    from repro.memory.main_memory import MainMemory
    from repro.sim.kernel import Simulator

    sim = Simulator()
    config = SystemConfig.small()
    mm = MainMemory(sim, config.mm_timing, config.mm_geometry())
    sink = DESIGNS["tdram"](sim, config, mm)
    assert sink.obs is None
    assert sim.profiler is None
    assert all(not ch.observers for ch in sink.channels)


# ---------------------------------------------------------------------------
# Chrome trace schema
# ---------------------------------------------------------------------------
def test_trace_is_valid_chrome_json(traced):
    _result, payload = traced
    assert isinstance(payload["traceEvents"], list)
    assert payload["traceEvents"], "trace must not be empty"
    for event in payload["traceEvents"]:
        assert event["ph"] in ("X", "M", "C")
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], float)
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)
        elif event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
    other = payload["otherData"]
    assert other["design"] == "tdram"
    assert other["requests"] > 0


def test_trace_metadata_names_every_track(traced):
    _result, payload = traced
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    processes = {e["pid"] for e in meta if e["name"] == "process_name"}
    pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert pids <= processes, "every span's pid must be named"


def test_trace_spans_sorted_by_timestamp(traced):
    _result, payload = traced
    stamps = [e["ts"] for e in payload["traceEvents"] if e["ph"] != "M"]
    assert stamps == sorted(stamps)


# ---------------------------------------------------------------------------
# Span nesting / lane invariants
# ---------------------------------------------------------------------------
def _request_lanes(payload):
    """Spans on the request process, grouped per lane (tid)."""
    lanes = {}
    for event in payload["traceEvents"]:
        if event["ph"] == "X" and event["pid"] == PID_REQUESTS:
            lanes.setdefault(event["tid"], []).append(event)
    return lanes


def test_request_lanes_never_overlap(traced):
    """Parent request spans within one lane must be disjoint."""
    _result, payload = traced
    for lane in _request_lanes(payload).values():
        parents = [e for e in lane if e["name"] not in CHILD_SPANS]
        parents.sort(key=lambda e: e["ts"])
        for before, after in zip(parents, parents[1:]):
            assert before["ts"] + before["dur"] <= after["ts"] + 1e-9


def test_child_spans_contained_in_parent(traced):
    """Each child span lies inside its lane's enclosing request span."""
    _result, payload = traced
    seen_children = set()
    for lane in _request_lanes(payload).values():
        lane.sort(key=lambda e: (e["ts"], -e["dur"]))
        parent = None
        for event in lane:
            if event["name"] not in CHILD_SPANS:
                parent = event
                continue
            assert parent is not None
            assert event["ts"] >= parent["ts"] - 1e-9
            assert (event["ts"] + event["dur"]
                    <= parent["ts"] + parent["dur"] + 1e-9)
            seen_children.add(event["name"])
    # The synthetic mix produces hits and misses, so both the queue
    # child and the miss path's mm_fetch child must appear.
    assert "queue" in seen_children
    assert "mm_fetch" in seen_children


def test_parent_spans_carry_outcome_args(traced):
    _result, payload = traced
    outcomes = set()
    for lane in _request_lanes(payload).values():
        for event in lane:
            if event["name"] in CHILD_SPANS:
                continue
            args = event["args"]
            assert args["block"].startswith("0x")
            outcomes.add(args["outcome"])
    assert len(outcomes) > 1, "expected a mix of hit/miss outcomes"


def test_trace_limit_bounds_memory():
    obs = ObsConfig(trace=True, trace_limit=16)
    result = _run(obs=obs)
    assert result.demands > 16  # limit really was exceeded


# ---------------------------------------------------------------------------
# Epoch series reconciliation
# ---------------------------------------------------------------------------
def test_epoch_series_schema(traced):
    result, _payload = traced
    assert set(result.epochs) == set(COLUMNS)
    rows = len(result.epochs["t_us"])
    assert rows >= 1
    for name in DELTA_COLUMNS + LEVEL_COLUMNS:
        assert len(result.epochs[name]) == rows


def test_epoch_totals_reconcile_with_final_counters(traced):
    """Delta-column sums equal the run's final aggregate metrics."""
    result, _payload = traced
    epochs = result.epochs
    assert sum(epochs["demands"]) == result.demands
    misses, demands = sum(epochs["misses"]), sum(epochs["demands"])
    assert misses / demands == pytest.approx(result.miss_ratio)
    assert sum(epochs["useful_bytes"]) == result.useful_bytes
    assert sum(epochs["total_bytes"]) == result.total_bytes
    # RunResult.writebacks counts the whole run including warm-up; the
    # epoch series covers only the measured region, so it bounds it.
    assert 0 < sum(epochs["writebacks"]) <= result.writebacks


def test_epoch_timestamps_monotonic(traced):
    result, _payload = traced
    stamps = result.epochs["t_us"]
    assert stamps == sorted(stamps)


def test_epochs_off_by_default():
    result = _run()
    assert result.epochs == {}
    assert result.profile == {}


# ---------------------------------------------------------------------------
# Zero perturbation
# ---------------------------------------------------------------------------
def _timing_fields(result):
    skip = {"epochs", "profile"}
    return {name: value for name, value in vars(result).items()
            if name not in skip}


def test_tracing_does_not_perturb_results(tmp_path):
    """Tracing is pure observation: every simulated quantity —
    including the kernel event count — is identical with it on."""
    baseline = _run()
    observed = _run(obs=ObsConfig(trace=True),
                    trace_out=str(tmp_path / "t.json"))
    assert _timing_fields(baseline) == _timing_fields(observed)


def test_epochs_add_only_tick_events(tmp_path):
    """Epoch sampling schedules its tick callbacks (extra kernel
    events) but never changes any simulated metric."""
    baseline = _run()
    observed = _run(obs=ObsConfig(epoch_us=2.0))
    base, obs = _timing_fields(baseline), _timing_fields(observed)
    ticks = obs.pop("sim_events") - base.pop("sim_events")
    assert 0 < ticks <= len(observed.epochs["t_us"])
    assert base == obs


def test_profiling_adds_zero_kernel_events():
    """The profiler flag must not schedule anything: same dispatch
    count, same timing results, wall-time data on the side."""
    baseline = _run()
    profiled = _run(obs=ObsConfig(profile=True))
    assert profiled.sim_events == baseline.sim_events
    assert _timing_fields(profiled) == _timing_fields(baseline)
    assert profiled.profile["events"] >= profiled.sim_events


# ---------------------------------------------------------------------------
# Kernel profiler unit behaviour
# ---------------------------------------------------------------------------
def test_kernel_profiler_accumulates():
    profiler = KernelProfiler()
    profiler.record(test_kernel_profiler_accumulates, 1000)
    profiler.record(test_kernel_profiler_accumulates, 500)
    profiler.record(print, 200)
    digest = profiler.summary()
    assert digest["events"] == 3
    assert profiler.wall_ns == 1700
    top = digest["handlers"][0]
    assert top["handler"] == "test_kernel_profiler_accumulates"
    assert top["count"] == 2
    assert "events/s" in render_profile(digest)


def test_handler_name_unwraps():
    import functools

    assert handler_name(print) == "print"
    partial = functools.partial(max, 1)
    assert handler_name(partial) == "max"
    assert "lambda" in handler_name(lambda: None)


def test_profiler_attaches_to_kernel():
    from repro.sim.kernel import Simulator, ns

    sim = Simulator()
    sim.profiler = KernelProfiler()
    sim.schedule(ns(1), lambda: None)
    sim.schedule(ns(2), lambda: None)
    sim.run()
    assert sim.profiler.events == 2
    assert sim.profiler.wall_ns > 0


# ---------------------------------------------------------------------------
# CLI + campaign plumbing
# ---------------------------------------------------------------------------
def test_cli_trace_target(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = cli_main(["trace", "--workload", "synthetic", "--out", str(out),
                     "--demands", "60", "--epoch-us", "1", "--profile"])
    assert code == 0
    text = capsys.readouterr().out
    assert "trace events" in text
    assert "epoch series" in text
    assert "events/s" in text
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["traceEvents"]


def test_campaign_writes_trace_artifacts(tmp_path):
    config = SystemConfig.small().with_(obs=ObsConfig(trace=True))
    tasks = tasks_for(["tdram"], [any_workload("synthetic")], config=config,
                      demands_per_core=60, seeds=[3],
                      trace_dir=str(tmp_path))
    outcome = run_campaign(tasks, jobs=1, cache=None)
    assert outcome.ok
    artifact = trace_artifact_path(tmp_path, tasks[0].key)
    assert artifact.exists()
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["otherData"]["design"] == "tdram"


def test_obs_config_participates_in_cache_key():
    base = tasks_for(["tdram"], [any_workload("synthetic")],
                     config=SystemConfig.small())[0]
    traced = dataclasses.replace(
        base, config=SystemConfig.small().with_(obs=ObsConfig(trace=True)))
    assert base.key != traced.key
    # ...but the trace destination alone is not an outcome ingredient.
    moved = dataclasses.replace(base, trace_dir="/elsewhere")
    assert base.key == moved.key
