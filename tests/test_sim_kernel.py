"""Unit tests for the event-driven simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.kernel import PS_PER_NS, Simulator, ns, to_ns


class TestTimeConversion:
    def test_ns_converts_to_picoseconds(self):
        assert ns(1) == 1000
        assert ns(7.5) == 7500
        assert ns(0.5) == 500

    def test_to_ns_inverts_ns(self):
        assert to_ns(ns(12.5)) == 12.5

    def test_ps_per_ns_constant(self):
        assert PS_PER_NS == 1000

    @given(st.floats(min_value=0, max_value=1e6))
    def test_roundtrip_within_half_picosecond(self, value):
        assert abs(to_ns(ns(value)) - value) <= 0.0005


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(30), lambda: fired.append("c"))
        sim.schedule(ns(10), lambda: fired.append("a"))
        sim.schedule(ns(20), lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(ns(5), lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(ns(42), lambda: seen.append(sim.now))
        sim.run()
        assert seen == [ns(42)]
        assert sim.now == ns(42)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []
        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(ns(5), lambda: fired.append(("inner", sim.now)))
        sim.schedule(ns(10), outer)
        sim.run()
        assert fired == [("outer", ns(10)), ("inner", ns(15))]

    def test_at_schedules_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.at(ns(100), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [ns(100)]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.schedule(ns(10), lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(ns(5), lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)


class TestRunControls:
    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(10), lambda: fired.append("early"))
        sim.schedule(ns(100), lambda: fired.append("late"))
        sim.run(until=ns(50))
        assert fired == ["early"]
        assert sim.pending() == 1
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_fast_forwards_empty_queue(self):
        sim = Simulator()
        sim.run(until=ns(500))
        assert sim.now == ns(500)

    def test_run_until_advances_clock_past_pending_event(self):
        """Chunked regression: a queued future event must not hold the
        clock below the bound (it used to, skewing stall accounting)."""
        sim = Simulator()
        fired = []
        sim.schedule(ns(1000), lambda: fired.append(sim.now))
        sim.run(until=ns(100))
        assert fired == []
        assert sim.pending() == 1
        assert sim.now == ns(100)

    def test_chunked_runs_reach_a_far_event_at_its_exact_time(self):
        """Watchdog-style chunking makes steady progress and dispatches
        the far event exactly when its time falls inside a chunk."""
        sim = Simulator()
        fired = []
        sim.schedule(ns(1000), lambda: fired.append(sim.now))
        chunk = ns(100)
        for _ in range(10):
            sim.run(until=sim.now + chunk)
        assert fired == [ns(1000)]
        assert sim.now == ns(1000)

    def test_run_until_advances_after_draining_early_events(self):
        """Drained regression: events before the bound fire, then the
        clock still lands on the bound itself."""
        sim = Simulator()
        fired = []
        sim.schedule(ns(10), lambda: fired.append(sim.now))
        sim.run(until=ns(50))
        assert fired == [ns(10)]
        assert sim.pending() == 0
        assert sim.now == ns(50)

    def test_stop_does_not_advance_clock_to_bound(self):
        sim = Simulator()
        sim.schedule(ns(1), sim.stop)
        sim.schedule(ns(100), lambda: None)
        sim.run(until=ns(50))
        assert sim.now == ns(1)

    def test_max_events_does_not_advance_clock_to_bound(self):
        sim = Simulator()
        sim.schedule(ns(1), lambda: None)
        sim.schedule(ns(2), lambda: None)
        sim.run(until=ns(50), max_events=1)
        assert sim.now == ns(1)

    def test_events_scheduled_relative_to_advanced_clock(self):
        """After a bounded run, schedule() is relative to the bound."""
        sim = Simulator()
        fired = []
        sim.run(until=ns(100))
        sim.schedule(ns(5), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [ns(105)]

    def test_max_events_limits_dispatch(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(ns(i + 1), lambda i=i: fired.append(i))
        dispatched = sim.run(max_events=3)
        assert dispatched == 3
        assert fired == [0, 1, 2]

    def test_stop_breaks_run_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(1), lambda: (fired.append(1), sim.stop()))
        sim.schedule(ns(2), lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert sim.pending() == 1

    def test_run_returns_dispatch_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(ns(i + 1), lambda: None)
        assert sim.run() == 5

    def test_reentrant_run_raises(self):
        sim = Simulator()
        def bad():
            sim.run()
        sim.schedule(ns(1), bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancel:
    def test_cancel_prevents_dispatch(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(ns(10), lambda: fired.append("no"))
        sim.schedule(ns(20), lambda: fired.append("yes"))
        assert sim.cancel(handle) is True
        sim.run()
        assert fired == ["yes"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(ns(10), lambda: None)
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False

    def test_cancel_after_dispatch_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(ns(10), lambda: None)
        sim.run()
        assert sim.cancel(handle) is False

    def test_cancel_updates_pending_immediately(self):
        sim = Simulator()
        handles = [sim.schedule(ns(i + 1), lambda: None) for i in range(4)]
        assert sim.pending() == 4
        sim.cancel(handles[2])
        assert sim.pending() == 3

    def test_cancel_far_future_event(self):
        """Events parked in the overflow heap cancel cleanly too."""
        sim = Simulator()
        fired = []
        handle = sim.schedule(ns(1_000_000), lambda: fired.append("far"))
        sim.schedule(ns(2_000_000), lambda: fired.append("farther"))
        sim.cancel(handle)
        sim.run()
        assert fired == ["farther"]

    def test_cancel_does_not_perturb_survivors(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(20):
            handle = sim.schedule(ns(i + 1), lambda i=i: fired.append(i))
            if i % 3 != 0:
                keep.append(i)
            else:
                sim.cancel(handle)
        sim.run()
        assert fired == keep

    def test_peek_time_skips_cancelled_head(self):
        sim = Simulator()
        head = sim.schedule(ns(5), lambda: None)
        sim.schedule(ns(9), lambda: None)
        assert sim.peek_time() == ns(5)
        sim.cancel(head)
        assert sim.peek_time() == ns(9)

    def test_peek_time_empty_queue(self):
        assert Simulator().peek_time() is None


def _run_script(queue: str, seed: int, step_mode: str = "event"):
    """Drive one simulator through a seeded random op stream.

    The RNG decides, identically for both queue implementations, a mix
    of absolute/relative schedules, delays spanning every ladder horizon
    (same bucket, ring, and overflow), mid-callback reschedules, and
    cancellations of still-live handles. Returns the exact dispatch
    trace as ``(time, event_id)`` pairs.
    """
    import random

    rng = random.Random(seed)
    sim = Simulator(queue=queue, step_mode=step_mode)
    trace = []
    live = []
    budget = [200]
    # Delays cross bucket boundaries, stay inside the ring, and exceed
    # the ring horizon (~4.2 us) into the overflow heap.
    delay_choices = (0, 1, 512, 1024, 4096, 100_000, 2_000_000, 6_000_000)

    def fire(event_id):
        trace.append((sim.now, event_id))
        roll = rng.random()
        if roll < 0.5 and budget[0] > 0:
            budget[0] -= 1
            spawn(rng.choice(delay_choices))
        if roll > 0.7 and live:
            victim = live.pop(rng.randrange(len(live)))
            sim.cancel(victim)

    def spawn(delay):
        event_id = budget[0]
        live.append(sim.schedule(delay, fire, event_id))

    for _ in range(40):
        budget[0] -= 1
        spawn(rng.choice(delay_choices))
    sim.run()
    return trace


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ladder_matches_reference_heap_exactly(seed):
    """The ladder queue dispatches any randomized op stream in the
    exact (time, seq) order of the reference binary heap."""
    assert _run_script("ladder", seed) == _run_script("heap", seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_batched_matches_reference_heap_exactly(seed):
    """Batched stepping (sorted same-bucket drains) dispatches any
    randomized op stream in the exact (time, seq) order of the
    reference binary heap — bit-identity is the mode's contract."""
    assert _run_script("ladder", seed, "batched") == _run_script("heap", seed)


def test_heap_mode_rejects_unknown_queue():
    with pytest.raises(SimulationError):
        Simulator(queue="fibonacci")


def test_unknown_step_mode_rejected():
    with pytest.raises(SimulationError):
        Simulator(step_mode="vectorized")


def test_batched_step_mode_rejects_heap_queue():
    """Batched stepping replaces the ladder's drain side; the reference
    heap only pairs with the reference event stepping."""
    with pytest.raises(SimulationError):
        Simulator(queue="heap", step_mode="batched")


def test_run_batched_requires_batched_mode():
    with pytest.raises(SimulationError):
        Simulator().run_batched()


class TestBatchedClockSemantics:
    """run(until=)/stop()/max_events contracts must hold identically
    under batched stepping — the runner's chunked watchdog and the
    sampled-simulation windows both rely on them."""

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator(step_mode="batched")
        fired = []
        sim.schedule(ns(10), lambda: fired.append("early"))
        sim.schedule(ns(100), lambda: fired.append("late"))
        sim.run(until=ns(50))
        assert fired == ["early"]
        assert sim.pending() == 1
        sim.run_batched()
        assert fired == ["early", "late"]

    def test_run_until_fast_forwards_empty_queue(self):
        sim = Simulator(step_mode="batched")
        sim.run(until=ns(500))
        assert sim.now == ns(500)

    def test_run_until_advances_clock_past_pending_event(self):
        sim = Simulator(step_mode="batched")
        fired = []
        sim.schedule(ns(1000), lambda: fired.append(sim.now))
        sim.run(until=ns(100))
        assert fired == []
        assert sim.pending() == 1
        assert sim.now == ns(100)

    def test_chunked_runs_reach_a_far_event_at_its_exact_time(self):
        sim = Simulator(step_mode="batched")
        fired = []
        sim.schedule(ns(1000), lambda: fired.append(sim.now))
        chunk = ns(100)
        for _ in range(10):
            sim.run(until=sim.now + chunk)
        assert fired == [ns(1000)]
        assert sim.now == ns(1000)

    def test_stop_does_not_advance_clock_to_bound(self):
        sim = Simulator(step_mode="batched")
        sim.schedule(ns(1), sim.stop)
        sim.schedule(ns(100), lambda: None)
        sim.run(until=ns(50))
        assert sim.now == ns(1)

    def test_max_events_does_not_advance_clock_to_bound(self):
        sim = Simulator(step_mode="batched")
        sim.schedule(ns(1), lambda: None)
        sim.schedule(ns(2), lambda: None)
        sim.run(until=ns(50), max_events=1)
        assert sim.now == ns(1)

    def test_same_bucket_events_fire_in_schedule_order(self):
        """A drained bucket's sorted batch must preserve (time, seq)
        FIFO order for simultaneous events — the tie-break contract."""
        sim = Simulator(step_mode="batched")
        fired = []
        for i in range(8):
            sim.at(512, lambda i=i: fired.append(i))
        sim.run_batched()
        assert fired == list(range(8))

    def test_mid_drain_arrival_lands_in_current_batch(self):
        """A callback scheduling into the bucket being drained must see
        its event dispatched this drain, in exact time order."""
        sim = Simulator(step_mode="batched")
        fired = []
        sim.at(100, lambda: (fired.append("a"),
                             sim.at(200, lambda: fired.append("b"))))
        sim.at(300, lambda: fired.append("c"))
        sim.run_batched()
        assert fired == ["a", "b", "c"]

    def test_cancel_inside_installed_batch(self):
        sim = Simulator(step_mode="batched")
        fired = []
        keep = sim.at(100, lambda: fired.append("keep"))
        victim = sim.at(200, lambda: fired.append("victim"))
        assert sim.cancel(victim)
        sim.run_batched()
        assert fired == ["keep"]
        assert sim.cancel(keep) is False

    def test_run_batched_returns_dispatch_count(self):
        sim = Simulator(step_mode="batched")
        for i in range(5):
            sim.schedule(ns(i + 1), lambda: None)
        assert sim.run_batched() == 5


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_property_dispatch_order_is_sorted(delays):
    """Whatever the insertion order, dispatch times are nondecreasing."""
    sim = Simulator()
    seen = []
    for delay in delays:
        sim.schedule(delay, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
