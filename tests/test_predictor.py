"""Unit and behavioural tests for the MAP-I predictor (§V-D)."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.predictor import MapIPredictor
from repro.errors import ConfigError


class TestPredictorTable:
    def test_starts_predicting_hit(self):
        predictor = MapIPredictor()
        assert predictor.predict_hit(0)

    def test_learns_misses(self):
        predictor = MapIPredictor()
        for _ in range(4):
            predictor.update(7, was_hit=False)
        assert predictor.predict_miss(7)

    def test_relearns_hits(self):
        predictor = MapIPredictor()
        for _ in range(4):
            predictor.update(7, was_hit=False)
        for _ in range(4):
            predictor.update(7, was_hit=True)
        assert predictor.predict_hit(7)

    def test_counters_saturate(self):
        predictor = MapIPredictor(counter_bits=2)
        for _ in range(100):
            predictor.update(3, was_hit=True)
        predictor.update(3, was_hit=False)
        predictor.update(3, was_hit=False)
        predictor.update(3, was_hit=False)
        assert predictor.predict_miss(3)

    def test_accuracy_tracked(self):
        predictor = MapIPredictor()
        predictor.update(1, was_hit=True)   # predicted hit: correct
        predictor.update(1, was_hit=True)   # correct again
        assert predictor.accuracy == 1.0

    def test_distinct_pcs_learn_independently(self):
        predictor = MapIPredictor()
        for _ in range(4):
            predictor.update(1, was_hit=False)
        assert predictor.predict_miss(1)
        assert predictor.predict_hit(2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MapIPredictor(table_size=100)
        with pytest.raises(ConfigError):
            MapIPredictor(counter_bits=0)

    @given(st.lists(st.tuples(st.integers(0, 2**32), st.booleans()),
                    max_size=200))
    def test_property_counters_stay_in_range(self, updates):
        predictor = MapIPredictor()
        for pc, hit in updates:
            predictor.update(pc, hit)
        assert all(0 <= v <= predictor.max_value for v in predictor._table)


class TestPredictorIntegration:
    def test_disabled_by_default(self, make_system):
        system = make_system(CascadeLakeCache)
        assert system.cache.predictor is None

    def test_predicted_miss_launches_speculative_fetch(self, make_system):
        system = make_system(CascadeLakeCache, use_predictor=True)
        predictor = system.cache.predictor
        for _ in range(4):
            predictor.update(64, was_hit=False)
        system.read(5, pc=64)
        system.run()
        assert system.cache.metrics.events["speculative_fetch"] == 1

    def test_speculation_shortens_miss_latency(self, make_system):
        def miss_latency(use_predictor):
            system = make_system(CascadeLakeCache, use_predictor=use_predictor)
            if use_predictor:
                for _ in range(4):
                    system.cache.predictor.update(64, was_hit=False)
            system.read(5, pc=64)
            system.run()
            return system.completed[0][1]

        assert miss_latency(True) < miss_latency(False)

    def test_predictor_trained_by_outcomes(self, make_system):
        system = make_system(CascadeLakeCache, use_predictor=True)
        system.read(5, pc=64)   # miss
        system.run()
        assert system.cache.predictor.stats["updates"] == 1

    def test_wrong_prediction_wastes_a_fetch(self, make_system):
        system = make_system(CascadeLakeCache, use_predictor=True)
        for _ in range(4):
            system.cache.predictor.update(64, was_hit=False)
        system.cache.tags.install(5, dirty=False)
        system.read(5, pc=64)   # actually a hit
        system.run()
        assert system.main_memory.reads_issued == 1  # the wasted fetch
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("mm_fetch") == 64
        # It was useless: nobody waited on it.
        assert system.cache.metrics.ledger.unuseful_bytes >= 64
