"""Unit tests for CA/HM/DQ bus models, including turnaround rules."""

import pytest

from repro.dram.bus import Bus, DataBus, Direction
from repro.errors import ProtocolError
from repro.sim.kernel import ns


class TestUnidirectionalBus:
    def test_back_to_back_grants(self):
        bus = Bus("ca")
        assert bus.reserve(0, ns(1)) == ns(1)
        assert bus.reserve(ns(1), ns(1)) == ns(2)
        assert bus.grants == 2
        assert bus.busy_time == ns(2)

    def test_overlapping_grant_rejected(self):
        bus = Bus("ca")
        bus.reserve(0, ns(2))
        with pytest.raises(ProtocolError):
            bus.reserve(ns(1), ns(1))

    def test_negative_duration_rejected(self):
        with pytest.raises(ProtocolError):
            Bus("ca").reserve(0, -1)

    def test_earliest_respects_previous_grant(self):
        bus = Bus("hm")
        bus.reserve(ns(5), ns(3))
        assert bus.earliest(0) == ns(8)
        assert bus.earliest(ns(10)) == ns(10)

    def test_is_free(self):
        bus = Bus("hm")
        bus.reserve(0, ns(4))
        assert not bus.is_free(ns(3))
        assert bus.is_free(ns(4))


class TestDataBusTurnaround:
    def make(self):
        return DataBus("dq", t_rtw=ns(4), t_wtr=ns(8))

    def test_first_grant_has_no_turnaround(self):
        dq = self.make()
        assert dq.turnaround_gap(Direction.READ) == 0
        dq.reserve_dir(0, ns(2), Direction.READ)
        assert dq.last_direction is Direction.READ

    def test_same_direction_has_no_gap(self):
        dq = self.make()
        dq.reserve_dir(0, ns(2), Direction.READ)
        assert dq.turnaround_gap(Direction.READ) == 0
        dq.reserve_dir(ns(2), ns(2), Direction.READ)
        assert dq.turnarounds == 0

    def test_read_to_write_pays_trtw(self):
        dq = self.make()
        dq.reserve_dir(0, ns(2), Direction.READ)
        assert dq.turnaround_gap(Direction.WRITE) == ns(4)
        assert dq.earliest_dir(0, Direction.WRITE) == ns(6)
        dq.reserve_dir(ns(6), ns(2), Direction.WRITE)
        assert dq.turnarounds == 1
        assert dq.turnaround_time == ns(4)

    def test_write_to_read_pays_twtr(self):
        dq = self.make()
        dq.reserve_dir(0, ns(2), Direction.WRITE)
        assert dq.turnaround_gap(Direction.READ) == ns(8)

    def test_grant_violating_turnaround_rejected(self):
        dq = self.make()
        dq.reserve_dir(0, ns(2), Direction.READ)
        with pytest.raises(ProtocolError):
            dq.reserve_dir(ns(3), ns(2), Direction.WRITE)

    def test_plain_reserve_forbidden_on_dq(self):
        with pytest.raises(ProtocolError):
            self.make().reserve(0, ns(2))

    def test_alternating_directions_accumulate_turnaround_time(self):
        dq = self.make()
        t = dq.reserve_dir(0, ns(2), Direction.WRITE)
        t = dq.reserve_dir(dq.earliest_dir(t, Direction.READ), ns(2), Direction.READ)
        t = dq.reserve_dir(dq.earliest_dir(t, Direction.WRITE), ns(2), Direction.WRITE)
        assert dq.turnarounds == 2
        assert dq.turnaround_time == ns(8) + ns(4)
