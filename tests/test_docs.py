"""Documentation health: the CI docs job's checks, in-process.

Runs the stdlib link checker over the README and docs tree, the
docstring-coverage gate over ``repro.obs``, and asserts the docs index
actually indexes every docs page.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

import check_docstrings  # noqa: E402
import check_links  # noqa: E402


def test_no_broken_relative_links(capsys):
    targets = [str(REPO / name)
               for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                            "docs")]
    code = check_links.main(targets)
    assert code == 0, capsys.readouterr().out


def test_obs_docstring_coverage_is_total(capsys):
    code = check_docstrings.main(["--fail-under", "100",
                                  str(REPO / "src" / "repro" / "obs")])
    assert code == 0, capsys.readouterr().out


def test_link_checker_catches_breakage(tmp_path, capsys):
    page = tmp_path / "page.md"
    page.write_text("see [missing](nowhere.md) and [ok](page.md)\n",
                    encoding="utf-8")
    assert check_links.main([str(page)]) == 1
    assert "nowhere.md" in capsys.readouterr().out


def test_docstring_checker_catches_missing(tmp_path, capsys):
    src = tmp_path / "mod.py"
    src.write_text('"""Module."""\n\ndef documented():\n    """Yes."""\n\n'
                   "def naked():\n    pass\n", encoding="utf-8")
    assert check_docstrings.main(["--fail-under", "100", str(src)]) == 1
    assert "naked" in capsys.readouterr().out


def test_index_links_every_docs_page():
    docs = REPO / "docs"
    index = (docs / "index.md").read_text(encoding="utf-8")
    linked = set(re.findall(r"\]\(([\w.-]+\.md)\)", index))
    pages = {path.name for path in docs.glob("*.md")} - {"index.md"}
    assert pages <= linked, f"index.md misses {sorted(pages - linked)}"


@pytest.mark.parametrize("page", ["metrics.md", "campaign.md", "faq.md",
                                  "architecture.md"])
def test_tracing_is_cross_linked(page):
    text = (REPO / "docs" / page).read_text(encoding="utf-8")
    assert "tracing" in text, f"{page} should point at the tracing docs"
