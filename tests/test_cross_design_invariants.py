"""Cross-design property tests: invariants every design must satisfy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.alloy import AlloyCache
from repro.cache.bear import BearCache
from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.ideal import IdealCache
from repro.cache.ndc import NdcCache
from repro.cache.tdram import TdramCache

ALL_DESIGNS = [CascadeLakeCache, AlloyCache, BearCache, NdcCache,
               TdramCache, IdealCache]


@pytest.mark.parametrize("design", ALL_DESIGNS)
class TestConservation:
    def test_every_read_completes_exactly_once(self, make_system, design):
        system = make_system(design)
        blocks = [3, 3, 17, 129, 17 + system.cache.tags.num_sets]
        system.cache.tags.install(17, dirty=True)
        for block in blocks:
            system.read(block)
        system.run(50_000)
        completed = [r for r, _t in system.completed]
        assert len(completed) == len(blocks)
        assert len(set(id(r) for r in completed)) == len(blocks)

    def test_outcome_recorded_for_every_demand(self, make_system, design):
        system = make_system(design)
        system.read(5)
        system.write(9)
        system.run(50_000)
        assert system.cache.metrics.demands == 2

    def test_no_pending_work_left_behind(self, make_system, design):
        system = make_system(design)
        for block in (1, 2, 3, 4):
            system.read(block)
            system.write(block + 100)
        system.run(100_000)
        assert system.cache.pending_ops() == 0

    def test_dirty_data_never_lost(self, make_system, design):
        """A dirty line displaced from the cache must reach main memory
        or still sit safely in the flush/victim buffer — the paper's
        correctness requirement for write-miss-dirty (§II-B.4)."""
        system = make_system(design)
        victim = 7 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(7)   # displaces the dirty victim
        system.run(100_000)
        flush = getattr(system.cache, "flush", None)
        buffered = flush is not None and flush.contains(victim)
        assert system.main_memory.writes_issued >= 1 or buffered

    def test_completion_times_after_arrival(self, make_system, design):
        system = make_system(design)
        requests = [system.read(block) for block in (5, 77, 2049)]
        system.run(50_000)
        for request, finish in system.completed:
            assert finish > request.arrive_time
            if request.tag_result_time >= 0:
                assert finish >= request.tag_result_time


@pytest.mark.parametrize("design", ALL_DESIGNS)
class TestLedgerSanity:
    def test_bloat_at_least_one(self, make_system, design):
        system = make_system(design)
        system.cache.tags.install(0, dirty=False)
        system.read(0)
        system.read(33)
        system.write(65)
        system.run(50_000)
        assert system.cache.metrics.ledger.bloat_factor >= 1.0

    def test_useful_bytes_equal_64_per_demand(self, make_system, design):
        """With the Table IV accounting, each demand contributes exactly
        one useful 64 B payload (merged MSHR reads may share one)."""
        system = make_system(design)
        system.cache.tags.install(0, dirty=False)
        blocks = [0, 17, 33, 49]
        for block in blocks:
            system.read(block)
        system.write(65)
        system.run(50_000)
        demands = len(blocks) + 1
        assert system.cache.metrics.ledger.useful_bytes <= demands * 64
        assert system.cache.metrics.ledger.useful_bytes >= (demands - 1) * 64


@settings(max_examples=15, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=500)),
        min_size=1, max_size=25,
    ),
)
def test_property_architectural_state_identical_across_designs(accesses):
    """After any access sequence, every design's tag store agrees with
    an architectural reference (dict of last writes + fills)."""
    from repro.config.system import MIB, SystemConfig
    from tests.conftest import System

    config = SystemConfig(cache_capacity_bytes=1 * MIB,
                          mm_capacity_bytes=16 * MIB, cores=2)
    systems = [System(design, config) for design in
               (CascadeLakeCache, NdcCache, TdramCache, IdealCache)]
    for is_write, block in accesses:
        for system in systems:
            if is_write:
                system.write(block)
            else:
                system.read(block)
        for system in systems:
            system.run(30_000)
    reference = None
    for system in systems:
        flush = getattr(system.cache, "flush", None)
        def present(block):
            if system.cache.tags.contains(block):
                return True
            return flush is not None and flush.contains(block)
        def dirty(block):
            if system.cache.tags.is_dirty(block):
                return True
            return flush is not None and flush.contains(block)
        touched = {block for _w, block in accesses}
        state = (frozenset(b for b in touched if present(b)),
                 frozenset(b for b in touched if dirty(b)))
        if reference is None:
            reference = state
        else:
            assert state == reference, system.cache.design_name
