"""Behavioural tests for Alloy (80 B TADs) and BEAR (bloat mitigation)."""

import pytest

from repro.cache.alloy import AlloyCache
from repro.cache.bear import BearCache
from repro.cache.cascade_lake import CascadeLakeCache


class TestAlloy:
    def test_moves_80_bytes_per_access(self, make_system):
        system = make_system(AlloyCache)
        system.cache.tags.install(5, dirty=False)
        system.read(5)
        system.run()
        ledger = system.cache.metrics.ledger
        assert ledger.useful_bytes == 64
        assert ledger.unuseful_bytes == 16  # tag + padding overhead
        assert ledger.total_bytes == 80

    def test_burst_occupies_dq_longer_than_cl(self, make_system):
        alloy = make_system(AlloyCache)
        alloy.cache.tags.install(5, dirty=False)
        alloy.read(5)
        alloy.run()
        cl = make_system(CascadeLakeCache)
        cl.cache.tags.install(5, dirty=False)
        cl.read(5)
        cl.run()
        # 80 B vs 64 B: the hit response lands half a nanosecond later.
        assert alloy.completed[0][1] - cl.completed[0][1] == 500

    def test_write_path_matches_cascade_lake_flow(self, make_system):
        system = make_system(AlloyCache)
        system.write(5)
        system.run()
        ledger = system.cache.metrics.ledger.by_category()
        assert ledger.get("tag_check_discard") == 80
        assert ledger.get("demand_write") == 64
        assert ledger.get("demand_write_overhead") == 16

    def test_miss_discards_full_80_bytes(self, make_system):
        system = make_system(AlloyCache)
        system.read(5)
        system.run()
        assert system.cache.metrics.ledger.by_category()[
            "tag_check_discard"] == 80


class TestBearWriteHitBypass:
    def test_write_hit_skips_tag_read(self, make_system):
        system = make_system(BearCache)
        system.cache.tags.install(5, dirty=False)
        system.write(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.events["write_hit_bypass"] == 1
        assert "tag_check_discard" not in metrics.ledger.by_category()
        assert metrics.outcomes["write_hit"] == 1
        assert system.cache.tags.is_dirty(5)

    def test_write_hit_tag_check_is_instant(self, make_system):
        """The LLC presence bit answers the check with zero latency."""
        system = make_system(BearCache)
        system.cache.tags.install(5, dirty=False)
        request = system.write(5)
        system.run()
        assert request.tag_result_time == request.arrive_time

    def test_write_miss_still_pays_tag_read(self, make_system):
        system = make_system(BearCache)
        system.write(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.events["write_hit_bypass"] == 0
        assert metrics.ledger.by_category().get("tag_check_discard") == 80

    def test_read_path_unchanged_from_alloy(self, make_system):
        system = make_system(BearCache)
        system.cache.tags.install(5, dirty=False)
        system.read(5)
        system.run()
        assert system.cache.metrics.ledger.by_category().get("hit_data") == 64


class TestBearFillBypass:
    def test_some_fills_are_bypassed(self, make_system):
        system = make_system(BearCache)
        blocks = [i * system.config.cache_channels for i in range(40)]
        for block in blocks:
            system.read(block)
            system.run(200)
        system.run(5000)
        bypassed = system.cache.metrics.events["fill_bypass"]
        assert 0 < bypassed < len(blocks)
        installed = sum(system.cache.tags.contains(b) for b in blocks)
        assert installed == len(blocks) - bypassed

    def test_bypass_reduces_fill_traffic_vs_alloy(self, make_system):
        def fills(design):
            system = make_system(design)
            for i in range(30):
                system.read(i)
                system.run(300)
            system.run(5000)
            return system.cache.metrics.ledger.by_category().get("fill", 0)

        assert fills(BearCache) < fills(AlloyCache)
