"""Behavioural tests for the Cascade Lake baseline (tags-in-ECC-bits).

The defining behaviours (§II): every demand starts with a DRAM read;
that read's data is only useful on read hits and dirty-victim misses;
writes then need a second, write-direction access.
"""

import pytest

from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.request import Op


class TestReadPath:
    def test_read_hit_completes_with_one_useful_transfer(self, make_system):
        system = make_system(CascadeLakeCache)
        system.cache.tags.install(5, dirty=False)
        request = system.read(5)
        system.run()
        assert [r for r, _t in system.completed] == [request]
        ledger = system.cache.metrics.ledger
        assert ledger.by_category().get("hit_data") == 64
        assert ledger.unuseful_bytes == 0
        assert system.cache.metrics.outcomes["read_hit"] == 1

    def test_read_hit_latency_is_tag_read_latency(self, make_system):
        system = make_system(CascadeLakeCache)
        system.cache.tags.install(5, dirty=False)
        system.read(5)
        system.run()
        _request, finish = system.completed[0]
        # ACT+RD+data: tRCD + tCL + tBURST = 32 ns (unloaded).
        assert finish == pytest.approx(32_000, abs=2_000)

    def test_read_miss_clean_discards_tag_data_and_fetches(self, make_system):
        system = make_system(CascadeLakeCache)
        request = system.read(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.outcomes["read_miss_clean"] == 1
        ledger = metrics.ledger
        assert ledger.by_category().get("tag_check_discard") == 64
        assert ledger.by_category().get("mm_fetch") == 64
        assert system.main_memory.reads_issued == 1
        assert [r for r, _t in system.completed] == [request]

    def test_read_miss_fills_the_cache(self, make_system):
        system = make_system(CascadeLakeCache)
        system.read(5)
        system.run()
        assert system.cache.tags.contains(5)
        assert system.cache.metrics.ledger.by_category().get("fill") == 64

    def test_read_miss_latency_includes_tag_check_serialisation(self, make_system):
        """The §II-B problem: the mm fetch starts only after the tag read."""
        system = make_system(CascadeLakeCache)
        system.read(5)
        system.run()
        _request, finish = system.completed[0]
        assert finish > 32_000 + 30_000  # tag read + DDR5 access floor

    def test_read_miss_dirty_writes_back_victim(self, make_system):
        system = make_system(CascadeLakeCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.read(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.outcomes["read_miss_dirty"] == 1
        assert metrics.ledger.by_category().get("victim_readout") == 64
        assert metrics.ledger.by_category().get("mm_writeback") == 64
        assert system.main_memory.writes_issued == 1
        assert system.cache.tags.contains(5)
        assert not system.cache.tags.contains(victim)


class TestWritePath:
    def test_write_hit_reads_then_writes(self, make_system):
        """Write hits still cost a read (the paper's key CL inefficiency)."""
        system = make_system(CascadeLakeCache)
        system.cache.tags.install(5, dirty=False)
        system.write(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.outcomes["write_hit"] == 1
        ledger = metrics.ledger.by_category()
        assert ledger.get("tag_check_discard") == 64   # wasted read
        assert ledger.get("demand_write") == 64
        assert system.cache.tags.is_dirty(5)

    def test_write_miss_clean_installs_dirty(self, make_system):
        system = make_system(CascadeLakeCache)
        system.write(5)
        system.run()
        assert system.cache.metrics.outcomes["write_miss_clean"] == 1
        assert system.cache.tags.is_dirty(5)
        assert system.main_memory.reads_issued == 0  # no fetch on write miss

    def test_write_miss_dirty_writes_back_then_overwrites(self, make_system):
        system = make_system(CascadeLakeCache)
        victim = 5 + system.cache.tags.num_sets
        system.cache.tags.install(victim, dirty=True)
        system.write(5)
        system.run()
        metrics = system.cache.metrics
        assert metrics.outcomes["write_miss_dirty"] == 1
        assert system.main_memory.writes_issued == 1
        assert system.cache.tags.is_dirty(5)
        assert not system.cache.tags.contains(victim)

    def test_writes_occupy_the_read_queue(self, make_system):
        """§II-B.2: reads and writes compete in the same read buffer."""
        system = make_system(CascadeLakeCache)
        system.write(5)
        system.run()
        # The write's tag read went through the read buffer, so it is
        # counted in the read-buffer queueing-delay statistic (Fig. 10).
        assert system.cache.metrics.read_queue_delay.count == 1

    def test_write_acceptance_needs_both_buffers(self, make_system):
        system = make_system(CascadeLakeCache)
        channel, _bank = system.cache.route(0)
        scheduler = system.cache.schedulers[channel]
        scheduler.read_capacity = 0
        assert not system.cache.can_accept(Op.WRITE, 0)


class TestContention:
    def test_tag_check_latency_grows_with_queue_depth(self, make_system):
        shallow = make_system(CascadeLakeCache)
        shallow.read(0)
        shallow.run()
        deep = make_system(CascadeLakeCache)
        channels = deep.config.cache_channels
        for i in range(32):
            deep.read(i * channels)  # all to channel 0
        deep.run()
        assert deep.cache.metrics.tag_check.mean_ns > \
            shallow.cache.metrics.tag_check.mean_ns

    def test_mshr_merges_duplicate_fetches(self, make_system):
        system = make_system(CascadeLakeCache)
        system.read(5)
        system.read(5)
        system.run()
        assert system.main_memory.reads_issued == 1
        assert len(system.completed) == 2
        # The second read either merged into the outstanding MSHR or
        # arrived after the fill and hit — both avoid a second fetch.
        metrics = system.cache.metrics
        assert metrics.events["mshr_merge"] >= 1 or \
            metrics.outcomes["read_hit"] >= 1
