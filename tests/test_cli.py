"""Tests for the ``tdram-repro`` command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out and "run" in out

    def test_analytic_figure(self, capsys):
        assert main(["fig4"]) == 0
        assert "die-area" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "TDRAM" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_run_requires_two_args(self, capsys):
        assert main(["run", "tdram"]) == 2

    def test_run_single_experiment(self, capsys):
        assert main(["run", "ideal", "bfs.22", "--demands", "50"]) == 0
        out = capsys.readouterr().out
        assert "runtime_ps" in out and "miss_ratio" in out
