"""Tests for the ``tdram-repro`` command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out and "run" in out

    def test_analytic_figure(self, capsys):
        assert main(["fig4"]) == 0
        assert "die-area" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "TDRAM" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_run_requires_two_args(self, capsys):
        assert main(["run", "tdram"]) == 2

    def test_run_single_experiment(self, capsys):
        assert main(["run", "ideal", "bfs.22", "--demands", "50"]) == 0
        out = capsys.readouterr().out
        assert "runtime_ps" in out and "miss_ratio" in out


class TestCampaignCli:
    ARGS = ["campaign", "--designs", "tdram,no_cache",
            "--workloads", "bfs.22", "--demands", "50"]

    def test_campaign_runs_and_reports(self, capsys, tmp_path):
        argv = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "simulated=2" in out and "failures=0" in out

    def test_campaign_resume_is_all_cache_hits(self, capsys, tmp_path):
        argv = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulated=0" in out and "cached=2" in out

    def test_campaign_without_resume_resimulates(self, capsys, tmp_path):
        argv = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "simulated=2" in capsys.readouterr().out

    def test_campaign_no_cache_writes_nothing(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = self.ARGS + ["--cache-dir", str(cache_dir), "--no-cache"]
        assert main(argv) == 0
        assert not cache_dir.exists()

    def test_campaign_out_writes_results_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "campaign.json"
        argv = self.ARGS + ["--no-cache", "--out", str(out_path)]
        assert main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload) == 2
        assert {entry["design"] for entry in payload} == {"tdram", "no_cache"}
        assert all(entry["result"]["runtime_ps"] > 0 for entry in payload)

    def test_campaign_unknown_design_fails(self, capsys, tmp_path):
        argv = ["campaign", "--designs", "warp_drive", "--workloads",
                "bfs.22", "--demands", "50", "--no-cache", "--retries", "0"]
        assert main(argv) == 1
        assert "failures=1" in capsys.readouterr().out

    def test_context_figure_with_jobs_and_cache(self, capsys, tmp_path):
        argv = ["fig1", "--demands", "50", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "Figure 1" in capsys.readouterr().out
        assert (tmp_path / "cache").exists()


class TestChaosCli:
    def test_chaos_proves_bit_identity(self, capsys, tmp_path):
        argv = ["chaos", "--workloads", "bfs.22", "--demands", "50",
                "--cache-dir", str(tmp_path / "chaos"), "--chaos-seed", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-identical under chaos: True" in out

    def test_chaos_in_target_list(self, capsys):
        assert main(["list"]) == 0
        assert "chaos" in capsys.readouterr().out
