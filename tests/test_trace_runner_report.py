"""Tests for trace-driven experiments and the report generator."""

import pytest

from repro.config.system import MIB, SystemConfig
from repro.experiments.figures import ExperimentContext
from repro.experiments.report_gen import generate_report
from repro.experiments.runner import run_experiment, run_trace_experiment
from repro.workloads import capture_trace, demand_stream, workload

FAST = SystemConfig(cache_capacity_bytes=4 * MIB, mm_capacity_bytes=64 * MIB,
                    cores=4)


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "cg.trace.gz"
    stream = demand_stream(workload("cg.C"), FAST, 0, FAST.cores, seed=5)
    capture_trace(path, stream, 3000)
    return path


class TestTraceExperiments:
    def test_replay_produces_full_metrics(self, trace_file):
        result = run_trace_experiment("tdram", trace_file, FAST,
                                      demands_per_core=150, name="cg.replay")
        assert result.workload == "cg.replay"
        assert result.demands > 0
        assert result.runtime_ps > 0
        assert 0.0 <= result.miss_ratio <= 1.0

    def test_replay_matches_generator_architecture(self, trace_file):
        """Replaying a captured trace reproduces the same hit/miss mix
        as running the generator directly (same accesses, after all)."""
        generated = run_experiment("cascade_lake", "cg.C", FAST,
                                   demands_per_core=150, seed=5)
        replayed = run_trace_experiment("cascade_lake", trace_file, FAST,
                                        demands_per_core=150)
        assert replayed.miss_ratio == pytest.approx(generated.miss_ratio,
                                                    abs=0.1)

    def test_designs_comparable_on_same_trace(self, trace_file):
        cl = run_trace_experiment("cascade_lake", trace_file, FAST,
                                  demands_per_core=150)
        tdram = run_trace_experiment("tdram", trace_file, FAST,
                                     demands_per_core=150)
        assert tdram.tag_check_ns < cl.tag_check_ns


class TestReportGenerator:
    def test_report_contains_every_section(self, tmp_path):
        ctx = ExperimentContext(
            config=FAST,
            specs=[workload("cg.C"), workload("is.D")],
            demands_per_core=150, seed=5,
        )
        out = tmp_path / "report.md"
        titles = generate_report(out, ctx, include_studies=False)
        text = out.read_text()
        assert len(titles) == 11
        for fragment in ("Figure 1", "Figure 9", "Figure 13", "Table IV",
                         "Table I", "Figure 4A"):
            assert fragment in text, fragment
        # Markdown tables present with numeric cells.
        assert "| workload |" in text or "| design |" in text
        assert "geomean" in text

    def test_report_header_describes_configuration(self, tmp_path):
        ctx = ExperimentContext(config=FAST, specs=[workload("cg.C")],
                                demands_per_core=120, seed=5)
        out = tmp_path / "r.md"
        generate_report(out, ctx, include_studies=False)
        header = out.read_text().splitlines()[2]
        assert "4 MiB cache" in header
        assert "MLP 4" in header
