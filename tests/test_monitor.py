"""Tests for command logging and protocol checking observers."""

import pytest

from repro.cache.tdram import TdramCache
from repro.dram.device import DramChannel
from repro.dram.monitor import CommandLog, CommandRecord, ProtocolChecker
from repro.dram.timing import hbm3_cache_timing, rldram_like_tag_timing
from repro.errors import ProtocolError
from repro.sim.kernel import Simulator, ns


def make_channel():
    return DramChannel(Simulator(), hbm3_cache_timing(), 16, "m0",
                       tag_timing=rldram_like_tag_timing(),
                       enable_refresh=False)


class TestCommandLog:
    def test_records_committed_commands(self):
        channel = make_channel()
        log = CommandLog()
        channel.observers.append(log)
        channel.issue_access(3, 0, is_write=False, with_tag=True)
        channel.issue_probe(5, ns(2))
        assert log.counts["act_rd"] == 1
        assert log.counts["probe"] == 1
        assert log.records[0].bank == 3
        assert log.records[0].data_start == ns(30)

    def test_write_command_named(self):
        channel = make_channel()
        log = CommandLog()
        channel.observers.append(log)
        channel.issue_access(0, 0, is_write=True, with_tag=True)
        assert log.counts["act_wr"] == 1

    def test_plain_accesses_logged_as_read_write(self):
        channel = DramChannel(Simulator(), hbm3_cache_timing(), 16, "m1",
                              enable_refresh=False)
        log = CommandLog()
        channel.observers.append(log)
        channel.issue_access(0, 0, is_write=False)
        assert log.counts["read"] == 1

    def test_refresh_logged(self):
        sim = Simulator()
        channel = DramChannel(sim, hbm3_cache_timing(), 16, "m2",
                              enable_refresh=True)
        log = CommandLog()
        channel.observers.append(log)
        sim.run(until=hbm3_cache_timing().tREFI + 1)
        assert log.counts["refresh"] == 1
        assert log.records[-1].bank == -1

    def test_capacity_bound_drops_overflow(self):
        channel = make_channel()
        log = CommandLog(capacity=2)
        channel.observers.append(log)
        at = 0
        for bank in range(4):
            at = channel.earliest_issue(bank, at, is_write=False)
            channel.issue_access(bank, at, is_write=False)
        assert len(log.records) == 2
        assert log.dropped == 2
        assert log.counts["read"] == 4  # counters keep counting

    def test_between_and_timeline(self):
        channel = make_channel()
        log = CommandLog()
        channel.observers.append(log)
        channel.issue_access(0, 0, is_write=False, with_tag=True)
        at = channel.earliest_issue(1, 0, is_write=False)
        channel.issue_access(1, at, is_write=False, with_tag=True)
        window = log.between(0, ns(100))
        assert len(window) == 2
        timeline = log.render_timeline(0, ns(10), resolution_ps=ns(1))
        assert "bank   0" in timeline and "R" in timeline

    def test_timeline_validation(self):
        with pytest.raises(ProtocolError):
            CommandLog().render_timeline(10, 10)
        with pytest.raises(ProtocolError):
            CommandLog(capacity=0)


class TestProtocolChecker:
    def test_accepts_legal_stream(self):
        timing = hbm3_cache_timing()
        checker = ProtocolChecker(t_rc=timing.tRC, t_cmd=timing.tCMD)
        channel = make_channel()
        channel.observers.append(checker)
        at = 0
        for i in range(8):
            bank = i % 4
            at = channel.earliest_issue(bank, at, is_write=False,
                                        with_tag=True)
            channel.issue_access(bank, at, is_write=False, with_tag=True)
        assert checker.commands_checked == 8

    def test_detects_trc_violation(self):
        checker = ProtocolChecker(t_rc=ns(42), t_cmd=ns(1))
        checker.on_command(CommandRecord(0, "act_rd", bank=2))
        with pytest.raises(ProtocolError):
            checker.on_command(CommandRecord(ns(10), "act_rd", bank=2))

    def test_detects_time_regression(self):
        checker = ProtocolChecker(t_rc=ns(42), t_cmd=ns(1))
        checker.on_command(CommandRecord(ns(10), "act_rd", bank=0))
        with pytest.raises(ProtocolError):
            checker.on_command(CommandRecord(ns(5), "act_rd", bank=1))

    def test_detects_inverted_data_window(self):
        checker = ProtocolChecker(t_rc=0, t_cmd=ns(1))
        with pytest.raises(ProtocolError):
            checker.on_command(
                CommandRecord(0, "read", bank=0, data_start=10, data_end=10))

    def test_full_tdram_run_is_protocol_clean(self, make_system):
        """Stress: a whole simulation under the checker raises nothing."""
        system = make_system(TdramCache)
        timing = system.config.cache_timing
        checkers = []
        for channel in system.cache.channels:
            checker = ProtocolChecker(t_rc=timing.tRC, t_cmd=timing.tCMD)
            channel.observers.append(checker)
            checkers.append(checker)
        for i in range(40):
            block = (i * 37) % 4096
            if i % 3 == 0:
                system.write(block)
            else:
                system.read(block)
            system.run(120)
        system.run(30_000)
        assert sum(c.commands_checked for c in checkers) > 0
