"""Robustness paths: watchdogs, finite streams, fill-eviction races."""

import pytest

from repro.cache import DESIGNS
from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.metrics import CacheMetrics
from repro.cache.request import Op
from repro.config.system import MIB, SystemConfig
from repro.errors import SimulationError
from repro.experiments.runner import run_experiment
from repro.frontend.core_model import Core, Progress
from repro.sim.kernel import Simulator, ns

FAST = SystemConfig(cache_capacity_bytes=4 * MIB, mm_capacity_bytes=64 * MIB,
                    cores=2)


class _BlackHole:
    """Accepts reads, never answers them: a deadlocked memory system."""

    design_name = "black_hole"

    def __init__(self, sim, config, main_memory):
        self.sim = sim
        self.metrics = CacheMetrics()
        self.meter = None

    def can_accept(self, op, block):
        return True

    def submit(self, request):
        request.arrive_time = self.sim.now  # ... and silence forever


class TestWatchdog:
    def test_no_forward_progress_raises(self):
        DESIGNS["black_hole"] = _BlackHole
        try:
            with pytest.raises(SimulationError, match="no forward progress"):
                run_experiment("black_hole", "cg.C", FAST,
                               demands_per_core=50, seed=1)
        finally:
            del DESIGNS["black_hole"]


class TestFiniteStreams:
    def test_core_finishes_gracefully_when_stream_runs_dry(self):
        sim = Simulator()

        class Sink:
            def can_accept(self, op, block):
                return True

            def submit(self, request):
                request.arrive_time = sim.now
                if request.op is Op.READ:
                    sim.schedule(ns(10), lambda: request.complete(sim.now))

        progress = Progress(total_demands=100, warmup_fraction=0.0)
        short = iter([(0, Op.READ, i, 0) for i in range(5)])
        core = Core(sim, 0, short, Sink(), demands=100,
                    max_outstanding_reads=4, progress=progress)
        core.start()
        sim.run()
        assert core.finished
        assert core.issued == 5


class TestFillEvictionRace:
    def test_cl_fill_displacing_raced_dirty_write(self, make_system):
        """A fill returning after a conflicting dirty write installed
        must write the victim back, never silently drop it (the base
        `_handle_fill_eviction` path). Forced white-box: the natural
        window is a few nanoseconds wide."""
        system = make_system(CascadeLakeCache)
        conflicting = 5 + system.cache.tags.num_sets
        system.write(conflicting)
        system.run(1_000)
        assert system.cache.tags.is_dirty(conflicting)
        # A fetch for block 5 (same frame) now returns.
        system.cache._mshrs[5] = []
        system.cache._on_fetch_return(5, system.sim.now)
        system.run(50_000)
        assert system.cache.tags.contains(5)
        ledger = system.cache.metrics.ledger.by_category()
        # The displaced dirty line crossed the DQ bus and reached DDR5.
        assert ledger.get("victim_readout", 0) >= 64
        assert system.main_memory.writes_issued >= 1

    def test_tdram_fill_eviction_race_uses_flush_buffer(self, make_system):
        from repro.cache.tdram import TdramCache

        system = make_system(TdramCache)
        conflicting = 5 + system.cache.tags.num_sets
        system.write(conflicting)
        system.run(1_000)
        system.cache._mshrs[5] = []
        system.cache._on_fetch_return(5, system.sim.now)
        system.run(100)
        # The victim moved in-DRAM, not over the DQ bus.
        assert system.cache.metrics.events["victim_to_flush_buffer"] >= 1
        assert "victim_readout" not in \
            system.cache.metrics.ledger.by_category()
