"""Robustness paths: watchdogs, finite streams, fill-eviction races,
worker-crash recovery, and SIGKILL-resume of journaled campaigns."""

import dataclasses
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cache import DESIGNS
from repro.cache.cascade_lake import CascadeLakeCache
from repro.cache.metrics import CacheMetrics
from repro.cache.request import Op
from repro.config.system import MIB, SystemConfig
from repro.errors import SimulationError
from repro.experiments.runner import run_experiment
from repro.frontend.core_model import Core, Progress
from repro.sim.kernel import Simulator, ns

FAST = SystemConfig(cache_capacity_bytes=4 * MIB, mm_capacity_bytes=64 * MIB,
                    cores=2)


class _BlackHole:
    """Accepts reads, never answers them: a deadlocked memory system."""

    design_name = "black_hole"

    def __init__(self, sim, config, main_memory):
        self.sim = sim
        self.metrics = CacheMetrics()
        self.meter = None

    def can_accept(self, op, block):
        return True

    def submit(self, request):
        request.arrive_time = self.sim.now  # ... and silence forever


class TestWatchdog:
    def test_no_forward_progress_raises(self):
        DESIGNS["black_hole"] = _BlackHole
        try:
            with pytest.raises(SimulationError, match="no forward progress"):
                run_experiment("black_hole", "cg.C", FAST,
                               demands_per_core=50, seed=1)
        finally:
            del DESIGNS["black_hole"]


class TestFiniteStreams:
    def test_core_finishes_gracefully_when_stream_runs_dry(self):
        sim = Simulator()

        class Sink:
            def can_accept(self, op, block):
                return True

            def submit(self, request):
                request.arrive_time = sim.now
                if request.op is Op.READ:
                    sim.schedule(ns(10), lambda: request.complete(sim.now))

        progress = Progress(total_demands=100, warmup_fraction=0.0)
        short = iter([(0, Op.READ, i, 0) for i in range(5)])
        core = Core(sim, 0, short, Sink(), demands=100,
                    max_outstanding_reads=4, progress=progress)
        core.start()
        sim.run()
        assert core.finished
        assert core.issued == 5


class TestFillEvictionRace:
    def test_cl_fill_displacing_raced_dirty_write(self, make_system):
        """A fill returning after a conflicting dirty write installed
        must write the victim back, never silently drop it (the base
        `_handle_fill_eviction` path). Forced white-box: the natural
        window is a few nanoseconds wide."""
        system = make_system(CascadeLakeCache)
        conflicting = 5 + system.cache.tags.num_sets
        system.write(conflicting)
        system.run(1_000)
        assert system.cache.tags.is_dirty(conflicting)
        # A fetch for block 5 (same frame) now returns.
        system.cache._mshrs[5] = []
        system.cache._on_fetch_return(5, system.sim.now)
        system.run(50_000)
        assert system.cache.tags.contains(5)
        ledger = system.cache.metrics.ledger.by_category()
        # The displaced dirty line crossed the DQ bus and reached DDR5.
        assert ledger.get("victim_readout", 0) >= 64
        assert system.main_memory.writes_issued >= 1

    def test_tdram_fill_eviction_race_uses_flush_buffer(self, make_system):
        from repro.cache.tdram import TdramCache

        system = make_system(TdramCache)
        conflicting = 5 + system.cache.tags.num_sets
        system.write(conflicting)
        system.run(1_000)
        system.cache._mshrs[5] = []
        system.cache._on_fetch_return(5, system.sim.now)
        system.run(100)
        # The victim moved in-DRAM, not over the DQ bus.
        assert system.cache.metrics.events["victim_to_flush_buffer"] >= 1
        assert "victim_readout" not in \
            system.cache.metrics.ledger.by_category()


class TestWorkerCrashRecovery:
    def test_worker_killed_on_first_attempt_succeeds_on_second(self):
        """Satellite: every task's worker dies (os._exit, the SIGKILL
        signature) on attempt 1 under a real pool; attempt 2 runs clean
        and the campaign completes with correct results."""
        from repro.experiments.campaign import run_campaign, tasks_for
        from repro.resilience import ChaosConfig

        tasks = tasks_for(["tdram", "no_cache"], ["cg.C"], config=FAST,
                          demands_per_core=60, seeds=[13])
        clean = run_campaign(tasks, jobs=2, clamp_jobs=False)
        chaos = ChaosConfig(seed=5, kill_prob=1.0, max_faulted_attempts=1)
        outcome = run_campaign(tasks, jobs=2, clamp_jobs=False, chaos=chaos,
                               retries=3)
        assert outcome.ok and outcome.simulated == len(tasks)
        assert outcome.stats["worker_crashes"] >= 1
        assert outcome.stats["pool_recycles"] >= 1
        for left, right in zip(clean.results, outcome.results):
            assert dataclasses.asdict(left) == dataclasses.asdict(right)


class TestSigkillResume:
    CHILD = textwrap.dedent("""\
        import sys

        from repro.config.system import MIB, SystemConfig
        from repro.experiments.campaign import run_campaign, tasks_for
        from repro.resilience import CampaignJournal

        config = SystemConfig(cache_capacity_bytes=4 * MIB,
                              mm_capacity_bytes=64 * MIB, cores=2)
        tasks = tasks_for(["tdram", "cascade_lake", "no_cache"], ["cg.C"],
                          config=config, demands_per_core=350, seeds=[13])

        def progress(done, total, label, source, eta_s):
            print(source, flush=True)

        run_campaign(tasks, jobs=1, cache=None,
                     journal=CampaignJournal(sys.argv[1]),
                     progress=progress)
    """)

    def test_resume_simulates_only_unjournaled_tasks(self, tmp_path):
        """Integration: SIGKILL a journaled campaign mid-flight, resume
        with no cache at all, and the journal alone restores completed
        tasks — exactly total - replayed tasks re-simulate."""
        from repro.experiments.campaign import run_campaign, tasks_for
        from repro.resilience import CampaignJournal

        script = tmp_path / "child.py"
        script.write_text(self.CHILD)
        journal_path = tmp_path / "campaign.journal.jsonl"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal_path)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
            text=True)
        try:
            # Wait for the first completed simulation, then SIGKILL the
            # campaign mid-flight.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line.strip() == "simulated":
                    break
            else:  # pragma: no cover - timing guard
                pytest.fail("child never completed a task")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup guard
                proc.kill()
                proc.wait()
        assert proc.returncode == -signal.SIGKILL
        assert journal_path.exists()

        config = FAST
        tasks = tasks_for(["tdram", "cascade_lake", "no_cache"], ["cg.C"],
                          config=config, demands_per_core=350, seeds=[13])
        outcome = run_campaign(tasks, jobs=1, cache=None,
                               journal=CampaignJournal(journal_path))
        assert outcome.replayed >= 1
        assert outcome.simulated == len(tasks) - outcome.replayed
        assert all(result is not None for result in outcome.results)
