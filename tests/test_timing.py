"""Unit tests for the Table III timing parameter sets."""

import pytest

from repro.dram.timing import (
    DramTiming,
    TagTiming,
    ddr5_timing,
    hbm3_cache_timing,
    ndc_tag_timing,
    rldram_like_tag_timing,
)
from repro.errors import ConfigError, TimingError
from repro.sim.kernel import ns


class TestTableIIIValues:
    """Pin the paper's published timing parameters."""

    def test_data_bank_timings_match_table3(self):
        t = hbm3_cache_timing()
        assert t.tBURST == ns(2)
        assert t.tRCD == ns(12)
        assert t.tRCD_WR == ns(6)
        assert t.tCCD_L == ns(2)
        assert t.tRP == ns(14)
        assert t.tRAS == ns(28)
        assert t.tCL == ns(18)
        assert t.tCWL == ns(7)
        assert t.tRRD == ns(2)
        assert t.tXAW == ns(16)
        assert t.tRL_core == ns(2)
        assert t.tRTW_int == ns(1)

    def test_tag_timings_match_table3(self):
        t = rldram_like_tag_timing()
        assert t.tHM == ns(7.5)
        assert t.tHM_int == ns(2.5)
        assert t.tRCD_TAG == ns(7.5)
        assert t.tRTP_TAG == ns(2.5)
        assert t.tRRD_TAG == ns(2)
        assert t.tWR_TAG == ns(1)
        assert t.tRTW_TAG == ns(1)
        assert t.tRC_TAG == ns(12)

    def test_hm_result_delay_is_15ns(self):
        """§III-C4: tRCD_TAG + tHM = 15 ns, matching RLDRAM's read latency."""
        assert rldram_like_tag_timing().hm_result_delay == ns(15)

    def test_internal_result_hides_under_trcd(self):
        """§III-C4: tRCD_TAG + tHM_int = 10 ns < tRCD = 12 ns."""
        tag = rldram_like_tag_timing()
        data = hbm3_cache_timing()
        assert tag.tRCD_TAG + tag.tHM_int < data.tRCD


class TestDerivedValues:
    def test_row_cycle_is_ras_plus_rp(self):
        t = hbm3_cache_timing()
        assert t.tRC == ns(42)

    def test_read_data_delay(self):
        t = hbm3_cache_timing()
        assert t.read_data_delay == t.tRCD + t.tCL == ns(30)

    def test_write_data_delay(self):
        t = hbm3_cache_timing()
        assert t.write_data_delay == t.tRCD_WR + t.tCWL == ns(13)

    def test_write_bank_busy_covers_recovery(self):
        t = hbm3_cache_timing()
        assert t.write_bank_busy >= t.tRC

    def test_scaled_burst_for_alloy_80b(self):
        t = hbm3_cache_timing().scaled_burst(80)
        assert t.tBURST == ns(2.5)

    def test_scaled_burst_identity(self):
        t = hbm3_cache_timing()
        assert t.scaled_burst(64).tBURST == t.tBURST

    def test_scaled_burst_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            hbm3_cache_timing().scaled_burst(0)


class TestDdr5AndValidation:
    def test_ddr5_has_64b_burst_at_2ns(self):
        assert ddr5_timing().tBURST == ns(2)

    def test_ddr5_is_slower_than_hbm_cache(self):
        ddr5 = ddr5_timing()
        hbm = hbm3_cache_timing()
        assert ddr5.tRCD >= hbm.tRCD

    def test_ndc_tag_timing_matches_fair_comparison_rule(self):
        """§IV-A: the same tag-mat timings are used for NDC."""
        assert ndc_tag_timing() == rldram_like_tag_timing()

    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigError):
            DramTiming(tRAS=0)
        with pytest.raises(ConfigError):
            DramTiming(tBURST=0)


class TestFullValidation:
    """`validate()` consistency checks run at SystemConfig construction."""

    def test_default_tables_validate(self):
        hbm3_cache_timing().validate()
        ddr5_timing().validate()
        rldram_like_tag_timing().validate()

    def test_trcd_exceeding_tras_rejected(self):
        bad = DramTiming(tRCD=ns(40), tRAS=ns(28))
        with pytest.raises(TimingError, match="tRCD"):
            bad.validate()

    def test_refresh_cycle_must_fit_interval(self):
        bad = DramTiming(tRFC=ns(4000), tREFI=ns(3900))
        with pytest.raises(TimingError, match="tRFC"):
            bad.validate()

    def test_nonpositive_parameter_named_in_error(self):
        bad = DramTiming(tCL=0)
        with pytest.raises(TimingError, match="tCL"):
            bad.validate()

    def test_tag_row_cycle_shorter_than_activate_rejected(self):
        bad = TagTiming(tRC_TAG=ns(5))
        with pytest.raises(TimingError, match="tRC_TAG"):
            bad.validate()

    def test_timing_error_is_config_error(self):
        assert issubclass(TimingError, ConfigError)

    def test_system_config_rejects_inconsistent_sweep_table(self):
        from repro.config.system import SystemConfig

        with pytest.raises(TimingError):
            SystemConfig.small().with_(
                cache_timing=DramTiming(tRCD=ns(40), tRAS=ns(28)))
